"""One-pass multi-order membership kernel over bit-packed windows.

The paper's performance maps evaluate the sequence detectors at every
detector-window length DW in 2..15 against the *same* test stream, and
today each cell re-derives membership independently: slide, pack,
bisect, once per DW.  But Stide-class membership across window lengths
is governed by shared substructure of the stream — whether the window
of length ``L`` starting at position ``i`` appears in training is
monotone in ``L`` (every length-``(L-1)`` prefix of a stored
length-``L`` window is itself stored, because both databases come from
sliding the same training stream).  The known window lengths at any
position therefore form a contiguous interval ``[1 .. ml[i]]``, and the
per-position **match-length profile** ``ml`` answers membership for
*every* DW at once::

    window of length DW at position i is known  <=>  ml[i] >= DW

which is exactly the statistic a suffix automaton (or Aho-Corasick
machine over the training windows) emits while consuming the test
stream.  This module computes the same profile with vectorized
primitives instead of a per-symbol state machine:

* :class:`StreamCodes` packs a stream once at the highest packable
  order and derives every lower order's packed keys by right-shifting
  (the first ``L`` symbols of a window occupy its *high* bit lanes —
  see :func:`repro.sequences.windows.pack_windows`);
* :func:`match_profile` resolves ``ml`` with a descending ladder of
  ``searchsorted`` bisections: probe every position at the highest
  order first, peel off the matches (on normal-dominated test streams
  that is most of the stream), and let only the survivors descend.

The profile feeds Stide (foreign <=> ``ml < DW``), t-Stide (rare
windows are *known* windows failing the frequency bound, so only the
``ml >= DW`` survivors need a bisect against the common table) and is
served per (test stream, training stream) by
:class:`~repro.runtime.cache.WindowCache.membership_profile` so all 14
DW cells of both families share one scan.  Tier selection — when the
ladder runs versus the classic per-DW bisection — lives in
:func:`repro.runtime.kernels.resolve_kernel_tier`.

Everything here is bit-identical to the bisect tier by construction
(the same boolean membership feeds the same response arithmetic);
``tests/runtime/test_automaton.py`` fuzzes the equivalence over random
streams for AS 2..9 x DW 2..15 and the unpackable AS=32/DW=13 corner.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping

import numpy as np

from repro.exceptions import WindowError
from repro.runtime import telemetry
from repro.runtime.fitindex import TrainingIndex
from repro.runtime.kernels import sorted_membership
from repro.sequences.windows import (
    PACK_BIT_BUDGET,
    pack_windows,
    symbol_bits,
    windows_array,
)

__all__ = [
    "AUTOMATON_MAX_ORDER",
    "BatchStreamCodes",
    "MembershipAutomaton",
    "StreamCodes",
    "match_profile",
    "packed_order_cap",
    "training_databases",
]

#: Highest window order the automaton tier resolves in one pass — the
#: paper grid's maximum DW.  Cells above it take the bisect tier.
AUTOMATON_MAX_ORDER = 15

_EMPTY_DB = np.empty(0, dtype=np.int64)


def packed_order_cap(alphabet_size: int) -> int:
    """Longest window that packs into one 63-bit key at this alphabet."""
    return PACK_BIT_BUDGET // symbol_bits(alphabet_size)


class StreamCodes:
    """Per-order packed window keys of one stream, derived by shifting.

    Packs the stream **once** into an *extended* cap-order code array:
    positions owning a full cap-length window (the cap bounded by
    ``max_order``, the 63-bit packing budget, and the stream length)
    pack directly; the ``cap - 2`` tail positions pack their suffix
    left-shifted into the high lanes, zero-padded below.  Because the
    first ``L`` symbols of any window occupy its ``L`` highest bit
    lanes, ``extended >> bits * (cap - L)`` is the length-``L`` key of
    **every** position that owns a length-``L`` window — one shift per
    order, no tail special-casing (padding zeros only reach lanes that
    orders beyond a tail position's window would read, and those
    positions are never eligible there).  Orders are materialized
    lazily and memoized; instances are thread-safe.

    Args:
        stream: 1-D validated integer stream.
        alphabet_size: number of symbol codes; sets the bit width.
        max_order: highest order that will ever be asked for.
    """

    def __init__(
        self, stream: np.ndarray, alphabet_size: int, max_order: int
    ) -> None:
        data = np.asarray(stream)
        if data.ndim != 1:
            raise WindowError(
                f"stream must be one-dimensional, got shape {data.shape}"
            )
        if max_order < 2:
            raise WindowError(f"max_order must be >= 2, got {max_order}")
        self._stream = data
        self._bits = symbol_bits(alphabet_size)
        self._alphabet_size = int(alphabet_size)
        self._cap = min(max_order, packed_order_cap(alphabet_size), len(data))
        if self._cap < 2:
            raise WindowError(
                f"stream of length {len(data)} over alphabet "
                f"{alphabet_size} admits no packable order >= 2"
            )
        self._extended: np.ndarray | None = None
        self._levels: dict[int, np.ndarray] = {}
        self._lock = threading.Lock()

    @property
    def stream(self) -> np.ndarray:
        """The underlying stream."""
        return self._stream

    @property
    def cap(self) -> int:
        """Highest order served (and the order packed directly)."""
        return self._cap

    def _ext(self) -> np.ndarray:
        """The extended cap-order code array (one entry per position)."""
        ext = self._extended
        if ext is not None:
            return ext
        with self._lock:
            if self._extended is None:
                stream, cap = self._stream, self._cap
                base = pack_windows(
                    windows_array(stream, cap), self._alphabet_size
                )
                ext = np.empty(len(stream) - 1, dtype=np.int64)
                ext[: len(base)] = base
                if len(base) < len(ext):
                    # Suffixes of the last cap-1 symbols, zero-padded
                    # to cap so their keys share the head shift rule.
                    rows = np.zeros((len(ext) - len(base), cap), dtype=np.int64)
                    for i, position in enumerate(range(len(base), len(ext))):
                        suffix = stream[position:]
                        rows[i, : len(suffix)] = suffix
                    ext[len(base) :] = pack_windows(rows, self._alphabet_size)
                self._extended = ext
            return self._extended

    def _shift(self, order: int) -> np.int64:
        if not 2 <= order <= self._cap:
            raise WindowError(
                f"order {order} outside this stream's packable range "
                f"[2, {self._cap}]"
            )
        return np.int64(self._bits * (self._cap - order))

    def level(self, order: int) -> np.ndarray:
        """Packed keys of every length-``order`` window, in position order.

        Identical to ``pack_windows(windows_array(stream, order), AS)``
        but costing one shift of the extended codes per order.
        """
        shift = self._shift(order)
        cached = self._levels.get(order)
        if cached is not None:
            return cached
        codes = self._ext()[: len(self._stream) - order + 1] >> shift
        self._levels[order] = codes
        return codes

    def keys_at(self, order: int, positions: np.ndarray) -> np.ndarray:
        """Packed length-``order`` keys of selected positions only.

        ``level(order)[positions]`` without materializing the level —
        one gather and one shift.  Positions must own a full
        length-``order`` window (``position <= len(stream) - order``).
        """
        shift = self._shift(order)
        cached = self._levels.get(order)
        if cached is not None:
            return cached[positions]
        return self._ext()[positions] >> shift


class BatchStreamCodes:
    """Per-order packed keys for *many* streams from one fused pack.

    The serving batcher groups score jobs whose streams share an
    alphabet; this class concatenates those streams, builds a single
    :class:`StreamCodes` extended code array over the concatenation,
    and serves each stream's packed window keys at any order by
    slicing its position range and shifting — one ``pack_windows``
    pass for the whole batch instead of one per job.

    Correctness rests on the same high-lane rule StreamCodes uses:
    the extended code at concatenation position ``p`` carries the
    symbols ``concat[p : p + cap]`` in its top bit lanes, so the top
    ``order`` lanes are exactly the length-``order`` window starting
    at ``p``.  Stream ``j`` (offset ``S``, length ``L``) only ever
    asks for positions ``S .. S + L - order`` — windows that lie
    entirely inside its own segment — so junction-crossing codes are
    never read and ``keys(j, order)`` equals
    ``pack_windows(windows_array(stream_j, order), AS)`` bit for bit
    (``tests/runtime/test_automaton.py`` fuzzes this).

    Args:
        streams: 1-D validated integer streams, each at least
            ``max_order``-long orders will be asked of it.
        alphabet_size: shared symbol-code count; sets the bit width.
        max_order: highest order any stream will be asked for (must
            stay within the 63-bit packing budget for this alphabet).
    """

    def __init__(
        self,
        streams: list[np.ndarray],
        alphabet_size: int,
        max_order: int,
    ) -> None:
        if not streams:
            raise WindowError("BatchStreamCodes needs at least one stream")
        if max_order > packed_order_cap(alphabet_size):
            raise WindowError(
                f"order {max_order} over alphabet {alphabet_size} exceeds "
                f"the {PACK_BIT_BUDGET}-bit packing budget"
            )
        arrays = [np.ascontiguousarray(s) for s in streams]
        self._lengths = [len(a) for a in arrays]
        self._offsets: list[int] = []
        offset = 0
        for length in self._lengths:
            self._offsets.append(offset)
            offset += length
        self._codes = StreamCodes(
            np.concatenate(arrays) if len(arrays) > 1 else arrays[0],
            alphabet_size,
            max_order,
        )

    def __len__(self) -> int:
        return len(self._lengths)

    def keys(self, index: int, order: int) -> np.ndarray:
        """Packed length-``order`` keys of stream ``index``.

        Identical to ``StreamCodes(stream, AS, order).level(order)``
        for that stream alone — one gather and one shift here.

        Raises:
            WindowError: if the stream is shorter than ``order``.
        """
        start = self._offsets[index]
        length = self._lengths[index]
        if length < order:
            raise WindowError(
                f"stream of length {length} is shorter than order {order}"
            )
        positions = np.arange(start, start + length - order + 1)
        return self._codes.keys_at(order, positions)


def match_profile(
    codes: StreamCodes, databases: Mapping[int, np.ndarray]
) -> np.ndarray:
    """Per-position match lengths of a test stream against training.

    ``profile[i]`` is the longest ``L`` in ``[2, codes.cap]`` such that
    the window ``stream[i : i + L]`` occurs in the training databases
    (0 when not even the length-2 window does).  ``databases[L]`` must
    be the *sorted* packed keys of the distinct training windows at
    order ``L``; a missing order counts as empty.  Prefix closure of
    same-stream databases makes the known orders at each position a
    contiguous interval, so the profile alone decides membership for
    every DW: known at DW iff ``profile[i] >= DW``.

    The ladder descends from the cap: each order bisects only the
    positions not already resolved at a higher order, so on
    normal-dominated streams nearly everything is peeled off by the
    first probe and lower orders see only short anomaly tails.
    """
    stream = codes.stream
    length = len(stream)
    profile = np.zeros(max(0, length - 1), dtype=np.int64)
    if not len(profile):
        return profile
    pending = np.arange(len(profile))
    with telemetry.span(
        "kernel", "automaton.profile", cap=codes.cap, positions=len(profile)
    ):
        for order in range(codes.cap, 1, -1):
            if not len(pending):
                break
            eligible_mask = pending <= length - order
            eligible = pending[eligible_mask]
            if not len(eligible):
                continue
            database = databases.get(order)
            if database is None or not len(database):
                continue
            known = sorted_membership(codes.keys_at(order, eligible), database)
            if not known.any():
                continue
            profile[eligible[known]] = order
            drop = np.zeros(len(pending), dtype=bool)
            drop[np.flatnonzero(eligible_mask)[known]] = True
            pending = pending[~drop]
    return profile


def training_databases(
    training_stream: np.ndarray, alphabet_size: int, max_order: int
) -> dict[int, np.ndarray]:
    """Sorted packed membership databases of one stream, per order.

    The uncached construction path (the :class:`~repro.runtime.cache.
    WindowCache` derives the same tables through its shared
    :class:`~repro.runtime.fitindex.TrainingIndex` instead): one
    incremental index refinement per order, packed — rows are
    lexicographic, and bit packing is order-preserving, so each table
    is already sorted.
    """
    index = TrainingIndex(training_stream)
    cap = min(max_order, packed_order_cap(alphabet_size), len(training_stream))
    databases: dict[int, np.ndarray] = {}
    for order in range(2, cap + 1):
        rows, _inverse, _counts = index.decomposition(order)
        databases[order] = pack_windows(rows, alphabet_size)
    return databases


class MembershipAutomaton:
    """Standalone one-pass multi-DW membership scanner.

    The serving-path facade over :func:`match_profile`: built once from
    a training stream, it answers foreignness for **every** window
    length in ``2..max_order`` with a single scan of each test stream —
    the number ``benchmarks/bench_throughput.py`` reports events/sec
    for.  Inside a sweep the same machinery runs through
    :class:`~repro.runtime.cache.WindowCache` instead, where the
    profile is additionally shared across detector families.

    Args:
        training_stream: 1-D integer stream of normal behavior.
        alphabet_size: number of symbol codes (>= 2).
        max_order: highest window length served (bounded further by the
            63-bit packing budget and the stream length).
    """

    def __init__(
        self,
        training_stream: np.ndarray,
        alphabet_size: int,
        max_order: int = AUTOMATON_MAX_ORDER,
    ) -> None:
        stream = np.asarray(training_stream)
        if stream.ndim != 1:
            raise WindowError(
                f"training stream must be 1-D, got shape {stream.shape}"
            )
        if len(stream) < 2:
            raise WindowError("training stream must contain a length-2 window")
        self._alphabet_size = int(alphabet_size)
        self._databases = training_databases(stream, alphabet_size, max_order)
        self._max_order = min(
            max_order, packed_order_cap(alphabet_size), len(stream)
        )

    @property
    def max_order(self) -> int:
        """Highest window length this automaton resolves."""
        return self._max_order

    def database(self, order: int) -> np.ndarray:
        """Sorted packed training windows at ``order`` (empty if none)."""
        return self._databases.get(order, _EMPTY_DB)

    def scan(self, test_stream: np.ndarray) -> tuple[StreamCodes, np.ndarray]:
        """One pass over ``test_stream``: its (codes, match profile).

        The serving-path primitive: the profile answers Stide
        membership for every DW at once, and the codes serve the
        shift-derived per-DW keys that count-table lookups (t-Stide,
        Markov) probe with — no further pass over the stream needed.
        """
        codes = StreamCodes(
            np.asarray(test_stream), self._alphabet_size, self._max_order
        )
        return codes, match_profile(codes, self._databases)

    def match_lengths(self, test_stream: np.ndarray) -> np.ndarray:
        """The match-length profile of ``test_stream`` (one pass)."""
        _codes, profile = self.scan(test_stream)
        return profile

    def foreign(self, test_stream: np.ndarray, window_length: int) -> np.ndarray:
        """Stide's foreign-window mask at one DW, from the shared profile."""
        profile = self.match_lengths(test_stream)
        count = len(np.asarray(test_stream)) - window_length + 1
        return profile[:count] < window_length

    def foreign_all(
        self, test_stream: np.ndarray
    ) -> dict[int, np.ndarray]:
        """Foreign-window masks for every DW in ``2..max_order`` at once.

        One profile scan; each mask is a view-sized slice comparison —
        the multi-DW serving path.
        """
        stream = np.asarray(test_stream)
        profile = self.match_lengths(stream)
        masks: dict[int, np.ndarray] = {}
        for window_length in range(2, self._max_order + 1):
            count = len(stream) - window_length + 1
            if count <= 0:
                break
            masks[window_length] = profile[:count] < window_length
        return masks
