#!/usr/bin/env python3
"""The anatomy of the paper's synthetic corpus, in numbers.

Section 5.3 describes the training data qualitatively: one million
elements, 98% a repeated cycle over an alphabet of 8, the remaining 2%
rare sequences from a little nondeterminism, rarity meaning relative
frequency under 0.5%.  This example regenerates the corpus and verifies
each property with the library's statistics machinery — then shows why
the structure matters, via the MFS census and the natural-data
contrast.

Run:  python examples/corpus_anatomy.py
"""

from __future__ import annotations

import numpy as np

from repro import generate_training_data, scaled_params
from repro.analysis import format_table, mfs_census
from repro.datagen import NaturalSource, background_confound_rate
from repro.datagen.background import generate_background
from repro.sequences import (
    conditional_entropy,
    frequency_spectrum,
    ngram_space_saturation,
    symbol_distribution,
)


def main() -> None:
    params = scaled_params()
    training = generate_training_data(params)
    analyzer = training.analyzer
    store = analyzer.store_for(1, 2, 6)

    print(f"corpus: {training.length:,} elements, alphabet {params.alphabet_size}, "
          f"seed {params.seed}")
    print(f"cycle fraction: {training.cycle_run_fraction():.2%}   "
          "(paper: ~98%)")
    print(f"deviation events: {len(training.jump_positions()):,}")

    distribution = symbol_distribution(training.stream, 8)
    print("\nsymbol frequencies (the cycle visits all 8 equally):")
    print("  " + "  ".join(
        f"{symbol}:{frequency:.3f}"
        for symbol, frequency in zip(training.alphabet.symbols, distribution)
    ))

    print("\nn-gram frequency spectra (common vs. rare mass):")
    for length in (2, 6):
        spectrum = frequency_spectrum(store, length, params.rare_threshold)
        print("  " + spectrum.describe())

    entropy = conditional_entropy(store, 1)
    print(f"\nconditional entropy H(next | current): {entropy:.3f} bits "
          "(near-deterministic, as designed)")
    saturation = ngram_space_saturation(store, 6, 8)
    print(f"6-gram space saturation: {saturation:.2e} "
          "(virtually every 6-gram is foreign)")

    census = mfs_census(analyzer)
    print()
    print(format_table(
        ("MFS length", "count"), census.rows(),
        title="minimal foreign sequences constructible against this corpus"))
    print(f"largest MFS: {census.recommended_stide_window()} "
          "(the suite needs sizes up to 9 — satisfied)")

    # The punchline: this structure is what keeps the evaluation clean.
    background = generate_background(8, 5_000)
    synthetic_confound = background_confound_rate(training.stream, background, 10)
    natural = NaturalSource(seed=5)
    natural_train = natural.sample(training.length, np.random.default_rng(1))
    natural_heldout = natural.sample(5_000, np.random.default_rng(2))
    natural_confound = background_confound_rate(natural_train, natural_heldout, 10)
    print(f"\nforeign background windows at DW=10 (no anomaly anywhere):")
    print(f"  synthetic background: {synthetic_confound:.4f}")
    print(f"  natural-style data:   {natural_confound:.4f}")
    print(
        "\nEvery response in the synthetic evaluation is attributable to\n"
        "the injected anomaly — the control Section 4.3 demands, and the\n"
        "reason the paper sets natural data aside."
    )


if __name__ == "__main__":
    main()
