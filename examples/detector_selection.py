#!/usr/bin/env python3
"""Choosing detectors from measured coverage — the selection strategy.

Littlewood & Strigini noted the security community had no strategy for
choosing among diverse designs; Tan & Maxion's performance maps supply
the measurements, and this example closes the loop: given the measured
maps and what the defender knows about the expected anomaly, recommend
a deployment.

Scenarios:

1. anomaly size known and small — the narrowest capable detector
   (Stide) suffices and minimizes alarm-worthy events;
2. anomaly size unknown, window budget limited — the paper's recipe
   emerges: Markov detects, Stide gates the false alarms;
3. a redundant candidate (L&B) is identified as adding nothing.

Run:  python examples/detector_selection.py
"""

from __future__ import annotations

from repro import Coverage, build_suite, generate_training_data, scaled_params
from repro.ensemble import AnomalyProfile, select_detectors
from repro.evaluation.performance_map import build_performance_map

CANDIDATES = ("stide", "markov", "lane-brodley")


def main() -> None:
    params = scaled_params()
    training = generate_training_data(params)
    suite = build_suite(training=training)

    print("measuring the candidates' performance maps...")
    coverages = {
        name: Coverage.from_performance_map(build_performance_map(name, suite))
        for name in CANDIDATES
    }
    for name, coverage in sorted(coverages.items()):
        print(f"  {name:<14} covers {len(coverage)}/{len(coverage.grid)} cells")

    scenarios = [
        (
            "attack manifests as a size-4 MFS; windows up to 10 affordable",
            AnomalyProfile(size=4, max_deployable_window=10),
        ),
        (
            "manifestation size unknown; windows up to 8 affordable",
            AnomalyProfile(size=None, max_deployable_window=8),
        ),
        (
            "size-9 manifestation but only windows up to 6 affordable",
            AnomalyProfile(size=9, max_deployable_window=6),
        ),
    ]

    for description, profile in scenarios:
        print(f"\nscenario: {description}")
        advice = select_detectors(coverages, profile)
        print(f"  recommendation: {advice.describe()}")
        if advice.redundant:
            print(f"  redundant candidates: {', '.join(advice.redundant)}")
        print(f"  rationale: {advice.rationale}")


if __name__ == "__main__":
    main()
