#!/usr/bin/env python3
"""Why did the detector miss the attack?  (Figure 1 walkthrough.)

The paper's Figure 1 decomposes "did the anomaly detector detect the
attack?" into five questions, A through E.  This example runs the
chain for a set of attack scenarios against a deployed Stide instance
and prints the terminal verdict for each — including the paper's
signature failure mode: a *mistuned* detector window that blinds an
otherwise-capable detector.

Run:  python examples/capability_analysis.py
"""

from __future__ import annotations

from repro import build_suite, generate_training_data, scaled_params
from repro.capability import AttackScenario, assess_attack
from repro.evaluation.performance_map import build_performance_map


def main() -> None:
    params = scaled_params()
    training = generate_training_data(params)
    suite = build_suite(training=training)

    print("charting the deployed detector's performance map (Stide)...")
    performance_map = build_performance_map("stide", suite)
    analyzer = training.analyzer

    mfs = suite.anomaly(6).sequence
    normal_run = tuple(int(code) for code in training.stream[:4])

    scenarios = [
        AttackScenario(
            name="covert-channel (no syscall trace)",
            manifestation=None,
            detector_analyzes_data=True,
            deployed_window_length=8,
        ),
        AttackScenario(
            name="attack on an unmonitored host",
            manifestation=mfs,
            detector_analyzes_data=False,
            deployed_window_length=8,
        ),
        AttackScenario(
            name="mimicry attack (looks normal)",
            manifestation=normal_run,
            detector_analyzes_data=True,
            deployed_window_length=8,
        ),
        AttackScenario(
            name="size-6 MFS, window mistuned to 3",
            manifestation=mfs,
            detector_analyzes_data=True,
            deployed_window_length=3,
        ),
        AttackScenario(
            name="size-6 MFS, window tuned to 10",
            manifestation=mfs,
            detector_analyzes_data=True,
            deployed_window_length=10,
        ),
    ]

    for scenario in scenarios:
        report = assess_attack(scenario, analyzer, performance_map)
        print()
        print(report.explain())

    print(
        "\nThe last two scenarios differ only in the detector-window\n"
        "setting: the paper's point that an incorrect parameter choice\n"
        "renders a capable detector blind (Section 8)."
    )


if __name__ == "__main__":
    main()
