#!/usr/bin/env python3
"""Masquerade detection over user command sequences — and why L&B fails.

Lane & Brodley designed their similarity metric for exactly this
setting: profiling a user's shell-command stream and flagging sessions
typed by somebody else.  The paper notes the detector's "previous
application to masquerade detection" and then shows it blind to
minimal foreign sequences.

This example builds a user profile from synthetic command histories,
deploys the L&B detector against (a) an obvious masquerader and
(b) an attacker who mimics the user except for one trailing command —
the Figure-7 edge-mismatch case — and contrasts it with Stide.

Run:  python examples/masquerade_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import Alphabet, LaneBrodleyDetector, StideDetector
from repro.detectors.lane_brodley import lb_max_similarity

COMMANDS = (
    "cd", "ls", "vi", "make", "gcc", "gdb", "cat", "grep",
    "mail", "rm", "cp", "mv", "man", "latex", "xdvi", "tar",
)

# The legitimate user: an edit-compile-debug loop with mail breaks.
USER_HABITS = [
    ("cd", "ls", "vi", "make", "gcc", "gdb"),
    ("vi", "make", "gcc", "gdb", "vi", "make"),
    ("cd", "ls", "cat", "grep", "vi", "make"),
    ("mail", "cd", "ls", "vi", "make", "gcc"),
    ("man", "gcc", "vi", "make", "gcc", "gdb"),
]

# The masquerader: archive-and-exfiltrate behavior.
MASQUERADER = ("cd", "tar", "cp", "rm", "mail", "rm")

WINDOW_LENGTH = 5


def build_history(rng: np.random.Generator, sessions: int) -> list[tuple[str, ...]]:
    """Sample command sessions from the user's habit set."""
    picks = rng.integers(0, len(USER_HABITS), size=sessions)
    return [USER_HABITS[int(i)] for i in picks]


def main() -> None:
    alphabet = Alphabet(COMMANDS)
    rng = np.random.default_rng(2005)
    history = build_history(rng, sessions=400)
    streams = [np.asarray(alphabet.encode(session)) for session in history]

    lane_brodley = LaneBrodleyDetector(WINDOW_LENGTH, alphabet.size)
    lane_brodley.fit_many(streams)
    stide = StideDetector(WINDOW_LENGTH, alphabet.size).fit_many(streams)
    print(f"user profile: {lane_brodley.database_size} distinct "
          f"{WINDOW_LENGTH}-command sequences from {len(history)} sessions")

    def judge(label: str, commands: tuple[str, ...]) -> None:
        window = alphabet.encode(commands)[:WINDOW_LENGTH]
        similarity = lane_brodley.similarity_to_normal(window)
        lb_response = lane_brodley.score_window(window)
        stide_response = stide.score_window(window)
        print(f"\n{label}: {' '.join(commands[:WINDOW_LENGTH])}")
        print(f"  L&B best similarity: {similarity}/"
              f"{lb_max_similarity(WINDOW_LENGTH)}  "
              f"-> response {lb_response:.2f}")
        print(f"  Stide response:      {stide_response:.0f}")

    # (a) An obvious masquerader: both detectors respond strongly.
    judge("masquerader session", MASQUERADER)

    # (b) The Figure-7 case: the user's own sequence with only the
    # final command replaced.  Foreign — but L&B barely reacts.
    mimic = USER_HABITS[0][:WINDOW_LENGTH - 1] + ("rm",)
    judge("edge-mismatch mimic", mimic)

    print(
        "\nThe mimic's window is foreign (Stide responds maximally), but\n"
        "its L&B similarity dips only from "
        f"{lb_max_similarity(WINDOW_LENGTH)} to "
        f"{lane_brodley.similarity_to_normal(alphabet.encode(mimic))} — the\n"
        "adjacency-weighted metric is biased in favor of matching runs,\n"
        "so a single edge mismatch looks close to normal (Section 7).\n"
        "Catching it with L&B would require a threshold so low that every\n"
        "one-off typo alarms — the false-alarm blowup the paper predicts."
    )


if __name__ == "__main__":
    main()
