#!/usr/bin/env python3
"""A defender's full workflow, using every layer of the library.

The paper's closing position is that deployment decisions should come
from measured detector behavior, not design intuition.  This capstone
example plays out that workflow for a monitored sendmail-like daemon:

1. **survey** the normal traces — the MFS census bounds the window a
   Stide-family detector needs ("Why 6?");
2. **chart** candidate detectors' performance maps on the controlled
   synthetic corpus;
3. **select** a deployment from the measured coverage for the threat
   model (manifestation size unknown);
4. **deploy** the selection on live sessions and report hits and false
   alarms;
5. **diagnose** a miss with the Figure-1 capability chain.

Run:  python examples/end_to_end_defense.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Coverage,
    build_suite,
    generate_training_data,
    scaled_params,
)
from repro.analysis import format_table, mfs_census
from repro.capability import AttackScenario, assess_attack
from repro.detectors import MarkovDetector, StideDetector
from repro.detectors.threshold import MaximalResponseThreshold
from repro.ensemble import AnomalyProfile, gated_alarms, select_detectors
from repro.evaluation.metrics import evaluate_alarms
from repro.evaluation.performance_map import build_performance_map
from repro.sequences import ForeignSequenceAnalyzer
from repro.syscalls import build_dataset, sendmail_model, truth_window_regions


def main() -> None:
    # -- 1. survey the monitored program's normal behavior ------------------
    dataset = build_dataset(sendmail_model(), training_sessions=300,
                            test_normal_sessions=40,
                            test_intrusion_sessions=30)
    pooled = np.concatenate(dataset.training_streams())
    census = mfs_census(
        ForeignSequenceAnalyzer(pooled), lengths=tuple(range(2, 7))
    )
    window_bound = census.recommended_stide_window()
    print(format_table(("MFS length", "count"), census.rows(),
                       title="1. census of the monitored program's traces"))
    print(f"   largest natural MFS: {window_bound} "
          f"-> exact-match detectors need DW >= {window_bound}\n")

    # -- 2. chart the candidates on the controlled corpus -------------------
    params = scaled_params()
    training = generate_training_data(params)
    suite = build_suite(training=training)
    coverages = {
        name: Coverage.from_performance_map(build_performance_map(name, suite))
        for name in ("stide", "markov", "lane-brodley")
    }
    print("2. measured coverage on the controlled corpus:")
    for name, coverage in sorted(coverages.items()):
        print(f"   {name:<14} {len(coverage)}/{len(coverage.grid)} cells")

    # -- 3. select for the threat model --------------------------------------
    deploy_window = 4  # what this deployment can afford
    profile = AnomalyProfile(size=None, max_deployable_window=deploy_window)
    advice = select_detectors(coverages, profile)
    print(f"\n3. threat model: manifestation size unknown, DW <= {deploy_window}")
    print(f"   -> {advice.describe()}")

    # -- 4. deploy the selection on live sessions ----------------------------
    alphabet_size = dataset.alphabet.size
    stide = StideDetector(deploy_window, alphabet_size).fit_many(
        dataset.training_streams()
    )
    markov = MarkovDetector(deploy_window, alphabet_size).fit_many(
        dataset.training_streams()
    )
    stide_level = MaximalResponseThreshold.for_detector(stide)
    markov_level = MaximalResponseThreshold.for_detector(markov)
    alarms, truths = [], []
    traces = list(dataset.test_normal) + list(dataset.test_intrusions)
    for trace in traces:
        stide_alarms = stide_level.alarms(stide.score_stream(trace.stream))
        markov_alarms = markov_level.alarms(markov.score_stream(trace.stream))
        alarms.append(gated_alarms(markov_alarms, stide_alarms))
        truths.append(truth_window_regions(trace, deploy_window))
    metrics = evaluate_alarms(alarms, truths)
    print(f"\n4. deployed on {len(traces)} sessions: {metrics.summary()}")

    # -- 5. diagnose a hypothetical miss -------------------------------------
    stide_map = build_performance_map("stide", suite)
    scenario = AttackScenario(
        name="size-8 MFS against a lone stide at DW=4",
        manifestation=suite.anomaly(8).sequence,
        detector_analyzes_data=True,
        deployed_window_length=deploy_window,
    )
    report = assess_attack(scenario, training.analyzer, stide_map)
    print("\n5. why would a lone Stide at this window have missed?")
    print(report.explain())
    print(
        "\nThe gated pairing covers that miss: the Markov member detects\n"
        "at any window, and Stide's gating keeps the false alarms at its\n"
        "own (zero) rate — the paper's diversity recipe, end to end."
    )


if __name__ == "__main__":
    main()
