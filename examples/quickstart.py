#!/usr/bin/env python3
"""Quickstart: train a detector, inject an anomaly, read the verdict.

This walks the library's core loop in miniature:

1. generate the paper-style training corpus (a categorical stream that
   is 98% a repeating cycle, 2% rare deviations);
2. synthesize a minimal foreign sequence (MFS) — a sequence absent from
   training whose every proper subsequence is present;
3. inject it cleanly into background data;
4. deploy Stide and the Markov detector and compare their responses.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AnomalySynthesizer,
    InjectionPolicy,
    MarkovDetector,
    StideDetector,
    generate_training_data,
    inject_anomaly,
    scaled_params,
    score_injected,
)


def main() -> None:
    # 1. The corpus.  scaled_params() mirrors the paper's structure at a
    #    laptop-friendly scale; paper_params() gives the full 1M stream.
    params = scaled_params()
    training = generate_training_data(params)
    print(f"training stream: {training.length:,} elements over alphabet "
          f"{training.alphabet.size}")
    print(f"cycle fraction: {training.cycle_run_fraction():.1%} "
          "(the paper reports ~98%)")

    # 2. A minimal foreign sequence of size 6, composed of rare parts.
    anomaly = AnomalySynthesizer(training).synthesize(6)
    symbols = training.alphabet.decode(anomaly.sequence)
    print(f"\nanomaly (MFS, size {anomaly.size}): {symbols}")
    print(f"  left part frequency:  {anomaly.left_part_frequency:.4%} (rare)")
    print(f"  right part frequency: {anomaly.right_part_frequency:.4%} (rare)")

    # 3. Clean injection: every boundary window must exist in training.
    policy = InjectionPolicy(
        window_lengths=params.window_sizes,
        rare_threshold=params.rare_threshold,
    )
    injected = inject_anomaly(anomaly.sequence, training, policy,
                              stream_length=1000)
    print(f"\ninjected at position {injected.position} of a "
          f"{len(injected.stream)}-element test stream")

    # 4. Two diverse detectors at two window lengths.
    print(f"\n{'detector':<10} {'DW':>3}  verdict    max response in incident span")
    for window_length in (4, 8):
        for detector in (
            StideDetector(window_length, params.alphabet_size),
            MarkovDetector(window_length, params.alphabet_size),
        ):
            detector.fit(training.stream)
            outcome = score_injected(detector, injected)
            print(f"{detector.name:<10} {window_length:>3}  "
                  f"{outcome.response_class.value:<10} "
                  f"{outcome.max_in_span:.3f}")

    print(
        "\nStide needs DW >= AS to see the anomaly; the Markov detector's\n"
        "conditional probabilities flag its rare transitions at any window\n"
        "— the diversity effect the paper measures."
    )


if __name__ == "__main__":
    main()
