#!/usr/bin/env python3
"""Response profiles: what each detector *sees* around an anomaly.

The performance maps compress each encounter into blind/weak/capable;
this example keeps the full curve.  It injects one minimal foreign
sequence and renders each detector's per-window response as an aligned
sparkline over the incident span, making the paper's mechanics visible:

* Stide spikes only where a window contains the whole anomaly;
* the Markov detector pins every window that crosses a rare transition;
* L&B barely dips below normal anywhere;
* the neural network tracks the Markov detector with a softer pen.

Run:  python examples/response_profiles.py
"""

from __future__ import annotations

from repro import (
    LaneBrodleyDetector,
    MarkovDetector,
    NeuralDetector,
    StideDetector,
    build_suite,
    generate_training_data,
    scaled_params,
)
from repro.evaluation.response_profile import compare_profiles, response_profile

ANOMALY_SIZE = 6
WINDOW_LENGTH = 4  # smaller than the anomaly: the contested region


def main() -> None:
    params = scaled_params()
    training = generate_training_data(params)
    suite = build_suite(training=training)
    injected = suite.stream(ANOMALY_SIZE)
    print(
        f"anomaly: size-{ANOMALY_SIZE} MFS "
        f"{training.alphabet.decode(suite.anomaly(ANOMALY_SIZE).sequence)} "
        f"at position {injected.position}; detector window {WINDOW_LENGTH}"
    )

    detectors = [
        StideDetector(WINDOW_LENGTH, 8),
        MarkovDetector(WINDOW_LENGTH, 8),
        LaneBrodleyDetector(WINDOW_LENGTH, 8),
        NeuralDetector(WINDOW_LENGTH, 8),
    ]
    profiles = []
    for detector in detectors:
        detector.fit(training.stream)
        profiles.append(response_profile(detector, injected))

    print("\nresponse curves around the incident span")
    print("(levels: _ 0 | . - = ^ graded | # maximal; | | marks the span)\n")
    print(compare_profiles(profiles))

    print("\nper-detector accounting:")
    header = f"{'detector':<16} {'span max':>9} {'outside max':>12} {'contrast':>9}"
    print(header)
    for profile in profiles:
        outside = profile.outside_span
        outside_max = float(outside.max()) if len(outside) else 0.0
        print(
            f"{profile.detector_name:<16} "
            f"{profile.in_span.max():>9.3f} "
            f"{outside_max:>12.3f} "
            f"{profile.contrast():>9.3f}"
        )

    print(
        "\nWith DW < AS, only the probability-based detectors place a\n"
        "maximal response inside the span — the cell-level fact behind\n"
        "Figures 4 and 5's different regions."
    )


if __name__ == "__main__":
    main()
