#!/usr/bin/env python3
"""Host-based intrusion detection on UNM-style system-call traces.

Monitors a sendmail-like daemon the way the classic UNM experiments
did: fit detectors on normal per-session syscall traces, then deploy
on fresh sessions, some of which contain injected exploits.

Demonstrates the paper's Section 7 deployment recipe:

* the Markov detector catches every exploit but also fires on rare,
  benign behavior (bounce handling, queue recovery);
* Stide is silent on anything it has seen, however rare;
* gating Markov's alarms with Stide's keeps the hits and discards the
  false alarms.

Also shows that these "natural" traces contain minimal foreign
sequences — the paper's justification for its anomaly choice.

Run:  python examples/syscall_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import MarkovDetector, StideDetector
from repro.analysis import format_table
from repro.detectors.threshold import MaximalResponseThreshold
from repro.ensemble import gated_alarms
from repro.evaluation.metrics import evaluate_alarms
from repro.sequences import ForeignSequenceAnalyzer
from repro.syscalls import build_dataset, sendmail_model, truth_window_regions

WINDOW_LENGTH = 4


def main() -> None:
    model = sendmail_model()
    dataset = build_dataset(model, training_sessions=300,
                            test_normal_sessions=40,
                            test_intrusion_sessions=30)
    streams = dataset.training_streams()
    total = sum(len(stream) for stream in streams)
    print(f"program: {model.name} — {len(streams)} training sessions, "
          f"{total:,} system calls")

    alphabet_size = dataset.alphabet.size
    stide = StideDetector(WINDOW_LENGTH, alphabet_size).fit_many(streams)
    markov = MarkovDetector(WINDOW_LENGTH, alphabet_size).fit_many(streams)
    print(f"stide normal database: {stide.database_size} distinct "
          f"{WINDOW_LENGTH}-call sequences")

    # Deploy on fresh normal sessions and on intrusion sessions.
    traces = list(dataset.test_normal) + list(dataset.test_intrusions)
    stide_level = MaximalResponseThreshold.for_detector(stide)
    markov_level = MaximalResponseThreshold.for_detector(markov)
    stide_alarms, markov_alarms, truths = [], [], []
    for trace in traces:
        stide_alarms.append(stide_level.alarms(stide.score_stream(trace.stream)))
        markov_alarms.append(markov_level.alarms(markov.score_stream(trace.stream)))
        truths.append(truth_window_regions(trace, WINDOW_LENGTH))
    gated = [gated_alarms(m, s) for m, s in zip(markov_alarms, stide_alarms)]

    rows = []
    for name, alarms in (
        ("stide", stide_alarms),
        ("markov", markov_alarms),
        ("markov gated by stide", gated),
    ):
        metrics = evaluate_alarms(alarms, truths)
        rows.append((name, f"{metrics.hit_rate:.2f}",
                     f"{metrics.false_alarm_rate:.4f}",
                     f"{metrics.false_alarm_windows}"))
    print()
    print(format_table(
        ("detector", "hit rate", "FA rate", "FA windows"), rows,
        title=f"Deployment results (DW={WINDOW_LENGTH}, "
              f"{len(dataset.test_normal)} normal + "
              f"{len(dataset.test_intrusions)} intrusion sessions)"))

    # Natural data is replete with minimal foreign sequences ([17]).
    pooled = np.concatenate(streams)
    analyzer = ForeignSequenceAnalyzer(pooled, rare_threshold=0.005)
    print("\nminimal foreign sequences constructible from these natural traces:")
    for size in (3, 4, 5):
        found = analyzer.minimal_foreign_sequences(size, limit=200)
        example = ""
        if found:
            calls = dataset.alphabet.decode(found[0])
            example = "  e.g. " + " -> ".join(str(call) for call in calls)
        print(f"  size {size}: {len(found)}{'+' if len(found) == 200 else ''}"
              f"{example}")

    exploit_session = dataset.test_intrusions[0]
    start, stop = exploit_session.intrusion_region
    calls = dataset.alphabet.decode(
        exploit_session.stream[start:stop].tolist()
    )
    print(f"\nexample exploit manifestation ({exploit_session.exploit_name}): "
          + " -> ".join(str(call) for call in calls))


if __name__ == "__main__":
    main()
