#!/usr/bin/env python3
"""The paper's full experiment in one script.

Runs all four detectors (Stide, Markov, Lane & Brodley, neural net)
over the complete evaluation grid — 8 anomaly sizes x 14 detector
windows — and prints:

* the four performance maps of Figures 3-6 as star charts;
* the coverage relations of Sections 7-8 (Stide ⊂ Markov; Stide + L&B
  gains nothing).

Run:  python examples/diversity_study.py
(Set REPRO_STREAM_LEN=1000000 for the paper's full scale; the default
reduced scale finishes in well under a minute.)
"""

from __future__ import annotations

import time

from repro import Coverage, coverage_gain, run_paper_experiment, scaled_params
from repro.analysis import combination_report, map_agreement_report
from repro.evaluation.render import render_performance_map

FIGURES = {
    "lane-brodley": "Figure 3",
    "markov": "Figure 4",
    "stide": "Figure 5",
    "neural-network": "Figure 6",
}


def main() -> None:
    params = scaled_params()
    print(f"building corpus ({params.training_length:,} elements) and "
          "running all four detectors over the 112-case grid...")
    started = time.perf_counter()
    result = run_paper_experiment(params=params)
    print(f"done in {time.perf_counter() - started:.1f}s\n")

    for name, figure in FIGURES.items():
        chart = render_performance_map(
            result.map_for(name),
            title=f"{figure} — Detection coverage, {name} (reproduced)",
        )
        print(chart)
        print()

    print(result.summary())
    print()

    coverages = {
        name: Coverage.from_performance_map(result.map_for(name))
        for name in FIGURES
    }
    print("== The suppression pairing (Section 7) ==")
    print(combination_report(coverages["stide"], coverages["markov"]))
    print()
    print("== The no-gain pairing (Section 8) ==")
    print(combination_report(coverages["stide"], coverages["lane-brodley"]))
    print()
    print(map_agreement_report(result.maps))

    gained = coverage_gain(coverages["stide"], coverages["lane-brodley"])
    assert not gained, "L&B unexpectedly added coverage"
    print(
        "\nConclusion (paper, Section 8): not all anomaly detectors are\n"
        "equally capable; combining detectors pays only when their\n"
        "coverages differ in the right places."
    )


if __name__ == "__main__":
    main()
