#!/usr/bin/env python3
"""Experiment plans: declare a study once, run it exactly once.

The paper's studies — performance-map sweeps, seed-robustness grids,
ensemble selection, rendered charts — compose into a declarative
:class:`~repro.plans.ExperimentPlan`: named, typed stages wired by
explicit ``needs`` edges.  The :class:`~repro.plans.PlanRunner`
compiles the plan to a DAG, fingerprints every stage by content, and
executes with exactly-once semantics: outputs land in the
ArtifactStore under fingerprint-derived keys, progress streams to
JSONL checkpoints, so a killed run resumes bit-identically and a
re-run with unchanged configuration computes nothing.

This example:

1. declares a reduced-scale plan covering all four stage kinds;
2. runs it twice against one run directory — the second run adopts
   every stage from the store;
3. perturbs the sweep's corpus seed and shows the dependency-chained
   fingerprints invalidate exactly the affected subgraph.

Run:  python examples/experiment_plans.py
"""

from __future__ import annotations

import tempfile
from dataclasses import replace
from pathlib import Path

from repro.plans import (
    EnsembleStage,
    ExperimentPlan,
    PlanRunner,
    RenderStage,
    RobustnessStage,
    SweepStage,
)


def build_plan() -> ExperimentPlan:
    return ExperimentPlan(
        name="walkthrough",
        description="every stage kind at example scale",
        stages=(
            SweepStage(
                name="maps",
                stream_len=12_000,
                detectors=("stide", "markov"),
                anomaly_sizes=(2, 3, 4),
                window_sizes=(2, 3, 4, 5),
            ),
            RobustnessStage(
                name="robust",
                seeds=(1,),
                stream_len=12_000,
                test_stream_len=500,
                detectors=("stide",),
            ),
            EnsembleStage(name="pick", needs=("maps",), size=3, max_window=5),
            RenderStage(name="charts", needs=("maps",)),
        ),
    )


def main() -> None:
    plan = build_plan()

    # 1. Compilation: a deterministic topological order plus a content
    #    fingerprint per stage (dependency-chained, name-independent).
    order = plan.validate()
    fingerprints = plan.fingerprints()
    print(f"plan '{plan.name}': {len(order)} stages, order {' -> '.join(order)}")
    for name in order:
        print(f"  {name:<8} {fingerprints[name][:16]}")

    with tempfile.TemporaryDirectory() as tmp:
        run_dir = Path(tmp) / "run"

        # 2. First run computes everything; the second adopts every
        #    stage from the store — exactly-once semantics in action.
        first = PlanRunner(plan, run_dir=run_dir).run()
        print(f"\nfirst run:  {first.executed} executed / {first.cached} cached")
        second = PlanRunner(plan, run_dir=run_dir).run()
        print(f"second run: {second.executed} executed / {second.cached} cached")
        assert second.executed == 0, "unchanged fingerprints must not recompute"

        # The ensemble stage's recommendation, straight from the plan's
        # results (the same payload a plan file run writes to outputs/).
        advice = second.results["pick"]
        print(f"\nensemble says: {advice['recommendation']}")

        # 3. Change the sweep's corpus: the sweep and everything
        #    downstream of it recompute; the independent robustness
        #    stage stays cached.
        perturbed = replace(
            plan,
            stages=tuple(
                replace(stage, seed=99) if stage.name == "maps" else stage
                for stage in plan.stages
            ),
        )
        third = PlanRunner(perturbed, run_dir=run_dir).run()
        recomputed = sorted(
            outcome.name for outcome in third.outcomes if outcome.status == "ran"
        )
        print(f"\nafter seed change, recomputed: {', '.join(recomputed)}")
        assert "robust" not in recomputed, "independent stage must stay cached"
        print("robust stage adopted from store — the DAG invalidates "
              "only what the change reaches")


if __name__ == "__main__":
    main()
