"""E22 — serving: latency, throughput, chaos, and recovery time.

The engineering benchmark behind :mod:`repro.serve`.  Three scenarios:

* **clean** — an in-process server under a high-concurrency seeded
  load plan (enough simultaneous tenants that the micro-batcher
  actually fuses cross-tenant work); records p50/p99 request latency,
  scored streams/sec and the batch-formation stats (occupancy, flush
  reasons), and asserts the no-wrong-score invariant (the load
  generator verifies every returned score bit-exactly against a local
  reference).
* **chaos** — the pre-batching plan shape with every serving fault
  kind injected at a fixed rate, so fault behavior stays comparable
  across records.  Faults must surface as refusals and retries only:
  zero violations, all tenants fully trained by the end.
* **recovery** — the real CLI server in a subprocess, killed with
  SIGKILL mid-life and restarted on the same state directory; records
  the wall-clock from respawn to a ready, bit-identical service.

Results land in ``benchmarks/output/BENCH_serve.json`` (with the
machine calibration constant), which CI's
``check_bench_regression.py --require-serve`` holds against the
committed repo-root baseline.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from _artifacts import machine_calibration, write_artifact, write_json_artifact

from repro.serve import (
    SERVE_FAULT_KINDS,
    ChaosDirector,
    LoadPlan,
    ScoringServer,
    ServeFaultSchedule,
    run_load,
)
from repro.serve.loadgen import request

CHAOS_RATE = 0.3
CHAOS_SEED = 17
RECOVERY_TIMEOUT = 30.0


def _clean_plan(quick: bool) -> LoadPlan:
    """The throughput plan: wide tenant fan-out so batches form."""
    if quick:
        return LoadPlan.quick(seed=19)
    return LoadPlan(
        tenants=16,
        train_chunks=2,
        chunk_events=400,
        scores_per_tenant=128,
        test_events=200,
        seed=19,
    )


def _chaos_plan(quick: bool) -> LoadPlan:
    """The fault plan: the pre-batching shape, kept for comparability."""
    if quick:
        return LoadPlan.quick(seed=19)
    return LoadPlan(
        tenants=4,
        train_chunks=8,
        chunk_events=400,
        scores_per_tenant=24,
        test_events=200,
        seed=19,
    )


async def _in_process_run(tmp_path, plan, chaos=None):
    server = ScoringServer(tmp_path, chaos=chaos or ChaosDirector(), retries=1)
    await server.start()
    try:
        report = await run_load("127.0.0.1", server.port, plan)
        stats = server._stats()
    finally:
        await server.stop()
    return report, stats


def test_bench_serve(tmp_path, quick):
    clean_plan = _clean_plan(quick)

    # -- clean -----------------------------------------------------------
    report, stats = asyncio.run(
        _in_process_run(tmp_path / "clean", clean_plan)
    )
    assert report.violations == [], report.violations[:3]
    assert report.scores_ok == (
        clean_plan.tenants * clean_plan.scores_per_tenant
    )
    clean = report.summary()
    batch = stats["batch"]
    clean["batch"] = {
        key: batch[key]
        for key in (
            "max_batch",
            "max_wait_us",
            "executor",
            "jobs_in",
            "jobs_out",
            "refused",
            "flushes",
            "groups",
            "occupancy_mean",
            "occupancy_max",
        )
    }

    # -- chaos -----------------------------------------------------------
    plan = _chaos_plan(quick)
    chaos = ChaosDirector(
        ServeFaultSchedule(
            rate=CHAOS_RATE, seed=CHAOS_SEED, kinds=SERVE_FAULT_KINDS
        )
    )
    chaos_report, chaos_stats = asyncio.run(
        _in_process_run(tmp_path / "chaos", plan, chaos)
    )
    assert chaos_report.violations == [], chaos_report.violations[:3]
    # chaos may refuse individual requests, but retries must converge
    # every tenant to full training
    assert chaos_report.trains_ok == plan.tenants * plan.train_chunks
    chaos_summary = chaos_report.summary()
    chaos_summary["injected"] = dict(chaos.injected)
    chaos_summary["lane_restarts"] = sum(
        lane["restarts"] for lane in chaos_stats["lanes"].values()
    )

    # -- recovery --------------------------------------------------------
    recovery = _measure_recovery(tmp_path / "recover", quick)

    payload = {
        "bench": "serve",
        "calibration_seconds": round(machine_calibration(), 4),
        "plan": {
            "tenants": clean_plan.tenants,
            "train_chunks": clean_plan.train_chunks,
            "scores_per_tenant": clean_plan.scores_per_tenant,
            "seed": clean_plan.seed,
        },
        "chaos_plan": {
            "tenants": plan.tenants,
            "train_chunks": plan.train_chunks,
            "scores_per_tenant": plan.scores_per_tenant,
            "seed": plan.seed,
        },
        "clean": clean,
        "chaos": chaos_summary,
        "recovery": recovery,
        "quick": quick,
    }
    write_json_artifact("BENCH_serve", payload)
    write_artifact(
        "bench_serve",
        "\n".join(
            [
                "serving benchmark (E22)",
                f"  clean: p50 {clean['p50_ms']} ms, p99 {clean['p99_ms']} ms, "
                f"{clean['streams_per_sec']} streams/s",
                f"  batching: mean occupancy "
                f"{clean['batch']['occupancy_mean']} "
                f"(max {clean['batch']['occupancy_max']}), "
                f"{clean['batch']['groups']} fused groups",
                f"  chaos: {sum(chaos.injected.values())} faults injected, "
                f"{chaos_summary['violations']} violations",
                f"  recovery after SIGKILL: "
                f"{recovery['recovery_seconds']} s "
                f"({recovery['tenants']} tenants, bit-identical)",
            ]
        ),
    )


def _spawn(state_dir: Path, ready_file: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(__file__).resolve().parent.parent / "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--state-dir",
            str(state_dir),
            "--ready-file",
            str(ready_file),
            "--snapshot-every",
            "2",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _await_port(ready_file: Path) -> int:
    deadline = time.monotonic() + RECOVERY_TIMEOUT
    while time.monotonic() < deadline:
        if ready_file.exists():
            text = ready_file.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.02)
    raise TimeoutError(f"server never wrote {ready_file}")


def _measure_recovery(root: Path, quick: bool) -> dict:
    root.mkdir(parents=True)
    state_dir = root / "state"
    plan = LoadPlan.quick(seed=23) if quick else LoadPlan(seed=23)

    server = _spawn(state_dir, root / "ready-1")
    try:
        port = _await_port(root / "ready-1")
        report = asyncio.run(run_load("127.0.0.1", port, plan))
        assert report.violations == []

        async def digests():
            out = {}
            for index in range(plan.tenants):
                tid = f"tenant-{index:02d}"
                _, info = await request(
                    "127.0.0.1", port, "GET", f"/v1/tenants/{tid}"
                )
                out[tid] = info["digest"]
            return out

        before = asyncio.run(digests())
    finally:
        server.kill()
        server.wait(timeout=10)
    assert server.returncode == -signal.SIGKILL

    started = time.perf_counter()
    revived = _spawn(state_dir, root / "ready-2")
    try:
        port = _await_port(root / "ready-2")

        async def ready_and_digests():
            status, body = await request("127.0.0.1", port, "GET", "/readyz")
            assert status == 200 and body["ready"]
            out = {}
            for tid in before:
                _, info = await request(
                    "127.0.0.1", port, "GET", f"/v1/tenants/{tid}"
                )
                out[tid] = info["digest"]
            return out

        after = asyncio.run(ready_and_digests())
        recovery_seconds = time.perf_counter() - started
    finally:
        revived.terminate()
        revived.wait(timeout=10)

    assert after == before, "recovered tenant state is not bit-identical"
    return {
        "recovery_seconds": round(recovery_seconds, 3),
        "tenants": len(before),
        "bit_identical": True,
    }
