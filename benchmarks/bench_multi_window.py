"""E20 — coverage for unknown anomaly sizes: bank vs. suppression pair.

The deployment problem of Section 7: the attack manifests as an MFS of
unknown size.  Two answers are compared on the syscall substrate:

* **multi-window Stide bank** — exact matching at every window 2..8;
  full MFS coverage without probabilities, at the cost of one normal
  database per window and the members' pooled junction false alarms;
* **Markov gated by Stide** (the paper's recipe) — one window, the
  Markov detector's coverage with Stide's false-alarm rate.

Shape: both achieve a 100% hit rate; the bank's false-alarm rate sits
between Stide's and Markov's.
"""

from __future__ import annotations

from _artifacts import write_artifact

from repro.analysis.report import format_table
from repro.detectors import MarkovDetector, StideDetector
from repro.detectors.threshold import MaximalResponseThreshold
from repro.ensemble import gated_alarms
from repro.ensemble.multi_window import MultiWindowBank
from repro.evaluation.metrics import evaluate_alarms
from repro.syscalls import truth_window_regions

GATE_WINDOW = 4
BANK_WINDOWS = tuple(range(2, 9))


def test_multi_window_vs_gated(benchmark, syscall_dataset):
    streams = syscall_dataset.training_streams()
    alphabet_size = syscall_dataset.alphabet.size
    bank = MultiWindowBank(BANK_WINDOWS, alphabet_size).fit_many(streams)
    stide = StideDetector(GATE_WINDOW, alphabet_size).fit_many(streams)
    markov = MarkovDetector(GATE_WINDOW, alphabet_size).fit_many(streams)
    traces = list(syscall_dataset.test_normal) + list(
        syscall_dataset.test_intrusions
    )

    def deploy():
        bank_level = MaximalResponseThreshold.for_detector(bank)
        stide_level = MaximalResponseThreshold.for_detector(stide)
        markov_level = MaximalResponseThreshold.for_detector(markov)
        bank_alarms, gated, truths = [], [], []
        for trace in traces:
            bank_alarms.append(bank_level.alarms(bank.score_stream(trace.stream)))
            stide_a = stide_level.alarms(stide.score_stream(trace.stream))
            markov_a = markov_level.alarms(markov.score_stream(trace.stream))
            gated.append(gated_alarms(markov_a, stide_a))
            truths.append(truth_window_regions(trace, bank.window_length))
        gated_truths = [
            truth_window_regions(trace, GATE_WINDOW) for trace in traces
        ]
        return bank_alarms, gated, truths, gated_truths

    bank_alarms, gated, truths, gated_truths = benchmark.pedantic(
        deploy, rounds=1, iterations=1
    )

    bank_metrics = evaluate_alarms(bank_alarms, truths)
    gated_metrics = evaluate_alarms(gated, gated_truths)

    # Shape: both strategies detect every exploit.
    assert bank_metrics.hit_rate == 1.0
    assert gated_metrics.hit_rate == 1.0
    # The bank pools junction misses from many windows; its FA rate may
    # exceed the gated pair's but stays far below raw Markov (0.07).
    assert bank_metrics.false_alarm_rate < 0.03

    table = format_table(
        headers=("strategy", "hit rate", "FA rate"),
        rows=[
            (
                f"multi-window stide bank (DW {BANK_WINDOWS[0]}-{BANK_WINDOWS[-1]})",
                f"{bank_metrics.hit_rate:.2f}",
                f"{bank_metrics.false_alarm_rate:.4f}",
            ),
            (
                f"markov gated by stide (DW={GATE_WINDOW})",
                f"{gated_metrics.hit_rate:.2f}",
                f"{gated_metrics.false_alarm_rate:.4f}",
            ),
        ],
        title="E20 — unknown-size MFS coverage strategies (sendmail traces)",
    )
    write_artifact("multi_window", table)
