"""E16 — mimicry: padding an exploit into apparent normality.

Wagner & Soto (paper reference [19]) showed attacks can be manipulated
to manifest as events invisible to an anomaly-based IDS; the paper uses
this to scope question C of Figure 1.  The bench runs the padding
attack against Stide on the paper corpus: the raw size-2 MFS is caught,
the padded variant slips through, and the Figure-1 chain's verdict
flips from DETECTED to NOT_ANOMALOUS.
"""

from __future__ import annotations

import numpy as np

from _artifacts import write_artifact

from repro.detectors import StideDetector
from repro.syscalls.mimicry import pad_to_mimic

WINDOW_LENGTH = 2


def test_mimicry_padding(benchmark, suite, training):
    anomaly = suite.anomaly(2).sequence
    store = training.analyzer.store_for(WINDOW_LENGTH)
    stide = StideDetector(WINDOW_LENGTH, 8).fit(training.stream)

    result = benchmark(
        pad_to_mimic, anomaly, store, WINDOW_LENGTH, 16
    )

    raw_response = stide.score_stream(np.asarray(anomaly)).max()
    padded_response = stide.score_stream(np.asarray(result.padded)).max()

    assert result.succeeded
    assert raw_response == 1.0
    assert padded_response == 0.0

    alphabet = training.alphabet
    lines = [
        "E16 — mimicry attack against Stide "
        f"(DW={WINDOW_LENGTH}, paper reference [19])",
        "",
        f"raw exploit:    {alphabet.decode(anomaly)}  "
        f"-> max Stide response {raw_response:.0f} (DETECTED)",
        f"padded exploit: {alphabet.decode(result.padded)}  "
        f"-> max Stide response {padded_response:.0f} (invisible)",
        f"padding overhead: {result.overhead} inserted calls, "
        f"{result.attempts} search states",
        "",
        "The padded manifestation contains no foreign window: in the",
        "Figure-1 chain it now fails question C (the manifestation is",
        "not anomalous), which is beyond the scope of *any* anomaly",
        "detector — the boundary the paper draws in Section 2.",
    ]
    write_artifact("mimicry", "\n".join(lines))
