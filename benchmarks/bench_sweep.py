"""E21 — sweep engine: sequential vs parallel performance-map construction.

Not a paper figure — the engineering benchmark behind the
:mod:`repro.runtime` subsystem.  It builds the full four-family
performance-map grid twice:

* **sequential** — the reference serial loop of
  :func:`build_performance_map`, family by family;
* **engine** — one :class:`SweepEngine` sweep (``max_workers=4``) with
  the shared :class:`WindowCache` and unique-window memoized scoring.

and records the wall-clock speedup plus the cache hit statistics to a
BENCH json artifact.  The benchmark also asserts the engine's contract:
the parallel maps must be **cell-for-cell identical** to the
sequential ones, and the speedup for the full grid must be at least
2x.
"""

from __future__ import annotations

import time

from _artifacts import write_artifact, write_json_artifact

from repro.evaluation.performance_map import build_performance_map
from repro.runtime import ResiliencePolicy, RetryPolicy, SweepEngine

FAMILIES = ("stide", "t-stide", "markov", "lane-brodley")
MAX_WORKERS = 4
MIN_SPEEDUP = 2.0
MAX_RESILIENCE_OVERHEAD = 0.05  # fraction of plain-engine wall clock
OVERHEAD_REPS = 3


def _identical(serial_maps, engine_maps, suite) -> int:
    """Number of differing grid cells across all families (want 0)."""
    return sum(
        serial_maps[name].cell(anomaly_size, window_length)
        != engine_maps[name].cell(anomaly_size, window_length)
        for name in FAMILIES
        for anomaly_size in suite.anomaly_sizes
        for window_length in suite.window_lengths
    )


def test_sweep_engine_speedup(suite):
    start = time.perf_counter()
    serial_maps = {
        name: build_performance_map(name, suite) for name in FAMILIES
    }
    sequential_seconds = time.perf_counter() - start

    engine = SweepEngine(max_workers=MAX_WORKERS)
    start = time.perf_counter()
    engine_maps = engine.sweep(FAMILIES, suite)
    parallel_seconds = time.perf_counter() - start

    mismatched_cells = _identical(serial_maps, engine_maps, suite)
    speedup = sequential_seconds / parallel_seconds
    stats = engine.window_cache.stats
    cells = suite.case_count() * len(FAMILIES)

    payload = {
        "bench": "sweep_engine",
        "families": list(FAMILIES),
        "grid_cells": cells,
        "max_workers": MAX_WORKERS,
        "executor": engine.executor,
        "sequential_seconds": round(sequential_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(speedup, 2),
        "mismatched_cells": mismatched_cells,
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
        "cache_hit_rate": round(stats.hit_rate, 4),
    }
    write_json_artifact("sweep_engine", payload)
    write_artifact(
        "sweep_engine",
        "\n".join(
            [
                f"Sweep engine ({cells} cells, {len(FAMILIES)} families, "
                f"max_workers={MAX_WORKERS}):",
                f"  sequential  {sequential_seconds:>8.2f} s",
                f"  engine      {parallel_seconds:>8.2f} s",
                f"  speedup     {speedup:>8.2f} x",
                f"  cache       {stats.hits} hits / {stats.misses} misses "
                f"({stats.hit_rate:.0%})",
                f"  mismatches  {mismatched_cells}",
            ]
        ),
    )

    assert mismatched_cells == 0, "engine maps must match the serial path"
    assert speedup >= MIN_SPEEDUP, (
        f"sweep engine speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor"
    )


def test_resilience_overhead(suite):
    """The resilient scheduler must cost <= 5% on a fault-free sweep.

    Both engines run the identical clean workload (thread backend,
    same worker count, fresh caches); the only difference is whether
    task execution goes through the plain fast path or the
    :class:`~repro.runtime.resilience.ResilientRunner` (retries armed,
    never fired).  Best-of-``OVERHEAD_REPS`` timings on each side keep
    scheduler noise out of the ratio.
    """

    def _timed(factory) -> float:
        best = float("inf")
        for _ in range(OVERHEAD_REPS):
            engine = factory()
            start = time.perf_counter()
            engine.sweep(FAMILIES, suite)
            best = min(best, time.perf_counter() - start)
        return best

    plain_seconds = _timed(lambda: SweepEngine(max_workers=MAX_WORKERS))
    resilient_seconds = _timed(
        lambda: SweepEngine(
            max_workers=MAX_WORKERS,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(retries=2), task_timeout=300.0
            ),
        )
    )
    overhead = resilient_seconds / plain_seconds - 1.0

    payload = {
        "bench": "sweep_resilience_overhead",
        "families": list(FAMILIES),
        "max_workers": MAX_WORKERS,
        "repetitions": OVERHEAD_REPS,
        "plain_seconds": round(plain_seconds, 4),
        "resilient_seconds": round(resilient_seconds, 4),
        "overhead_fraction": round(overhead, 4),
        "max_overhead_fraction": MAX_RESILIENCE_OVERHEAD,
    }
    write_json_artifact("sweep_resilience_overhead", payload)
    write_artifact(
        "sweep_resilience_overhead",
        "\n".join(
            [
                "Resilience overhead (fault-free sweep, "
                f"best of {OVERHEAD_REPS}):",
                f"  plain       {plain_seconds:>8.2f} s",
                f"  resilient   {resilient_seconds:>8.2f} s",
                f"  overhead    {overhead:>8.2%}",
            ]
        ),
    )

    assert overhead <= MAX_RESILIENCE_OVERHEAD, (
        f"resilience overhead {overhead:.2%} exceeds the "
        f"{MAX_RESILIENCE_OVERHEAD:.0%} budget"
    )


def test_executors_agree(suite):
    """Thread-, serial- and process-backed sweeps are interchangeable."""
    thread_maps = SweepEngine(max_workers=2, executor="thread").sweep(
        ("stide", "markov"), suite
    )
    serial_maps = SweepEngine(executor="serial").sweep(
        ("stide", "markov"), suite
    )
    for name, serial_map in serial_maps.items():
        for cell in serial_map:
            assert (
                thread_maps[name].cell(cell.anomaly_size, cell.window_length)
                == cell
            )
