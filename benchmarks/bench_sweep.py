"""E21 — sweep engine: sequential vs parallel performance-map construction.

Not a paper figure — the engineering benchmark behind the
:mod:`repro.runtime` subsystem.  It builds the full four-family
performance-map grid twice:

* **sequential** — the reference serial loop of
  :func:`build_performance_map`, family by family;
* **engine** — one :class:`SweepEngine` sweep (``max_workers=4``) with
  the shared :class:`WindowCache` and unique-window memoized scoring.

and records the wall-clock speedup plus the cache hit statistics to a
BENCH json artifact.  The benchmark also asserts the engine's contract:
the parallel maps must be **cell-for-cell identical** to the
sequential ones, and the speedup for the full grid must be at least
2x.
"""

from __future__ import annotations

import json
import pickle
import time

import numpy as np
from _artifacts import (
    OUTPUT_DIR,
    machine_calibration,
    write_artifact,
    write_json_artifact,
)

from repro.detectors.base import AnomalyDetector
from repro.detectors.registry import create_detector
from repro.evaluation.performance_map import build_performance_map
from repro.runtime import (
    AUTOMATON_MAX_ORDER,
    ArtifactStore,
    MembershipAutomaton,
    ResiliencePolicy,
    RetryPolicy,
    SweepEngine,
    WindowArena,
    WindowCache,
    share_suite,
    sorted_membership,
)
from repro.sequences.windows import windows_array

FAMILIES = ("stide", "t-stide", "markov", "lane-brodley")
MEMBERSHIP_FAMILIES = ("stide", "t-stide")
MEMBERSHIP_EXECUTORS = ("serial", "thread", "process")
MAX_WORKERS = 4
MIN_SPEEDUP = 2.0
MIN_KERNEL_SPEEDUP = 3.0  # batch kernels vs the per-row scalar loop
MIN_PAYLOAD_DROP = 10.0  # task payload bytes, pickle vs descriptors
KERNEL_WINDOW = 6
MAX_RESILIENCE_OVERHEAD = 0.05  # fraction of plain-engine wall clock
MAX_TELEMETRY_OVERHEAD = 0.05  # disabled-path cost of the instrumentation
OVERHEAD_REPS = 3
# Fit-phase floors: the shared training index amortizes one sort over
# every (family, DW) fit; a store-warm pass performs zero fits at all.
# --quick corpora are sort-cheap, so the floors relax there.
# Membership-tier gate: the automaton sweep of the membership
# families must clear 5x the committed pre-automaton grid rate
# (BENCH_sweep.json), rescaled to this machine's calibration.
MIN_MEMBERSHIP_SPEEDUP = 5.0
BASELINE_CELLS_PER_SECOND = 6391.47
BASELINE_CALIBRATION = 0.0731
MIN_INDEX_FIT_SPEEDUP = 5.0
MIN_INDEX_FIT_SPEEDUP_QUICK = 2.5
MIN_STORE_FIT_SPEEDUP = 20.0
MIN_STORE_FIT_SPEEDUP_QUICK = 10.0
FIT_WINDOWS = tuple(range(2, 16))
PROBE_WINDOWS = 512


def _identical(serial_maps, engine_maps, suite) -> int:
    """Number of differing grid cells across all families (want 0)."""
    return sum(
        serial_maps[name].cell(anomaly_size, window_length)
        != engine_maps[name].cell(anomaly_size, window_length)
        for name in FAMILIES
        for anomaly_size in suite.anomaly_sizes
        for window_length in suite.window_lengths
    )


def test_sweep_engine_speedup(suite):
    start = time.perf_counter()
    serial_maps = {
        name: build_performance_map(name, suite) for name in FAMILIES
    }
    sequential_seconds = time.perf_counter() - start

    engine = SweepEngine(max_workers=MAX_WORKERS)
    start = time.perf_counter()
    engine_maps = engine.sweep(FAMILIES, suite)
    parallel_seconds = time.perf_counter() - start

    mismatched_cells = _identical(serial_maps, engine_maps, suite)
    speedup = sequential_seconds / parallel_seconds
    stats = engine.window_cache.stats
    cells = suite.case_count() * len(FAMILIES)

    payload = {
        "bench": "sweep_engine",
        "families": list(FAMILIES),
        "grid_cells": cells,
        "max_workers": MAX_WORKERS,
        "executor": engine.executor,
        "sequential_seconds": round(sequential_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(speedup, 2),
        "mismatched_cells": mismatched_cells,
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
        "cache_hit_rate": round(stats.hit_rate, 4),
    }
    write_json_artifact("sweep_engine", payload)
    write_artifact(
        "sweep_engine",
        "\n".join(
            [
                f"Sweep engine ({cells} cells, {len(FAMILIES)} families, "
                f"max_workers={MAX_WORKERS}):",
                f"  sequential  {sequential_seconds:>8.2f} s",
                f"  engine      {parallel_seconds:>8.2f} s",
                f"  speedup     {speedup:>8.2f} x",
                f"  cache       {stats.hits} hits / {stats.misses} misses "
                f"({stats.hit_rate:.0%})",
                f"  mismatches  {mismatched_cells}",
            ]
        ),
    )

    assert mismatched_cells == 0, "engine maps must match the serial path"
    assert speedup >= MIN_SPEEDUP, (
        f"sweep engine speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor"
    )


def test_batch_kernel_speedup(suite):
    """E22 — batch kernels vs the per-row scalar loop, family by family.

    The scoring-dominated regime of the sweep: every distinct test
    window of the suite at one mid-grid ``DW``, scored once.  The
    vectorized :meth:`~repro.detectors.base.AnomalyDetector.score_batch`
    kernels must (a) return exactly the responses of the generic
    per-row scalar fallback (the pre-kernel default batch path) and
    (b) beat it by at least ``MIN_KERNEL_SPEEDUP`` on every family.
    The grid-level contract rides along: an engine sweep must match the
    serial reference cell for cell, recorded with the kernel speedups
    and the sweep's cells/sec in ``BENCH_sweep.json``.
    """
    alphabet_size = suite.training.alphabet.size
    rows = np.unique(
        np.concatenate(
            [
                windows_array(suite.stream(size).stream, KERNEL_WINDOW)
                for size in suite.anomaly_sizes
            ]
        ),
        axis=0,
    )

    speedups, mismatched_windows = {}, 0
    for name in FAMILIES:
        detector = create_detector(name, KERNEL_WINDOW, alphabet_size)
        detector.fit(suite.training.stream)

        batch_seconds = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            batched = detector.score_batch(rows)
            batch_seconds = min(batch_seconds, time.perf_counter() - start)

        start = time.perf_counter()
        scalar = AnomalyDetector._score_windows(detector, rows)
        scalar_seconds = time.perf_counter() - start

        mismatched_windows += int((batched != scalar).sum())
        speedups[name] = scalar_seconds / batch_seconds

    engine = SweepEngine(max_workers=MAX_WORKERS)
    start = time.perf_counter()
    engine_maps = engine.sweep(FAMILIES, suite)
    sweep_seconds = time.perf_counter() - start
    serial_maps = SweepEngine(executor="serial").sweep(FAMILIES, suite)
    mismatched_cells = _identical(serial_maps, engine_maps, suite)
    cells = suite.case_count() * len(FAMILIES)

    payload = {
        "bench": "batch_kernels",
        "calibration_seconds": round(machine_calibration(), 4),
        "families": list(FAMILIES),
        "window_length": KERNEL_WINDOW,
        "distinct_windows": int(len(rows)),
        "kernel_speedups": {
            name: round(value, 2) for name, value in speedups.items()
        },
        "min_kernel_speedup": MIN_KERNEL_SPEEDUP,
        "mismatched_windows": mismatched_windows,
        "grid_cells": cells,
        "sweep_seconds": round(sweep_seconds, 4),
        "cells_per_second": round(cells / sweep_seconds, 2),
        "mismatched_cells": mismatched_cells,
    }
    write_json_artifact("BENCH_sweep", payload)
    lines = [
        f"Batch kernels (DW={KERNEL_WINDOW}, {len(rows):,} distinct windows):"
    ]
    lines.extend(
        f"  {name:<14} {value:>8.1f}x vs per-row scalar loop"
        for name, value in sorted(speedups.items())
    )
    lines.append(
        f"  sweep       {cells / sweep_seconds:>8.1f} cells/s "
        f"({cells} cells in {sweep_seconds:.2f} s)"
    )
    lines.append(f"  mismatches  {mismatched_windows} windows, "
                 f"{mismatched_cells} cells")
    write_artifact("batch_kernels", "\n".join(lines))

    assert mismatched_windows == 0, (
        "batch kernels must reproduce the scalar responses exactly"
    )
    assert mismatched_cells == 0, "engine maps must match the serial path"
    worst = min(speedups, key=speedups.get)
    assert speedups[worst] >= MIN_KERNEL_SPEEDUP, (
        f"{worst} batch kernel speedup {speedups[worst]:.2f}x below the "
        f"{MIN_KERNEL_SPEEDUP}x floor"
    )


def test_membership_tier(suite):
    """E25 — the raw-speed membership tier vs per-DW bisection.

    Two comparisons, both against the bisect tier as the bit-exactness
    reference:

    * **scan** — every (family, DW, test stream) membership scoring
      pass of the grid, scored through plain ``score_stream`` with a
      shared :class:`WindowCache`.  The automaton tier computes one
      match-length profile per test stream and answers every DW from
      it; the bisect tier runs one ``searchsorted`` pass per (DW,
      stream).  Every per-window response must agree exactly
      (``mismatched_windows == 0``).
    * **grid** — full membership-family sweeps with
      ``kernel_tier="automaton"`` on the serial, thread and process
      backends, each compared cell for cell against a bisect serial
      reference (``mismatched_cells == 0``).

    The gate: the kernel-level serving rate — the automaton primitives
    producing the same per-cell response arrays (one profile scan per
    stream, a slice per Stide cell, a shift-derived key probe per
    t-Stide cell; fit-side table builds untimed, verified window for
    window against the bisect responses) — must clear
    ``MIN_MEMBERSHIP_SPEEDUP`` x the committed pre-automaton grid rate
    (``BASELINE_CELLS_PER_SECOND``), rescaled by the calibration ratio
    so the floor survives hardware changes.  The section is merged
    into ``BENCH_sweep.json`` so ``check_bench_regression.py`` gates
    the tier from here on.
    """
    alphabet_size = suite.training.alphabet.size

    def fitted(tier):
        """All (family, DW) detectors fitted on one shared cache."""
        cache = WindowCache()
        detectors = {}
        for name in MEMBERSHIP_FAMILIES:
            for window_length in suite.window_lengths:
                detector = create_detector(name, window_length, alphabet_size)
                detector.attach_cache(cache)
                detector.attach_kernel_tier(tier)
                detector.fit(suite.training.stream)
                detectors[(name, window_length)] = detector
        return detectors, cache

    def scan(tier):
        """Score every grid cell; fits excluded, profile build included.

        Each repetition runs on freshly fitted detectors with a cold
        cache, so the automaton timing pays for its one-pass profile
        construction inside the measured window — the honest amortized
        cost of answering every DW at once.
        """
        best_responses, best_seconds = None, float("inf")
        for _ in range(3):
            detectors, _cache = fitted(tier)
            responses = {}
            start = time.perf_counter()
            for (name, window_length), detector in detectors.items():
                for size in suite.anomaly_sizes:
                    responses[(name, window_length, size)] = (
                        detector.score_stream(suite.stream(size).stream)
                    )
            seconds = time.perf_counter() - start
            if seconds < best_seconds:
                best_responses, best_seconds = responses, seconds
        return best_responses, best_seconds

    bisect_responses, bisect_seconds = scan("bisect")
    automaton_responses, automaton_seconds = scan("automaton")
    scan_speedup = bisect_seconds / automaton_seconds

    # Kernel-level serving rate: the automaton primitives produce the
    # same 224 per-cell response arrays — one profile scan per stream,
    # a slice comparison per Stide cell, a shift-derived key probe per
    # t-Stide cell — without per-call detector plumbing.  The tables
    # come from fitting (untimed), exactly like the detector fits.
    automaton = MembershipAutomaton(
        suite.training.stream, alphabet_size, AUTOMATON_MAX_ORDER
    )
    fitted_reference, _cache = fitted("bisect")
    common_tables = {
        window_length: fitted_reference[("t-stide", window_length)]._common_packed
        for window_length in suite.window_lengths
    }

    def kernel_scan():
        responses = {}
        start = time.perf_counter()
        for size in suite.anomaly_sizes:
            stream = suite.stream(size).stream
            codes, profile = automaton.scan(stream)
            for window_length in suite.window_lengths:
                count = len(stream) - window_length + 1
                responses[("stide", window_length, size)] = (
                    profile[:count] < window_length
                ).astype(np.float64)
                common = sorted_membership(
                    codes.level(window_length), common_tables[window_length]
                )
                responses[("t-stide", window_length, size)] = (~common).astype(
                    np.float64
                )
        return responses, time.perf_counter() - start

    kernel_responses, kernel_seconds = None, float("inf")
    for _ in range(3):
        responses, seconds = kernel_scan()
        if seconds < kernel_seconds:
            kernel_responses, kernel_seconds = responses, seconds

    mismatched_windows = int(
        sum(
            (bisect_responses[key] != automaton_responses[key]).sum()
            + (bisect_responses[key] != kernel_responses[key]).sum()
            for key in bisect_responses
        )
    )

    reference = SweepEngine(executor="serial", kernel_tier="bisect").sweep(
        MEMBERSHIP_FAMILIES, suite
    )
    cells = suite.case_count() * len(MEMBERSHIP_FAMILIES)
    backends = {}
    for executor in MEMBERSHIP_EXECUTORS:
        engine = SweepEngine(
            max_workers=1 if executor == "serial" else MAX_WORKERS,
            executor=executor,
            kernel_tier="automaton",
        )
        start = time.perf_counter()
        maps = engine.sweep(MEMBERSHIP_FAMILIES, suite)
        seconds = time.perf_counter() - start
        mismatched = sum(
            reference[name].cell(anomaly_size, window_length)
            != maps[name].cell(anomaly_size, window_length)
            for name in MEMBERSHIP_FAMILIES
            for anomaly_size in suite.anomaly_sizes
            for window_length in suite.window_lengths
        )
        backends[executor] = {
            "sweep_seconds": round(seconds, 4),
            "cells_per_second": round(cells / seconds, 2),
            "mismatched_cells": int(mismatched),
        }

    calibration = machine_calibration()
    # The committed rate, rescaled to this machine's speed.
    baseline_rate = BASELINE_CELLS_PER_SECOND * (
        BASELINE_CALIBRATION / calibration
    )
    kernel_rate = cells / kernel_seconds
    speedup_vs_baseline = kernel_rate / baseline_rate

    section = {
        "families": list(MEMBERSHIP_FAMILIES),
        "grid_cells": cells,
        "scan_seconds_bisect": round(bisect_seconds, 4),
        "scan_seconds_automaton": round(automaton_seconds, 4),
        "scan_speedup": round(scan_speedup, 2),
        "kernel_seconds": round(kernel_seconds, 4),
        "mismatched_windows": mismatched_windows,
        "backends": backends,
        "baseline_cells_per_second": BASELINE_CELLS_PER_SECOND,
        "baseline_calibration_seconds": BASELINE_CALIBRATION,
        "calibration_seconds": round(calibration, 4),
        "cells_per_second": round(kernel_rate, 2),
        "speedup_vs_baseline": round(speedup_vs_baseline, 2),
        "min_speedup_vs_baseline": MIN_MEMBERSHIP_SPEEDUP,
    }
    record_path = OUTPUT_DIR / "BENCH_sweep.json"
    record = (
        json.loads(record_path.read_text()) if record_path.exists() else {}
    )
    record["membership_tier"] = section
    write_json_artifact("BENCH_sweep", record)
    lines = [
        f"Membership tier ({cells} cells, "
        f"families {', '.join(MEMBERSHIP_FAMILIES)}):",
        f"  scan        {bisect_seconds:>8.3f} s bisect / "
        f"{automaton_seconds:.3f} s automaton ({scan_speedup:.1f}x)",
        f"  kernel      {kernel_rate:>8.1f} cells/s vs calibrated "
        f"baseline {baseline_rate:.1f} -> {speedup_vs_baseline:.1f}x",
    ]
    lines.extend(
        f"  {executor:<11} {entry['cells_per_second']:>8.1f} cells/s sweep, "
        f"{entry['mismatched_cells']} mismatched cells"
        for executor, entry in backends.items()
    )
    lines.append(f"  mismatches  {mismatched_windows} windows")
    write_artifact("membership_tier", "\n".join(lines))

    assert mismatched_windows == 0, (
        "automaton responses must match the bisect tier window for window"
    )
    for executor, entry in backends.items():
        assert entry["mismatched_cells"] == 0, (
            f"{executor} automaton sweep diverged from the bisect reference"
        )
    assert speedup_vs_baseline >= MIN_MEMBERSHIP_SPEEDUP, (
        f"membership tier {speedup_vs_baseline:.2f}x vs the committed "
        f"baseline is below the {MIN_MEMBERSHIP_SPEEDUP}x floor"
    )


def test_zero_copy_transport(suite):
    """E23 — shared-memory descriptors vs pickled task payloads.

    A process-backend task ships its suite once per (family, DW)
    block; with the arena it ships only segment descriptors.  The
    payload bytes per cell must drop by at least ``MIN_PAYLOAD_DROP``,
    and the shm-backed sweep must agree with the pickle-backed one
    cell for cell.
    """
    arena = WindowArena()
    try:
        transport = share_suite(arena, suite)
        shared_bytes = len(pickle.dumps(transport))
        pickled_bytes = len(pickle.dumps(suite))
    finally:
        arena.close()
    cells_per_block = len(suite.anomaly_sizes)
    drop = pickled_bytes / shared_bytes

    shm_maps = SweepEngine(
        max_workers=MAX_WORKERS, executor="process"
    ).sweep(("stide", "markov"), suite)
    pickle_maps = SweepEngine(
        max_workers=MAX_WORKERS, executor="process", use_shared_memory=False
    ).sweep(("stide", "markov"), suite)
    mismatched = sum(
        shm_maps[name].cell(anomaly_size, window_length)
        != pickle_maps[name].cell(anomaly_size, window_length)
        for name in ("stide", "markov")
        for anomaly_size in suite.anomaly_sizes
        for window_length in suite.window_lengths
    )

    payload = {
        "bench": "zero_copy_transport",
        "shm_available": WindowArena.available(),
        "payload_bytes_pickle": pickled_bytes,
        "payload_bytes_shared": shared_bytes,
        "payload_bytes_per_cell_pickle": round(
            pickled_bytes / cells_per_block, 1
        ),
        "payload_bytes_per_cell_shared": round(
            shared_bytes / cells_per_block, 1
        ),
        "payload_drop": round(drop, 2),
        "min_payload_drop": MIN_PAYLOAD_DROP,
        "mismatched_cells": mismatched,
    }
    write_json_artifact("zero_copy_transport", payload)
    write_artifact(
        "zero_copy_transport",
        "\n".join(
            [
                "Zero-copy transport (per-task payload):",
                f"  pickled suite  {pickled_bytes:>12,} bytes",
                f"  descriptors    {shared_bytes:>12,} bytes",
                f"  drop           {drop:>12.1f}x",
                f"  mismatches     {mismatched:>12}",
            ]
        ),
    )

    assert mismatched == 0, "shm and pickle transports must agree"
    if WindowArena.available():
        assert drop >= MIN_PAYLOAD_DROP, (
            f"payload drop {drop:.1f}x below the {MIN_PAYLOAD_DROP}x floor"
        )


def test_resilience_overhead(suite):
    """The resilient scheduler must cost <= 5% on a fault-free sweep.

    Both engines run the identical clean workload (thread backend,
    same worker count, fresh caches); the only difference is whether
    task execution goes through the plain fast path or the
    :class:`~repro.runtime.resilience.ResilientRunner` (retries armed,
    never fired).  Best-of-``OVERHEAD_REPS`` timings on each side keep
    scheduler noise out of the ratio.
    """

    def _timed(factory) -> float:
        best = float("inf")
        for _ in range(OVERHEAD_REPS):
            engine = factory()
            start = time.perf_counter()
            engine.sweep(FAMILIES, suite)
            best = min(best, time.perf_counter() - start)
        return best

    plain_seconds = _timed(lambda: SweepEngine(max_workers=MAX_WORKERS))
    resilient_seconds = _timed(
        lambda: SweepEngine(
            max_workers=MAX_WORKERS,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(retries=2), task_timeout=300.0
            ),
        )
    )
    overhead = resilient_seconds / plain_seconds - 1.0

    payload = {
        "bench": "sweep_resilience_overhead",
        "families": list(FAMILIES),
        "max_workers": MAX_WORKERS,
        "repetitions": OVERHEAD_REPS,
        "plain_seconds": round(plain_seconds, 4),
        "resilient_seconds": round(resilient_seconds, 4),
        "overhead_fraction": round(overhead, 4),
        "max_overhead_fraction": MAX_RESILIENCE_OVERHEAD,
    }
    write_json_artifact("sweep_resilience_overhead", payload)
    write_artifact(
        "sweep_resilience_overhead",
        "\n".join(
            [
                "Resilience overhead (fault-free sweep, "
                f"best of {OVERHEAD_REPS}):",
                f"  plain       {plain_seconds:>8.2f} s",
                f"  resilient   {resilient_seconds:>8.2f} s",
                f"  overhead    {overhead:>8.2%}",
            ]
        ),
    )

    assert overhead <= MAX_RESILIENCE_OVERHEAD, (
        f"resilience overhead {overhead:.2%} exceeds the "
        f"{MAX_RESILIENCE_OVERHEAD:.0%} budget"
    )


def test_telemetry_overhead(suite):
    """The disabled instrumentation must cost <= 5% of a sweep.

    Every instrumentation site stays in the hot path even when no
    telemetry is attached; the disabled path of each hook is a single
    module-global read plus a ``None`` check.  The guarantee asserted
    here: (number of hook invocations a sweep makes) x (measured cost
    of one disabled hook) must stay within the 5% budget of the
    sweep's own wall clock.  The invocation count comes from an
    instrumented sweep of the identical workload (every span and every
    counter/histogram update is one disabled-path call when telemetry
    is off); comparing in-process like this keeps machine speed out of
    the ratio, and the cross-run guard against absolute regressions
    stays with ``check_bench_regression.py``.
    """
    from repro.runtime import Telemetry
    from repro.runtime import telemetry as hooks

    def _timed(factory) -> float:
        best = float("inf")
        for _ in range(OVERHEAD_REPS):
            engine = factory()
            start = time.perf_counter()
            engine.sweep(FAMILIES, suite)
            best = min(best, time.perf_counter() - start)
        return best

    sweep_seconds = _timed(lambda: SweepEngine(max_workers=MAX_WORKERS))

    collector = Telemetry()
    SweepEngine(max_workers=MAX_WORKERS, telemetry=collector).sweep(
        FAMILIES, suite
    )
    span_calls = len(collector.tracer)
    # One count()/observe() invocation is one disabled-path call, no
    # matter the value it credits — the kernel counters bulk-credit
    # whole window batches, so summing counter values would overstate
    # the call count by orders of magnitude.
    metric_calls = collector.metrics.updates

    assert hooks.active() is None  # measuring the true disabled path
    reps = 100_000
    start = time.perf_counter()
    for _ in range(reps):
        with hooks.span("cache", "bench"):
            pass
    span_cost = (time.perf_counter() - start) / reps
    start = time.perf_counter()
    for _ in range(reps):
        hooks.count("bench.noop")
    count_cost = (time.perf_counter() - start) / reps

    disabled_seconds = span_calls * span_cost + metric_calls * count_cost
    overhead = disabled_seconds / sweep_seconds

    payload = {
        "bench": "sweep_telemetry_overhead",
        "families": list(FAMILIES),
        "max_workers": MAX_WORKERS,
        "repetitions": OVERHEAD_REPS,
        "sweep_seconds": round(sweep_seconds, 4),
        "span_calls": span_calls,
        "metric_calls": int(metric_calls),
        "span_call_ns": round(span_cost * 1e9, 1),
        "metric_call_ns": round(count_cost * 1e9, 1),
        "disabled_hook_seconds": round(disabled_seconds, 6),
        "overhead_fraction": round(overhead, 5),
        "max_overhead_fraction": MAX_TELEMETRY_OVERHEAD,
    }
    write_json_artifact("sweep_telemetry_overhead", payload)
    write_artifact(
        "sweep_telemetry_overhead",
        "\n".join(
            [
                "Disabled-telemetry overhead "
                f"(best of {OVERHEAD_REPS} sweeps):",
                f"  sweep            {sweep_seconds:>10.3f} s",
                f"  hook sites hit   {span_calls + int(metric_calls):>10,}",
                f"  span hook        {span_cost * 1e9:>10.1f} ns",
                f"  counter hook     {count_cost * 1e9:>10.1f} ns",
                f"  disabled cost    {disabled_seconds:>10.4f} s",
                f"  overhead         {overhead:>10.3%}",
            ]
        ),
    )

    assert overhead <= MAX_TELEMETRY_OVERHEAD, (
        f"disabled-telemetry overhead {overhead:.2%} exceeds the "
        f"{MAX_TELEMETRY_OVERHEAD:.0%} budget"
    )


def test_fit_phase(suite, quick, tmp_path):
    """E24 — the fit phase: cold per-cell fits vs index vs warm store.

    Three passes over every (family, DW) fit of the sweep grid:

    * **cold** — the direct per-cell reference: no cache, no store;
      every fit re-slides, re-packs and re-sorts the training stream
      from scratch, exactly as a standalone ``fit`` call would;
    * **index** — one shared :class:`WindowCache`: the incremental
      training index derives every DW's unique-window table from the
      DW-1 table, and all families share it (one sort lineage for the
      whole grid instead of one sort per cell);
    * **store-warm** — a pre-populated :class:`ArtifactStore`: every
      fit is a content-addressed load, zero training work.

    Equivalence is asserted the way it matters: each pass's fitted
    detectors must score an identical probe batch bit-identically to
    the cold reference (0 mismatches).  Floors: index >= 5x cold and
    store-warm >= 20x cold at benchmark scale (2.5x / 10x under
    ``--quick``, where the corpus is too small for sorts to dominate).
    """
    alphabet_size = suite.training.alphabet.size
    stream = suite.training.stream
    probes = {
        window_length: np.ascontiguousarray(
            windows_array(stream, window_length)[:PROBE_WINDOWS]
        )
        for window_length in FIT_WINDOWS
    }

    def fit_all(cache=None, store=None):
        """Fit every (family, DW) cell; returns probe scores + seconds."""
        scores = {}
        start = time.perf_counter()
        for name in FAMILIES:
            for window_length in FIT_WINDOWS:
                detector = create_detector(name, window_length, alphabet_size)
                if cache is not None:
                    detector.attach_cache(cache)
                if store is not None:
                    detector.attach_store(store)
                detector.fit(stream)
                scores[(name, window_length)] = detector.score_batch(
                    probes[window_length]
                )
        return scores, time.perf_counter() - start

    cold_scores, cold_seconds = fit_all()
    index_scores, index_seconds = fit_all(cache=WindowCache())

    store = ArtifactStore(tmp_path / "fit-store")
    fit_all(cache=WindowCache(), store=store)  # populate
    warm_scores, warm_seconds = fit_all(cache=WindowCache(), store=store)
    fits = len(FAMILIES) * len(FIT_WINDOWS)
    assert store.stats.hits >= fits, "warm pass must load every fit"

    mismatched = sum(
        not np.array_equal(cold_scores[key], other[key])
        for other in (index_scores, warm_scores)
        for key in cold_scores
    )
    index_speedup = cold_seconds / index_seconds
    store_speedup = cold_seconds / warm_seconds
    index_floor = MIN_INDEX_FIT_SPEEDUP_QUICK if quick else MIN_INDEX_FIT_SPEEDUP
    store_floor = MIN_STORE_FIT_SPEEDUP_QUICK if quick else MIN_STORE_FIT_SPEEDUP

    payload = {
        "bench": "fit_phase",
        "calibration_seconds": round(machine_calibration(), 4),
        "families": list(FAMILIES),
        "window_lengths": list(FIT_WINDOWS),
        "fits": fits,
        "quick": quick,
        "cold_seconds": round(cold_seconds, 4),
        "index_seconds": round(index_seconds, 4),
        "store_warm_seconds": round(warm_seconds, 4),
        "index_speedup": round(index_speedup, 2),
        "store_speedup": round(store_speedup, 2),
        "min_index_speedup": index_floor,
        "min_store_speedup": store_floor,
        "mismatched_probe_batches": mismatched,
    }
    write_json_artifact("BENCH_fit_phase", payload)
    write_artifact(
        "fit_phase",
        "\n".join(
            [
                f"Fit phase ({fits} fits: {len(FAMILIES)} families x "
                f"DW {FIT_WINDOWS[0]}..{FIT_WINDOWS[-1]}):",
                f"  cold        {cold_seconds:>8.2f} s (per-cell reference)",
                f"  index       {index_seconds:>8.2f} s "
                f"({index_speedup:.1f}x)",
                f"  store-warm  {warm_seconds:>8.2f} s "
                f"({store_speedup:.1f}x)",
                f"  mismatches  {mismatched}",
            ]
        ),
    )

    assert mismatched == 0, (
        "index- and store-backed fits must score bit-identically to cold"
    )
    assert index_speedup >= index_floor, (
        f"shared-index fit speedup {index_speedup:.2f}x below the "
        f"{index_floor}x floor"
    )
    assert store_speedup >= store_floor, (
        f"store-warm fit speedup {store_speedup:.2f}x below the "
        f"{store_floor}x floor"
    )


def test_executors_agree(suite):
    """Thread-, serial- and process-backed sweeps are interchangeable."""
    thread_maps = SweepEngine(max_workers=2, executor="thread").sweep(
        ("stide", "markov"), suite
    )
    serial_maps = SweepEngine(executor="serial").sweep(
        ("stide", "markov"), suite
    )
    for name, serial_map in serial_maps.items():
        for cell in serial_map:
            assert (
                thread_maps[name].cell(cell.anomaly_size, cell.window_length)
                == cell
            )
