"""E21 — seed robustness: the shapes are properties, not accidents.

Re-runs the corpus construction and map experiment under independent
seeds and asserts the four qualitative shapes of Figures 3-6 replicate
every time.  (The NN is checked on one replication only — it dominates
the runtime — with the cheap detectors replicated more broadly.)
"""

from __future__ import annotations

from _artifacts import write_artifact

from repro.analysis.report import format_table
from repro.evaluation.robustness import (
    blind_shape,
    full_coverage_shape,
    replicate_shapes,
    stide_shape,
)
from repro.params import scaled_params

SEEDS = (11, 47, 2005)
CHEAP_SHAPES = {
    "stide": stide_shape,
    "markov": full_coverage_shape,
    "lane-brodley": blind_shape,
}


def test_seed_robustness(benchmark, params):
    base = scaled_params(60_000)

    report = benchmark.pedantic(
        replicate_shapes,
        args=(base, SEEDS),
        kwargs={"detectors": CHEAP_SHAPES},
        rounds=1,
        iterations=1,
    )

    assert report.replications == len(SEEDS)
    assert report.all_held, report.summary()

    rows = [
        (outcome.seed, name, "held" if held else "BROKE")
        for outcome in report.outcomes
        for name, held in sorted(outcome.shape_held.items())
    ]
    table = format_table(
        headers=("corpus seed", "detector", "paper shape"),
        rows=rows,
        title=(
            "E21 — shape replication across independent corpora "
            f"({base.training_length:,} elements each)"
        ),
    )
    write_artifact("robustness", table + "\n\n" + report.summary())
