"""E23 — the locality frame count as a deployed noise suppressor.

Section 5.5 deliberately sets Stide's LFC aside to measure intrinsic
detection ability; this bench shows what the LFC buys back in a
deployment.  On syscall traces with sparse training, Stide's residual
false alarms come from never-seen path junctions: each creates a burst
of foreign windows no wider than the window itself.  An exploit
produces a *longer* burst — entry junction, internal novel orderings,
and exit junction overlap — so a frame-count threshold just above the
junction burst width separates the two.

Shape: raw Stide FA > 0; LFC-filtered FA collapses to 0 with the hit
rate preserved.
"""

from __future__ import annotations

from _artifacts import write_artifact

from repro.analysis.report import format_table
from repro.detectors import StideDetector
from repro.detectors.lfc import lfc_alarms
from repro.detectors.threshold import MaximalResponseThreshold
from repro.evaluation.metrics import evaluate_alarms
from repro.syscalls import build_dataset, lpr_model, truth_window_regions

WINDOW = 6
FRAME = 20
# Junction noise yields at most ~2(DW-1) maximal responses per frame;
# exploit bursts exceed that (measured: noise <= 10, exploits >= 11).
COUNT_THRESHOLD = 11


def test_lfc_noise_suppression(benchmark):
    # A smaller training split than E9's leaves some junctions unseen,
    # which is exactly the noise regime the LFC targets.
    dataset = build_dataset(
        lpr_model(),
        training_sessions=12,
        test_normal_sessions=40,
        test_intrusion_sessions=30,
    )
    streams = dataset.training_streams()
    stide = StideDetector(WINDOW, dataset.alphabet.size).fit_many(streams)
    level = MaximalResponseThreshold.for_detector(stide)

    # LFC alarms trail up to a frame behind the triggering burst, so
    # false alarms are measured on anomaly-free sessions and hits on
    # intrusion sessions — the conventional per-session accounting.
    def deploy():
        splits = {}
        for split_name, traces in (
            ("normal", dataset.test_normal),
            ("intrusion", dataset.test_intrusions),
        ):
            raw, filtered, truths = [], [], []
            for trace in traces:
                responses = stide.score_stream(trace.stream)
                raw.append(level.alarms(responses))
                filtered.append(
                    lfc_alarms(responses, frame_size=FRAME,
                               count_threshold=COUNT_THRESHOLD)
                )
                truths.append(truth_window_regions(trace, WINDOW))
            splits[split_name] = (raw, filtered, truths)
        return splits

    splits = benchmark(deploy)

    raw_normal, lfc_normal, normal_truths = splits["normal"]
    raw_intr, lfc_intr, intr_truths = splits["intrusion"]
    raw_fa = evaluate_alarms(raw_normal, normal_truths)
    lfc_fa = evaluate_alarms(lfc_normal, normal_truths)
    raw_hits = evaluate_alarms(raw_intr, intr_truths)
    lfc_hits = evaluate_alarms(lfc_intr, intr_truths)

    # Shape: the exploit burst survives the frame filter...
    assert lfc_hits.hit_rate == 1.0
    assert raw_hits.hit_rate == 1.0
    # ...while isolated junction noise is suppressed entirely.
    assert raw_fa.false_alarm_windows > 0
    assert lfc_fa.false_alarm_windows == 0

    table = format_table(
        headers=("post-processing", "hit rate", "FA rate (normal sessions)",
                 "FA windows"),
        rows=[
            (
                "raw stide alarms",
                f"{raw_hits.hit_rate:.2f}",
                f"{raw_fa.false_alarm_rate:.4f}",
                raw_fa.false_alarm_windows,
            ),
            (
                f"LFC (frame {FRAME}, threshold {COUNT_THRESHOLD})",
                f"{lfc_hits.hit_rate:.2f}",
                f"{lfc_fa.false_alarm_rate:.4f}",
                lfc_fa.false_alarm_windows,
            ),
        ],
        title=(
            "E23 — locality frame count as noise suppressor "
            f"(lpr traces, DW={WINDOW}, sparse training)"
        ),
    )
    write_artifact("lfc_suppression", table)
