"""E8 — Sections 7-8: combination coverage analysis.

Paper statements reproduced as coverage algebra:

* Stide's detection coverage is a strict subset of the Markov
  detector's (every Stide alarm is also a Markov alarm, enabling the
  suppression scheme);
* combining Stide with L&B affords *no* detection advantage — they
  share their blind region.
"""

from __future__ import annotations

from _artifacts import write_artifact

from repro.analysis.report import combination_report, map_agreement_report
from repro.ensemble.coverage import Coverage, coverage_gain
from repro.evaluation.performance_map import build_performance_map


def test_combination_coverage(benchmark, suite):
    def build_all():
        return {
            name: build_performance_map(name, suite)
            for name in ("stide", "markov", "lane-brodley")
        }

    maps = benchmark.pedantic(build_all, rounds=1, iterations=1)

    stide = Coverage.from_performance_map(maps["stide"])
    markov = Coverage.from_performance_map(maps["markov"])
    lane_brodley = Coverage.from_performance_map(maps["lane-brodley"])

    # Paper shape: Stide ⊂ Markov; Stide ∪ L&B adds nothing.
    assert stide.is_strict_subset_of(markov)
    assert coverage_gain(stide, lane_brodley) == frozenset()
    assert (stide | lane_brodley).cells == stide.cells
    assert stide.blind_region() <= lane_brodley.blind_region()

    sections = [
        "Sections 7-8 — combination coverage analysis (reproduced)",
        "",
        "== Stide + Markov (suppression pairing) ==",
        combination_report(stide, markov),
        "",
        "== Stide + L&B (no-gain pairing) ==",
        combination_report(stide, lane_brodley),
        "",
        map_agreement_report(maps),
    ]
    write_artifact("combination_coverage", "\n".join(sections))
