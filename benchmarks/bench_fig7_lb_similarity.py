"""E6 — Figure 7: the L&B similarity calculation, exactly.

The paper works two size-5 examples:

* two identical sequences score ``Sim_max = DW (DW+1)/2 = 15``;
* a foreign sequence differing from a normal one only at the last
  element scores ``DW (DW-1)/2 = 10`` — a "slight dip" that is all the
  evidence the detector gets, which is why L&B misses edge-mismatching
  foreign sequences.

The benchmark times the similarity kernel and regenerates both numbers.
"""

from __future__ import annotations

from _artifacts import write_artifact

from repro.detectors.lane_brodley import lb_max_similarity, lb_similarity

# The paper's example sequences: cd <1> ls laf tar (encoded 0..4) and
# the foreign variant with `cd` in the final position.
NORMAL = (0, 1, 2, 3, 4)
FOREIGN = (0, 1, 2, 3, 0)


def test_fig7_lb_similarity(benchmark):
    identical = benchmark(lb_similarity, NORMAL, NORMAL)
    mismatch_last = lb_similarity(NORMAL, FOREIGN)

    assert identical == 15  # the paper's Sim_max for DW=5
    assert mismatch_last == 10  # the paper's Sim_weak
    assert lb_max_similarity(5) == 15

    lines = [
        "Figure 7 — L&B similarity between two size-5 sequences (reproduced)",
        "sequences: cd <1> ls laf tar  (encoded 0 1 2 3 4)",
        "",
        f"identical sequences:        Sim = {identical}   [paper: 15]",
        f"foreign final element:      Sim = {mismatch_last}   [paper: 10]",
        "",
        "The anomaly response for the foreign sequence is only "
        f"1 - {mismatch_last}/{identical} = {1 - mismatch_last / identical:.3f}, "
        "far from the maximal response 1.0 — the adjacency-weighted "
        "metric classifies the foreign sequence as close to normal.",
    ]
    write_artifact("fig7_lb_similarity", "\n".join(lines))
