"""E13 — throughput: detector scoring rates on long streams.

Not a paper figure — an engineering benchmark recording how fast each
similarity metric scores a long categorical stream, for sizing
deployments of the library.
"""

from __future__ import annotations

import numpy as np
import pytest

from _artifacts import write_artifact

from repro.detectors.registry import create_detector
from repro.detectors.stide import sorted_membership
from repro.runtime import AUTOMATON_MAX_ORDER, MembershipAutomaton
from repro.sequences.windows import pack_windows, windows_array

WINDOW_LENGTH = 6
TEST_LENGTH = 100_000

_RESULTS: dict[str, float] = {}
_MEMBERSHIP: dict[tuple[str, int], float] = {}


@pytest.mark.parametrize(
    "name", ("stide", "t-stide", "markov", "lane-brodley")
)
def test_scoring_throughput(benchmark, training, name):
    detector = create_detector(name, WINDOW_LENGTH, 8)
    detector.fit(training.stream)
    test_stream = training.stream[:TEST_LENGTH]

    responses = benchmark(detector.score_stream, test_stream)

    assert len(responses) == len(test_stream) - WINDOW_LENGTH + 1
    mean_seconds = benchmark.stats.stats.mean
    _RESULTS[name] = len(responses) / mean_seconds
    lines = [
        f"Throughput (DW={WINDOW_LENGTH}, stream {len(test_stream)} elements):"
    ]
    lines.extend(
        f"  {detector_name:<14} {rate:>14,.0f} windows/s"
        for detector_name, rate in sorted(_RESULTS.items())
    )
    write_artifact("throughput", "\n".join(lines))


_BATCH_RESULTS: dict[str, float] = {}


@pytest.mark.parametrize(
    "name", ("stide", "t-stide", "markov", "lane-brodley", "hamming")
)
def test_batch_scoring_throughput(benchmark, training, name):
    """One batched kernel pass over the stream's distinct windows.

    The sweep engine's unique-window regime: deduplicate the test
    windows, push the whole batch through
    :meth:`~repro.detectors.base.AnomalyDetector.score_batch` at once.
    """
    detector = create_detector(name, WINDOW_LENGTH, 8)
    detector.fit(training.stream)
    rows = np.unique(
        windows_array(training.stream[:TEST_LENGTH], WINDOW_LENGTH), axis=0
    )

    responses = benchmark(detector.score_batch, rows)

    assert len(responses) == len(rows)
    _BATCH_RESULTS[name] = len(rows) / benchmark.stats.stats.mean
    lines = [
        f"Batch kernel throughput (DW={WINDOW_LENGTH}, "
        f"{len(rows):,} distinct windows):"
    ]
    lines.extend(
        f"  {detector_name:<14} {rate:>14,.0f} windows/s"
        for detector_name, rate in sorted(_BATCH_RESULTS.items())
    )
    write_artifact("batch_throughput", "\n".join(lines))


@pytest.mark.parametrize("window_length", (6, 14))
@pytest.mark.parametrize("strategy", ("isin", "searchsorted"))
def test_stide_membership_strategy(benchmark, training, strategy, window_length):
    """Stide's database membership test: np.isin vs bisection.

    The packed normal database is already sorted (``np.unique``
    output), so per-probe ``searchsorted`` bisection skips the
    hash/sort machinery ``np.isin`` rebuilds on every call.  At small
    windows (packed range 8**6) ``np.isin`` can fall back to an O(1)
    lookup table and wins; at the grid's large windows (8**14 exceeds
    any table budget) it must sort-merge and bisection pulls ahead, so
    both regimes are recorded.
    """
    windows = windows_array(training.stream, window_length)
    packed = pack_windows(windows, training.alphabet.size)
    database = np.unique(packed[: len(packed) // 2])
    probes = packed[:TEST_LENGTH]

    if strategy == "isin":
        known = benchmark(np.isin, probes, database)
    else:
        known = benchmark(sorted_membership, probes, database)

    assert known.dtype == bool and len(known) == len(probes)
    key = (strategy, window_length)
    _MEMBERSHIP[key] = len(probes) / benchmark.stats.stats.mean
    lines = [f"Stide membership ({len(probes):,} probes):"]
    lines.extend(
        f"  {name:<14} DW={length:<3} {rate:>16,.0f} probes/s"
        for (name, length), rate in sorted(_MEMBERSHIP.items())
    )
    for length in sorted({length for _name, length in _MEMBERSHIP}):
        isin = _MEMBERSHIP.get(("isin", length))
        bisect = _MEMBERSHIP.get(("searchsorted", length))
        if isin and bisect:
            lines.append(
                f"  DW={length}: searchsorted/isin ratio {bisect / isin:.2f}x"
            )
    write_artifact("stide_membership", "\n".join(lines))


def test_multi_window_scan_throughput(benchmark, training):
    """E14 — the one-pass multi-DW serving path (ROADMAP item 1).

    A deployment scoring one event stream against every detector
    window at once: :meth:`MembershipAutomaton.foreign_all` makes a
    single scan (one match-length profile) and answers Stide
    foreignness for **all** DW in 2..15 simultaneously.  The events/sec
    recorded here is stream symbols consumed per second while serving
    all 14 window lengths — the number to compare against the per-DW
    ``score_stream`` rates above, which pay one pass *per* DW.
    """
    automaton = MembershipAutomaton(
        training.stream, training.alphabet.size, AUTOMATON_MAX_ORDER
    )
    test_stream = training.stream[:TEST_LENGTH]

    masks = benchmark(automaton.foreign_all, test_stream)

    assert set(masks) == set(range(2, automaton.max_order + 1))
    # Spot-check equivalence against the direct packed bisection.
    for window_length in (2, AUTOMATON_MAX_ORDER):
        packed = pack_windows(
            windows_array(test_stream, window_length), training.alphabet.size
        )
        known = sorted_membership(packed, automaton.database(window_length))
        assert np.array_equal(masks[window_length], ~known), window_length

    mean_seconds = benchmark.stats.stats.mean
    events = len(test_stream) / mean_seconds
    windows = sum(len(mask) for mask in masks.values()) / mean_seconds
    write_artifact(
        "multi_window_scan",
        "\n".join(
            [
                f"One-pass multi-DW scan (stream {len(test_stream):,} "
                f"elements, DW 2..{automaton.max_order}):",
                f"  events      {events:>14,.0f} events/s "
                f"(all {automaton.max_order - 1} DWs per event)",
                f"  windows     {windows:>14,.0f} windows/s across DWs",
            ]
        ),
    )


def test_fit_throughput(benchmark, training):
    """Time fitting Stide's normal database on the full training stream."""
    detector = create_detector("stide", WINDOW_LENGTH, 8)

    benchmark(detector.fit, training.stream)

    assert detector.is_fitted
