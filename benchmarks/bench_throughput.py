"""E13 — throughput: detector scoring rates on long streams.

Not a paper figure — an engineering benchmark recording how fast each
similarity metric scores a long categorical stream, for sizing
deployments of the library.
"""

from __future__ import annotations

import pytest

from _artifacts import write_artifact

from repro.detectors.registry import create_detector

WINDOW_LENGTH = 6
TEST_LENGTH = 100_000

_RESULTS: dict[str, float] = {}


@pytest.mark.parametrize(
    "name", ("stide", "t-stide", "markov", "lane-brodley")
)
def test_scoring_throughput(benchmark, training, name):
    detector = create_detector(name, WINDOW_LENGTH, 8)
    detector.fit(training.stream)
    test_stream = training.stream[:TEST_LENGTH]

    responses = benchmark(detector.score_stream, test_stream)

    assert len(responses) == TEST_LENGTH - WINDOW_LENGTH + 1
    mean_seconds = benchmark.stats.stats.mean
    _RESULTS[name] = len(responses) / mean_seconds
    lines = [
        f"Throughput (DW={WINDOW_LENGTH}, stream {TEST_LENGTH} elements):"
    ]
    for detector_name, rate in sorted(_RESULTS.items()):
        lines.append(f"  {detector_name:<14} {rate:>14,.0f} windows/s")
    write_artifact("throughput", "\n".join(lines))


def test_fit_throughput(benchmark, training):
    """Time fitting Stide's normal database on the full training stream."""
    detector = create_detector("stide", WINDOW_LENGTH, 8)

    benchmark(detector.fit, training.stream)

    assert detector.is_fitted
