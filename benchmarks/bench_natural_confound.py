"""E17 — why synthetic data: the natural-background confound.

Section 4.3: natural data was rejected because spurious, naturally
occurring foreign and rare sequences in the background "undermine the
fidelity of the final results".  The bench measures the confound
directly: the fraction of *anomaly-free* held-out background windows
that are foreign to training — i.e. detector responses with no injected
cause — on the paper's synthetic background versus natural-style data.

Shape: synthetic background confound is exactly 0 at every window
length; natural background confound is nonzero and grows with the
window length.
"""

from __future__ import annotations

import numpy as np

from _artifacts import write_artifact

from repro.analysis.report import format_table
from repro.datagen.background import generate_background
from repro.datagen.natural import NaturalSource, background_confound_rate

WINDOW_LENGTHS = (2, 4, 6, 8, 10, 12, 15)
HELDOUT = 5_000


def test_natural_background_confound(benchmark, training):
    source = NaturalSource(alphabet_size=8, seed=11)
    natural_train = source.sample(
        len(training.stream), np.random.default_rng(1)
    )
    natural_heldout = source.sample(HELDOUT, np.random.default_rng(2))
    synthetic_heldout = generate_background(8, HELDOUT)

    def measure():
        rows = []
        for window_length in WINDOW_LENGTHS:
            synthetic_rate = background_confound_rate(
                training.stream, synthetic_heldout, window_length
            )
            natural_rate = background_confound_rate(
                natural_train, natural_heldout, window_length
            )
            rows.append((window_length, synthetic_rate, natural_rate))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    for _window_length, synthetic_rate, _natural_rate in rows:
        assert synthetic_rate == 0.0  # the clean-background guarantee
    natural_rates = [natural for _w, _s, natural in rows]
    assert natural_rates[-1] > 0.0  # confound exists at long windows
    assert natural_rates == sorted(natural_rates)  # and grows with DW

    table = format_table(
        headers=("DW", "synthetic confound", "natural confound"),
        rows=[
            (window_length, f"{synthetic:.4f}", f"{natural:.4f}")
            for window_length, synthetic, natural in rows
        ],
        title=(
            "E17 — foreign background windows per held-out window "
            "(no anomaly injected anywhere)"
        ),
    )
    write_artifact("natural_confound", table)
