"""E14 — the "Why 6?" census: natural MFS lengths bound Stide's window.

Reproduces the analysis of the paper's reference [17] on both corpora:
count the minimal foreign sequences constructible at each length and
derive the smallest Stide window that detects them all (the largest
MFS length present).  On the paper's own corpus the bound is 9 (MFSs
exist at every size 2-9 by construction); on the UNM-style sendmail
traces the census finds the natural-data phenomenon the paper cites —
traces "replete with minimal foreign sequences".
"""

from __future__ import annotations

import numpy as np

from _artifacts import write_artifact

from repro.analysis.census import mfs_census
from repro.analysis.report import format_table
from repro.sequences.foreign import ForeignSequenceAnalyzer


def test_mfs_census(benchmark, training, syscall_dataset):
    paper_analyzer = training.analyzer
    syscall_stream = np.concatenate(syscall_dataset.training_streams())
    syscall_analyzer = ForeignSequenceAnalyzer(syscall_stream)

    def run_census():
        return (
            mfs_census(paper_analyzer, lengths=tuple(range(2, 10))),
            mfs_census(syscall_analyzer, lengths=tuple(range(2, 7))),
        )

    paper_census, syscall_census = benchmark.pedantic(
        run_census, rounds=1, iterations=1
    )

    # Paper corpus: MFSs exist at every evaluated size, so the census
    # bound equals the largest anomaly size (9).
    assert paper_census.recommended_stide_window() == 9
    # Natural-style traces are replete with MFSs (reference [17]).
    assert syscall_census.total > 50

    sections = []
    for label, census in (
        (f"paper corpus ({census_len(paper_census):,} elements)", paper_census),
        (
            f"sendmail traces ({census_len(syscall_census):,} calls)",
            syscall_census,
        ),
    ):
        sections.append(
            format_table(
                ("MFS length", "count"),
                census.rows(),
                title=f"MFS census — {label}",
            )
        )
        sections.append(
            f"recommended Stide window: DW >= "
            f"{census.recommended_stide_window()}"
        )
        sections.append("")
    write_artifact("census", "\n".join(sections).rstrip())


def census_len(census) -> int:
    """Training length helper for artifact captions."""
    return census.training_length
