"""E23 — fleet scale: tiered model store + streaming delta-fits.

The benchmark behind the tenant-sharded fleet store.  A
:class:`~repro.syscalls.fleet.SyntheticFleet` of 100k+ tenants (5k
under ``--quick``) is provisioned through the real serving stack —
WAL-journaled ingest, one fitted detector per tenant staged into the
hot/warm tiers — then driven through Zipf-skewed steady-state traffic
where every touch is ingest + detector lookup + score.

Three claims are measured and asserted:

* **zero cold refits at steady state** — every touch either finds its
  detector hot (delta-updated in place) or revives it from the warm
  mmap tier with one delta replay; the ``serve.fit`` counter must not
  move after provisioning.
* **bit-identity** — the sampled ``delta_verify_every`` hook audits
  delta-updated detectors against cold refits (``serve.delta.diverged``
  must stay 0), and the speedup phase re-checks every sampled tenant
  with :func:`~repro.runtime.deltafit.fit_states_equal`.
* **delta beats refit** — the traffic-weighted speedup of folding one
  batch via ``update_batch`` over refitting the full stream must clear
  the floor (20x at full scale).

Results land in ``benchmarks/output/BENCH_fleet.json`` (with the
machine calibration constant), which CI's
``check_bench_regression.py --require-fleet`` holds against the
committed repo-root baseline.
"""

from __future__ import annotations

import time

import numpy as np

from _artifacts import machine_calibration, write_artifact, write_json_artifact

from repro.detectors.registry import create_detector
from repro.runtime.deltafit import fit_states_equal
from repro.runtime.shardstore import ShardedStore
from repro.runtime.store import ArtifactStore
from repro.runtime.telemetry import Telemetry, activated
from repro.serve.tenants import TenantStateStore
from repro.syscalls import FleetSpec, SyntheticFleet

#: The common detector window for every fleet profile.
WINDOW = 6

#: One delta family per program profile, so the steady state exercises
#: all three count-based ``update_batch`` paths.
FAMILY_OF_PROGRAM = {"sendmail": "stide", "lpr": "t-stide", "ftpd": "markov"}

#: Small WAL segments so steady-state traffic actually rotates and
#: prunes (the satellite the serve.wal.* counters account for).
WAL_SEGMENT_BYTES = 64 * 1024

#: Tenants sampled (traffic-weighted) for the delta-vs-refit timing.
SPEEDUP_SAMPLE = 24

#: A step index far outside the steady-state range, so the speedup
#: batches are fresh, deterministic, and collision-free.
SPEEDUP_STEP = 1_000_003


def _scale(quick: bool) -> dict:
    if quick:
        return {
            "tenants": 5_000,
            "steps": 5,
            "touches_per_step": 300,
            "hot_cap_bytes": 4 * 1024 * 1024,
            "delta_verify_every": 150,
            "speedup_floor": 5.0,
        }
    return {
        "tenants": 100_000,
        "steps": 8,
        "touches_per_step": 1_250,
        "hot_cap_bytes": 32 * 1024 * 1024,
        "delta_verify_every": 1_000,
        "speedup_floor": 20.0,
    }


def _tid(tenant: int) -> str:
    return f"t{int(tenant):06d}"


def _family(fleet: SyntheticFleet, tenant: int) -> str:
    return FAMILY_OF_PROGRAM[fleet.program_of(int(tenant))]


def _counters(collector: Telemetry) -> dict:
    return collector.metrics.snapshot()["counters"]


def _provision(
    store: TenantStateStore, fleet: SyntheticFleet
) -> dict:
    """Open, train and fit every tenant through the serving stack."""
    spec = fleet.spec
    started = time.perf_counter()
    for tenant in range(spec.tenants):
        state = store.open(_tid(tenant), alphabet_size=spec.alphabet_size)
        events = store.validate_events(
            fleet.training_stream(tenant), spec.alphabet_size
        )
        store.ingest(state, events)
        store.detector_for(state, _family(fleet, tenant), WINDOW)
    assert store.models is not None
    store.models.compact_all()
    seconds = time.perf_counter() - started
    return {
        "seconds": round(seconds, 3),
        "tenants_per_sec": round(spec.tenants / seconds, 1),
        "events": spec.tenants * spec.train_events,
    }


def _steady_state(
    store: TenantStateStore,
    fleet: SyntheticFleet,
    steps: int,
    touches_per_step: int,
) -> tuple[dict, dict]:
    """Zipf traffic: every touch is ingest + detector lookup + score."""
    spec = fleet.spec
    collector = Telemetry()
    latencies: list[float] = []
    started = time.perf_counter()
    with activated(collector):
        for step in range(steps):
            for tenant in fleet.sample_tenants(step, touches_per_step):
                tenant = int(tenant)
                touch_started = time.perf_counter()
                state = store.get(_tid(tenant))
                batch = store.validate_events(
                    fleet.batch(tenant, step), spec.alphabet_size
                )
                store.ingest(state, batch)
                detector = store.detector_for(
                    state, _family(fleet, tenant), WINDOW
                )
                detector.score_stream(batch)
                latencies.append(time.perf_counter() - touch_started)
    seconds = time.perf_counter() - started
    counters = _counters(collector)
    touches = steps * touches_per_step
    lat_ms = np.asarray(latencies) * 1e3
    summary = {
        "steps": steps,
        "touches": touches,
        "events": touches * spec.batch_events,
        "seconds": round(seconds, 3),
        "events_per_sec": round(touches * spec.batch_events / seconds, 1),
        "touches_per_sec": round(touches / seconds, 1),
        "p50_touch_ms": round(float(np.percentile(lat_ms, 50)), 4),
        "p99_touch_ms": round(float(np.percentile(lat_ms, 99)), 4),
        "cold_refits": int(counters.get("serve.fit", 0)),
        "delta_updates": int(counters.get("serve.delta.update", 0)),
        "delta_replays": int(counters.get("serve.delta.replay", 0)),
        "delta_verifies": int(counters.get("serve.delta.verify", 0)),
        "diverged": int(counters.get("serve.delta.diverged", 0)),
        "wal_rotations": int(counters.get("serve.wal.rotate", 0)),
        "wal_prunes": int(counters.get("serve.wal.prune", 0)),
    }
    return summary, counters


def _measure_speedup(
    store: TenantStateStore, fleet: SyntheticFleet
) -> dict:
    """Traffic-weighted delta-vs-refit timing over sampled tenants.

    Per tenant: fold one fresh batch into an imported clone of the
    served detector (the delta path) versus refitting an unfitted twin
    on the full stream (the cold path), taking the best of a few
    repeats each.  The two resulting states must be bit-identical —
    the deltafit audit, re-run here on real fleet streams.  The
    headline number is the ratio of activity-weighted totals, i.e. the
    wall-clock factor the fleet actually saves under its Zipf traffic.
    """
    spec = fleet.spec
    seen: list[int] = []
    for tenant in fleet.sample_tenants(SPEEDUP_STEP, SPEEDUP_SAMPLE * 2):
        if int(tenant) not in seen:
            seen.append(int(tenant))
        if len(seen) >= SPEEDUP_SAMPLE:
            break
    weighted_delta = 0.0
    weighted_refit = 0.0
    ratios: list[float] = []
    for tenant in seen:
        state = store.get(_tid(tenant))
        family = _family(fleet, tenant)
        detector = store.detector_for(state, family, WINDOW)
        exported = detector.export_fit_state()
        assert exported, f"{family} exports no fit state"
        batch = fleet.batch(tenant, SPEEDUP_STEP)
        tail = state.events[len(state.events) - (WINDOW - 1) :]
        delta_seconds = float("inf")
        clone = None
        for _ in range(3):
            clone = create_detector(family, WINDOW, spec.alphabet_size)
            assert clone.import_fit_state(
                {name: np.array(array) for name, array in exported.items()}
            )
            t0 = time.perf_counter()
            clone.update_batch(batch, tail)
            delta_seconds = min(delta_seconds, time.perf_counter() - t0)
        full = np.concatenate([state.events, batch])
        refit_seconds = float("inf")
        twin = None
        for _ in range(2):
            twin = create_detector(family, WINDOW, spec.alphabet_size)
            t0 = time.perf_counter()
            twin.fit(full)
            refit_seconds = min(refit_seconds, time.perf_counter() - t0)
        assert clone is not None and twin is not None
        assert fit_states_equal(
            clone.export_fit_state(), twin.export_fit_state()
        ), f"delta state diverged from cold refit for tenant {tenant}"
        weight = float(fleet.activity_weights[tenant])
        weighted_delta += weight * delta_seconds
        weighted_refit += weight * refit_seconds
        ratios.append(refit_seconds / delta_seconds)
    return {
        "sampled_tenants": len(seen),
        "traffic_weighted": round(weighted_refit / weighted_delta, 1),
        "median": round(float(np.median(ratios)), 1),
        "max": round(float(np.max(ratios)), 1),
    }


def test_bench_fleet(tmp_path, quick):
    scale = _scale(quick)
    spec = FleetSpec(tenants=scale["tenants"], seed=29)
    fleet = SyntheticFleet(spec)
    models = ShardedStore(
        tmp_path / "models",
        shards=64,
        hot_cap_bytes=scale["hot_cap_bytes"],
        cold=ArtifactStore(tmp_path / "cold"),
    )
    store = TenantStateStore(
        tmp_path / "state",
        models=models,
        delta_verify_every=scale["delta_verify_every"],
        wal_segment_bytes=WAL_SEGMENT_BYTES,
    )

    provision = _provision(store, fleet)
    steady, _ = _steady_state(
        store, fleet, scale["steps"], scale["touches_per_step"]
    )

    # Zero cold refits at steady state: every touch was a hot delta
    # update or a warm revival with delta replay.
    assert steady["cold_refits"] == 0, steady
    assert steady["delta_updates"] > 0
    assert steady["delta_verifies"] > 0, "the verify hook never sampled"
    assert steady["diverged"] == 0, "delta-fits diverged from cold refits"

    speedup = _measure_speedup(store, fleet)
    assert speedup["traffic_weighted"] >= scale["speedup_floor"], speedup

    memory = store.memory_stats()
    assert memory["tenants"] == spec.tenants
    assert (
        memory["tenants_resident_bytes"]
        == memory["tenants_resident_bytes_counter"]
    )

    payload = {
        "bench": "fleet",
        "quick": quick,
        "calibration_seconds": round(machine_calibration(), 4),
        "tenants": spec.tenants,
        "spec": {
            "seed": spec.seed,
            "zipf_exponent": spec.zipf_exponent,
            "train_events": spec.train_events,
            "batch_events": spec.batch_events,
            "programs": list(spec.programs),
            "alphabet_size": spec.alphabet_size,
            "window": WINDOW,
        },
        "provision": provision,
        "steady_state": steady,
        "speedup": {**speedup, "floor": scale["speedup_floor"]},
        "memory": {
            "tenants_resident": memory["tenants"],
            "tenants_resident_bytes": memory["tenants_resident_bytes"],
            "hot_entries": memory["hot_tier"]["resident_entries"],
            "hot_bytes": memory["hot_tier"]["resident_bytes"],
            "hot_cap_bytes": memory["hot_tier"]["cap_bytes"],
            "hot_evictions": memory["hot_tier"]["evictions"],
            "shard_entries": memory["model_store"]["shard_entries"],
            "pending_entries": memory["model_store"]["pending_entries"],
            "compactions": memory["model_store"]["compactions"],
        },
    }
    write_json_artifact("BENCH_fleet", payload)
    write_artifact(
        "bench_fleet",
        "\n".join(
            [
                "fleet benchmark (E23)",
                f"  tenants: {spec.tenants} resident "
                f"({memory['tenants_resident_bytes']} stream bytes, "
                f"{memory['hot_tier']['resident_entries']} hot models)",
                f"  provision: {provision['seconds']} s "
                f"({provision['tenants_per_sec']} tenants/s)",
                f"  steady state: {steady['events_per_sec']} events/s, "
                f"p50 {steady['p50_touch_ms']} ms, "
                f"p99 {steady['p99_touch_ms']} ms, "
                f"{steady['cold_refits']} cold refits, "
                f"{steady['diverged']} divergences",
                f"  delta vs refit: {speedup['traffic_weighted']}x "
                f"traffic-weighted (median {speedup['median']}x over "
                f"{speedup['sampled_tenants']} tenants)",
            ]
        ),
    )
