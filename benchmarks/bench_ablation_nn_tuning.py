"""E10 — ablation: neural-network tuning sensitivity (Section 7 caveat).

"It is common knowledge that the performance of a multi-layer,
feed-forward network relies on a balance of parameter values ... Some
combinations of these values may result in weakened anomaly signals."

The bench sweeps network configurations from well-tuned to starved and
charts how many grid cells stay capable — the well-tuned network covers
everything (Figure 6); degraded ones open weak/blind regions.
"""

from __future__ import annotations

from _artifacts import write_artifact

from repro.analysis.report import format_table
from repro.detectors.mlp import MlpConfig
from repro.detectors.neural import NeuralDetector

CONFIGS = {
    "well-tuned (default)": MlpConfig(),
    "few epochs": MlpConfig(epochs=12),
    "tiny hidden layer": MlpConfig(hidden_units=2, epochs=60),
    "starved": MlpConfig(hidden_units=1, epochs=3, learning_rate=0.01, momentum=0.0),
}

# A reduced grid keeps the sweep affordable; the shape is unaffected.
SWEEP_WINDOWS = (2, 4, 8)
SWEEP_SIZES = (3, 6, 9)


def test_ablation_nn_tuning(benchmark, suite):
    alphabet_size = suite.training.alphabet.size

    def sweep():
        results = {}
        for label, config in CONFIGS.items():
            capable = 0
            total = 0
            for window_length in SWEEP_WINDOWS:
                detector = NeuralDetector(
                    window_length, alphabet_size, config=config
                ).fit(suite.training.stream)
                threshold = 1.0 - detector.response_tolerance
                for anomaly_size in SWEEP_SIZES:
                    injected = suite.stream(anomaly_size)
                    span = injected.incident_span(window_length)
                    responses = detector.score_stream(injected.stream)
                    total += 1
                    if responses[span.start : span.stop].max() >= threshold:
                        capable += 1
            results[label] = (capable, total)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    well_tuned_capable, total = results["well-tuned (default)"]
    starved_capable, _ = results["starved"]
    assert well_tuned_capable == total  # Figure 6: full coverage
    assert starved_capable < well_tuned_capable  # the caveat

    rows = [
        (label, f"{capable}/{total}")
        for label, (capable, total) in results.items()
    ]
    table = format_table(
        headers=("network configuration", "capable cells"),
        rows=rows,
        title=(
            "Ablation E10 — NN tuning sensitivity over "
            f"AS={SWEEP_SIZES} x DW={SWEEP_WINDOWS}"
        ),
    )
    write_artifact("ablation_nn_tuning", table)
