"""E1 — Figure 2: boundary sequences and the incident span.

The paper's Figure 2 illustrates a detector window of size 5 sliding
over an injected foreign sequence of size 8: the incident span contains
``DW + AS - 1 = 12`` windows, of which ``2 (DW - 1) = 8`` are boundary
sequences mixing anomaly and background elements.

The benchmark times the clean-injection procedure itself (the paper's
"brute force" step) and emits the span/boundary accounting.
"""

from __future__ import annotations

from _artifacts import write_artifact

from repro.datagen.anomalies import AnomalySynthesizer
from repro.datagen.injection import InjectionPolicy, inject_anomaly

WINDOW_LENGTH = 5
ANOMALY_SIZE = 8


def test_fig2_incident_span(benchmark, training):
    synthesizer = AnomalySynthesizer(training)
    anomaly = synthesizer.synthesize(ANOMALY_SIZE)
    policy = InjectionPolicy(
        window_lengths=training.params.window_sizes,
        rare_threshold=training.params.rare_threshold,
    )

    injected = benchmark(
        inject_anomaly, anomaly.sequence, training, policy, 1000
    )

    span = injected.incident_span(WINDOW_LENGTH)
    boundary = [
        start
        for start in span
        if injected.is_boundary_window(start, WINDOW_LENGTH)
    ]
    interior = [start for start in span if start not in boundary]

    assert len(span) == WINDOW_LENGTH + ANOMALY_SIZE - 1 == 12
    assert len(boundary) == 2 * (WINDOW_LENGTH - 1) == 8
    assert len(interior) == ANOMALY_SIZE - WINDOW_LENGTH + 1 == 4

    lines = [
        "Figure 2 — boundary sequences and incident span",
        f"detector window DW = {WINDOW_LENGTH}, foreign sequence AS = {ANOMALY_SIZE}",
        f"anomaly = {anomaly.sequence} at stream position {injected.position}",
        f"incident span: {len(span)} windows "
        f"(starts {span.start}..{span.stop - 1})  [paper: DW+AS-1 = 12]",
        f"boundary sequences: {len(boundary)} windows  [paper: 2(DW-1) = 8]",
        f"windows fully inside the anomaly: {len(interior)}",
        "boundary window starts: " + ", ".join(str(s) for s in boundary),
    ]
    write_artifact("fig2_incident_span", "\n".join(lines))
