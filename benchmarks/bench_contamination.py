"""E15 — ablation: training contamination blinds the detectors.

The paper's introduction lists "the inadvertent incorporation of
intrusive behavior into a detector's concept of normal behavior" among
anomaly detection's standing problems.  The bench quantifies it on the
paper corpus: splice the anomaly into the training stream and chart
which detectors still respond.

Shape: one occurrence blinds Stide (exact match now exists) while the
Markov detector still responds maximally (the occurrence is under the
rarity floor); heavy contamination past the rarity threshold silences
the Markov detector too.
"""

from __future__ import annotations

import numpy as np

from _artifacts import write_artifact

from repro.analysis.report import format_table
from repro.datagen.anomalies import AnomalySynthesizer
from repro.datagen.contamination import contaminate_training
from repro.detectors import MarkovDetector, StideDetector

ANOMALY_SIZE = 5


def _max_response(detector, anomaly: tuple[int, ...]) -> float:
    window_length = detector.window_length
    return max(
        detector.score_window(anomaly[i : i + window_length])
        for i in range(len(anomaly) - window_length + 1)
    )


def test_training_contamination(benchmark, training):
    anomaly = AnomalySynthesizer(training).synthesize(ANOMALY_SIZE)
    rng = np.random.default_rng(17)
    window_length = 3
    total_windows = len(training.stream) - window_length + 1
    heavy = int(training.params.rare_threshold * total_windows) + 50

    def run_levels():
        results = {}
        for label, occurrences in (
            ("clean", 0),
            ("1 occurrence", 1),
            (f"heavy ({heavy} occurrences)", heavy),
        ):
            if occurrences:
                corpus = contaminate_training(
                    training, anomaly.sequence, occurrences, rng, margin=16
                )
            else:
                corpus = training
            stide = StideDetector(ANOMALY_SIZE, 8).fit(corpus.stream)
            markov = MarkovDetector(window_length, 8).fit(corpus.stream)
            results[label] = (
                stide.score_window(anomaly.sequence),
                _max_response(markov, anomaly.sequence),
            )
        return results

    results = benchmark.pedantic(run_levels, rounds=1, iterations=1)

    clean_stide, clean_markov = results["clean"]
    one_stide, one_markov = results["1 occurrence"]
    heavy_label = f"heavy ({heavy} occurrences)"
    _heavy_stide, heavy_markov = results[heavy_label]

    assert clean_stide == 1.0 and clean_markov == 1.0
    assert one_stide == 0.0  # a single incorporation blinds Stide
    assert one_markov == 1.0  # still under the rarity floor
    assert heavy_markov < 1.0  # past the floor, Markov is silenced too

    rows = [
        (label, f"{stide_response:.1f}", f"{markov_response:.3f}")
        for label, (stide_response, markov_response) in results.items()
    ]
    table = format_table(
        headers=("training state", "stide response", "markov response"),
        rows=rows,
        title=(
            "Ablation E15 — contaminated training vs. detector response "
            f"(anomaly size {ANOMALY_SIZE}; stide DW={ANOMALY_SIZE}, "
            f"markov DW={window_length})"
        ),
    )
    write_artifact("contamination", table)
