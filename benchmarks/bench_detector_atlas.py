"""E25 — the extended detector atlas: every family on the paper's grid.

The paper charts four detectors; the library registers seven.  This
bench places the extensions in the same coordinate system — the
(anomaly size x detector window) performance map over the standard
suite — and records the coverage relations:

* **t-stide** joins the Markov detector at full coverage (it responds
  maximally to the rare windows the MFSs are composed of);
* **markov-chain** (first-order whole-window likelihood) is capable
  only at the *edges* of the space — the size-2 column (a size-2 MFS
  is a foreign pair) and the DW=2 row (one rare arc dominates a
  single-transition geometric mean) — echoing the paper's abstract:
  gains appear "at the edges of the space" and depend on parameter
  values and anomaly characteristics;
* **hamming** and **histogram** join L&B at zero coverage — positional
  and frequency metrics cannot reach the maximal response on
  order-anomalies built from common symbols.

The atlas substantiates the paper's closing claim at larger scale: the
similarity metric's mechanics, not its design intent, fix the coverage.
"""

from __future__ import annotations

from _artifacts import write_artifact

from repro.analysis.report import format_table, map_agreement_report
from repro.evaluation.performance_map import build_performance_map
from repro.evaluation.render import render_map_summary

ATLAS = (
    "stide",
    "t-stide",
    "markov",
    "markov-chain",
    "lane-brodley",
    "hamming",
    "histogram",
)


def test_detector_atlas(benchmark, suite):
    def build_all():
        return {name: build_performance_map(name, suite) for name in ATLAS}

    maps = benchmark.pedantic(build_all, rounds=1, iterations=1)

    # Coverage counts per family.
    capable = {name: len(maps[name].capable_cells()) for name in ATLAS}
    assert capable["stide"] == 84
    assert capable["t-stide"] == 112
    assert capable["markov"] == 112
    assert capable["lane-brodley"] == 0
    assert capable["hamming"] == 0
    assert capable["histogram"] == 0
    # markov-chain: the edges of the space — the whole size-2 column,
    # the DW=2 row, and at most the near-origin corner.
    chain_cells = maps["markov-chain"].capable_cells()
    for window_length in suite.window_lengths:
        assert (2, window_length) in chain_cells  # full size-2 column
    for anomaly_size in suite.anomaly_sizes:
        assert (anomaly_size, 2) in chain_cells  # full DW=2 row
    assert all(
        anomaly_size == 2 or window_length == 2
        or (anomaly_size <= 3 and window_length <= 3)
        for anomaly_size, window_length in chain_cells
    )

    rows = [
        (
            name,
            capable[name],
            len(maps[name].weak_cells()),
            len(maps[name].blind_cells()),
        )
        for name in ATLAS
    ]
    table = format_table(
        headers=("detector", "capable", "weak", "blind"),
        rows=rows,
        title="E25 — extended detector atlas over the 112-cell grid",
    )
    summaries = "\n".join(render_map_summary(maps[name]) for name in ATLAS)
    write_artifact(
        "detector_atlas",
        table + "\n\n" + summaries + "\n\n" + map_agreement_report(maps),
    )
