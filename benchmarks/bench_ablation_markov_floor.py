"""E11 — ablation: the Markov detector's rare-transition floor.

DESIGN.md documents the one estimation choice behind Figure 4's full
coverage: transitions whose joint window frequency falls below the
rarity threshold are assigned probability 0 (maximal response).  This
bench sweeps the floor and shows the coverage collapse: with the floor
at the paper's rarity bound (0.5%) the map is full; with no floor the
maximal-response coverage shrinks to (roughly) Stide's diagonal,
because every sub-anomaly-length window of an MFS exists in training.
"""

from __future__ import annotations

from _artifacts import write_artifact

from repro.analysis.report import format_table
from repro.evaluation.performance_map import build_performance_map

FLOORS = (0.0, 0.0005, 0.005, 0.05)


def test_ablation_markov_floor(benchmark, suite):
    def sweep():
        return {
            floor: build_performance_map("markov", suite, rare_floor=floor)
            for floor in FLOORS
        }

    maps = benchmark.pedantic(sweep, rounds=1, iterations=1)

    full = maps[0.005]
    unfloored = maps[0.0]
    stide_region = {
        (anomaly_size, window_length)
        for anomaly_size in suite.anomaly_sizes
        for window_length in suite.window_lengths
        if window_length >= anomaly_size
    }

    # Paper-consistent shape: flooring at the rarity bound -> Figure 4.
    assert full.detection_fraction() == 1.0
    # Without the floor, coverage collapses to (a subset of) the
    # foreign-window region — Stide's diagonal.
    assert unfloored.capable_cells() <= stide_region

    rows = [
        (
            f"{floor:.4f}",
            len(performance_map.capable_cells()),
            len(performance_map.weak_cells()),
            len(performance_map.blind_cells()),
            performance_map.spurious_alarm_total(),
        )
        for floor, performance_map in maps.items()
    ]
    table = format_table(
        headers=("rare floor", "capable", "weak", "blind", "spurious alarms"),
        rows=rows,
        title="Ablation E11 — Markov rare-transition floor vs. coverage (112 cells)",
    )
    write_artifact("ablation_markov_floor", table)
