"""E18 — ablation: L&B's edge bias vs. an unweighted positional metric.

Section 7 explains L&B's blindness via its adjacency-weighted
similarity: a foreign window mismatching a normal one only at the edge
scores nearly normal, while the same mismatch mid-window costs much
more.  The Hamming detector removes the weighting — mismatch position
becomes irrelevant — yet its *coverage class* is unchanged: still no
maximal response on any MFS cell.  Fixing one pathology of a metric
does not change which anomalies it can see; only measured maps decide.
"""

from __future__ import annotations

from _artifacts import write_artifact

from repro.analysis.report import format_table
from repro.detectors.hamming import HammingDetector
from repro.detectors.lane_brodley import LaneBrodleyDetector
from repro.evaluation.performance_map import build_performance_map

WINDOW_LENGTH = 5


def test_edge_bias_ablation(benchmark, suite, training):
    lane_brodley = LaneBrodleyDetector(WINDOW_LENGTH, 8).fit(training.stream)
    hamming = HammingDetector(WINDOW_LENGTH, 8).fit(training.stream)

    # One mismatch at each position of a normal cycle window.
    normal = tuple(range(WINDOW_LENGTH))  # codes 0..4, a cycle run

    def score_positions():
        rows = []
        for position in range(WINDOW_LENGTH):
            corrupted = list(normal)
            corrupted[position] = (normal[position] + 4) % 8
            rows.append(
                (
                    position,
                    lane_brodley.score_window(tuple(corrupted)),
                    hamming.score_window(tuple(corrupted)),
                )
            )
        return rows

    rows = benchmark(score_positions)

    lb_scores = [lb for _p, lb, _h in rows]
    hamming_scores = [h for _p, _lb, h in rows]
    # L&B: edge mismatches cost least; mid-window mismatches cost more.
    assert lb_scores[0] < max(lb_scores)
    assert lb_scores[-1] < max(lb_scores)
    # Hamming: position-invariant by construction.
    assert len(set(round(score, 9) for score in hamming_scores)) == 1

    # The coverage punchline: both maps have zero capable cells.
    hamming_map = build_performance_map("hamming", suite)
    assert len(hamming_map.capable_cells()) == 0

    table = format_table(
        headers=("mismatch position", "L&B response", "Hamming response"),
        rows=[
            (position, f"{lb:.3f}", f"{h:.3f}") for position, lb, h in rows
        ],
        title=(
            "E18 — single-mismatch response by position "
            f"(DW={WINDOW_LENGTH}; paper Figure 7 discussion)"
        ),
    )
    footer = (
        "\nhamming performance map: "
        f"{len(hamming_map.capable_cells())}/112 capable cells — "
        "position-invariance does not change the coverage class."
    )
    write_artifact("edge_bias", table + footer)
