"""E9 — Section 7: false-alarm suppression on UNM-style traces.

"Any alarms raised by the Markov-based detector, and not raised by
Stide, may be ignored as false alarms; alarms raised by both Stide and
the Markov-based detector are possible hits."

Paper shape: FA(markov) >> FA(stide); FA(markov gated by stide) drops
to FA(stide) with the hit rate preserved.
"""

from __future__ import annotations

from _artifacts import write_artifact

from repro.analysis.report import format_table
from repro.detectors import MarkovDetector, StideDetector
from repro.detectors.threshold import MaximalResponseThreshold
from repro.ensemble import gated_alarms
from repro.evaluation.metrics import evaluate_alarms
from repro.syscalls import truth_window_regions

WINDOW_LENGTH = 4


def test_false_alarm_suppression(benchmark, syscall_dataset):
    streams = syscall_dataset.training_streams()
    alphabet_size = syscall_dataset.alphabet.size
    stide = StideDetector(WINDOW_LENGTH, alphabet_size).fit_many(streams)
    markov = MarkovDetector(WINDOW_LENGTH, alphabet_size).fit_many(streams)
    traces = list(syscall_dataset.test_normal) + list(
        syscall_dataset.test_intrusions
    )
    stide_threshold = MaximalResponseThreshold.for_detector(stide)
    markov_threshold = MaximalResponseThreshold.for_detector(markov)

    def deploy():
        stide_alarms, markov_alarms, truths = [], [], []
        for trace in traces:
            stide_alarms.append(
                stide_threshold.alarms(stide.score_stream(trace.stream))
            )
            markov_alarms.append(
                markov_threshold.alarms(markov.score_stream(trace.stream))
            )
            truths.append(truth_window_regions(trace, WINDOW_LENGTH))
        return stide_alarms, markov_alarms, truths

    stide_alarms, markov_alarms, truths = benchmark(deploy)

    gated = [gated_alarms(m, s) for m, s in zip(markov_alarms, stide_alarms)]
    metrics = {
        "stide": evaluate_alarms(stide_alarms, truths),
        "markov": evaluate_alarms(markov_alarms, truths),
        "markov gated by stide": evaluate_alarms(gated, truths),
    }

    # Paper shape assertions.
    assert metrics["markov"].hit_rate == 1.0
    assert metrics["stide"].hit_rate == 1.0
    assert metrics["markov gated by stide"].hit_rate == 1.0
    assert (
        metrics["markov"].false_alarm_rate
        > 10 * metrics["stide"].false_alarm_rate
    )
    assert (
        metrics["markov gated by stide"].false_alarm_rate
        <= metrics["stide"].false_alarm_rate
    )

    rows = [
        (
            name,
            f"{m.hit_rate:.2f}",
            f"{m.hits}/{m.traces_with_truth}",
            f"{m.false_alarm_rate:.4f}",
            f"{m.false_alarm_windows}/{m.normal_windows}",
        )
        for name, m in metrics.items()
    ]
    table = format_table(
        headers=(
            "detector",
            "hit rate",
            "hits",
            "FA rate",
            "false alarms",
        ),
        rows=rows,
        title=(
            "Section 7 — Markov detects, Stide suppresses "
            f"(sendmail-like traces, DW={WINDOW_LENGTH})"
        ),
    )
    write_artifact("false_alarm_suppression", table)
