"""E12 — ablation: clean vs. random injection (Section 5.4.2 rationale).

"Randomly injecting an anomaly into the background data is undesirable
because of the high probability that a mixture of foreign or rare
boundary sequences is introduced."

The bench injects the same anomaly many times with the naive random
strategy and counts the injections that violate the clean-boundary
policy, versus the boundary-checked procedure (which never does).
"""

from __future__ import annotations

import numpy as np

from _artifacts import write_artifact

from repro.analysis.report import format_table
from repro.datagen.anomalies import AnomalySynthesizer
from repro.datagen.injection import InjectionPolicy, inject_anomaly, inject_randomly

ANOMALY_SIZE = 6
TRIALS = 50


def _boundary_violations(injected, store, window_lengths) -> int:
    violations = 0
    for window_length in window_lengths:
        view = np.lib.stride_tricks.sliding_window_view(
            injected.stream, window_length
        )
        for start, row in enumerate(view):
            overlap = injected.window_overlap(start, window_length)
            if overlap == 0 or overlap == injected.anomaly_size:
                continue
            if not store.contains(tuple(int(c) for c in row)):
                violations += 1
    return violations


def test_ablation_injection_policy(benchmark, training):
    anomaly = AnomalySynthesizer(training).synthesize(ANOMALY_SIZE)
    window_lengths = (2, 5, 9, 15)
    policy = InjectionPolicy(
        window_lengths=training.params.window_sizes,
        rare_threshold=training.params.rare_threshold,
    )
    store = training.analyzer.store_for(*window_lengths)

    def random_trials():
        rng = np.random.default_rng(42)
        dirty = 0
        total_spurious = 0
        for _ in range(TRIALS):
            injected = inject_randomly(anomaly.sequence, training, 400, rng)
            spurious = _boundary_violations(injected, store, window_lengths)
            if spurious:
                dirty += 1
                total_spurious += spurious
        return dirty, total_spurious

    dirty, total_spurious = benchmark(random_trials)

    clean = inject_anomaly(anomaly.sequence, training, policy, stream_length=400)
    clean_spurious = _boundary_violations(clean, store, window_lengths)

    # Paper shape: random injection usually dirty; checked injection never.
    assert clean_spurious == 0
    assert dirty > TRIALS // 2

    table = format_table(
        headers=("injection strategy", "dirty injections", "spurious foreign windows"),
        rows=[
            ("random (naive)", f"{dirty}/{TRIALS}", total_spurious),
            ("boundary-checked (paper)", "0/1", clean_spurious),
        ],
        title=(
            "Ablation E12 — injection strategy vs. spurious boundary anomalies "
            f"(AS={ANOMALY_SIZE}, windows {window_lengths})"
        ),
    )
    write_artifact("ablation_injection", table)
