"""E2 — Figure 3: Lane & Brodley performance map.

Paper shape: the L&B detector is blind across the entire space — no
(anomaly size, detector window) cell elicits a maximal response; the
similarity metric's adjacency bias makes a minimal foreign sequence
look close to normal (Section 7, Figure 7).
"""

from __future__ import annotations

from _artifacts import write_artifact

from repro.evaluation.performance_map import build_performance_map
from repro.evaluation.render import (
    render_graded_map,
    render_map_summary,
    render_performance_map,
)


def test_fig3_lane_brodley_map(benchmark, suite):
    performance_map = benchmark.pedantic(
        build_performance_map,
        args=("lane-brodley", suite),
        rounds=1,
        iterations=1,
    )

    # Paper shape: zero capable cells anywhere on the grid.
    assert len(performance_map.capable_cells()) == 0
    assert performance_map.detection_fraction() == 0.0

    chart = render_performance_map(
        performance_map,
        title="Figure 3 — Detection coverage, L&B detector (reproduced)",
    )
    graded = render_graded_map(
        performance_map,
        title=(
            "Section 7's 'close to normal' bias, made visible: max "
            "in-span L&B response per cell (% of maximal)"
        ),
    )
    write_artifact(
        "fig3_lane_brodley_map",
        chart
        + "\n\n"
        + render_map_summary(performance_map)
        + "\n\n"
        + graded,
    )
