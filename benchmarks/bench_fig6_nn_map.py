"""E5 — Figure 6: neural-network-detector performance map.

Paper shape: with a well-tuned network the NN detector "appears to be
as good as the Markov-based detector" — full coverage of the evaluated
space.  (Its tuning sensitivity is exercised separately by the E10
ablation bench.)
"""

from __future__ import annotations

from _artifacts import write_artifact

from repro.evaluation.performance_map import build_performance_map
from repro.evaluation.render import render_map_summary, render_performance_map


def test_fig6_neural_network_map(benchmark, suite):
    performance_map = benchmark.pedantic(
        build_performance_map,
        args=("neural-network", suite),
        rounds=1,
        iterations=1,
    )

    # Paper shape: mimics the Markov detector — full coverage.
    assert performance_map.detection_fraction() == 1.0

    chart = render_performance_map(
        performance_map,
        title="Figure 6 — Detection coverage, Neural-Net-based detector (reproduced)",
    )
    write_artifact(
        "fig6_nn_map", chart + "\n\n" + render_map_summary(performance_map)
    )
