"""CI guard: fail when the sweep benchmark regresses against baseline.

Compares a freshly produced ``benchmarks/output/BENCH_sweep.json``
against the committed baseline ``BENCH_sweep.json`` at the repo root.
Raw seconds are not comparable across machines, so both records carry
``calibration_seconds`` — the time of a fixed sort-dominated reference
workload on the machine that produced them (see
:func:`_artifacts.machine_calibration`) — and the baseline's sweep
time is rescaled by the calibration ratio before the comparison.  The
check fails (exit 1) when the calibrated sweep wall-clock regresses by
more than ``TOLERANCE``.

A missing baseline is a warning, not a failure: the first run on a new
branch (or a deliberate baseline refresh) must be able to produce the
artifact that later runs are held to.

Usage::

    python benchmarks/check_bench_regression.py \
        [--baseline BENCH_sweep.json] [--current benchmarks/output/BENCH_sweep.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Allowed calibrated slowdown before the check fails.
TOLERANCE = 0.25


def _load(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as error:
        print(f"warning: unreadable benchmark record {path}: {error}")
        return None


def check(baseline_path: Path, current_path: Path) -> int:
    baseline = _load(baseline_path)
    if baseline is None:
        print(
            f"warning: no baseline at {baseline_path}; skipping the "
            "regression check (commit benchmarks/output/BENCH_sweep.json "
            "from a clean run to arm it)"
        )
        return 0
    current = _load(current_path)
    if current is None:
        print(f"error: no fresh benchmark record at {current_path}")
        return 1

    required = ("sweep_seconds", "calibration_seconds")
    for record, label in ((baseline, "baseline"), (current, "current")):
        missing = [key for key in required if not record.get(key)]
        if missing:
            print(
                f"warning: {label} record lacks {', '.join(missing)}; "
                "skipping the regression check"
            )
            return 0

    # Rescale the baseline to this machine's speed: a baseline captured
    # on hardware 2x faster than CI would otherwise always "regress".
    scale = current["calibration_seconds"] / baseline["calibration_seconds"]
    allowed = baseline["sweep_seconds"] * scale * (1.0 + TOLERANCE)
    actual = current["sweep_seconds"]
    verdict = "OK" if actual <= allowed else "REGRESSION"
    print(
        f"sweep wall-clock: {actual:.3f} s vs calibrated baseline "
        f"{baseline['sweep_seconds']:.3f} s x {scale:.2f} "
        f"(allowed <= {allowed:.3f} s, tolerance {TOLERANCE:.0%}): {verdict}"
    )
    if actual > allowed:
        print(
            "error: sweep benchmark regressed beyond tolerance; if the "
            "slowdown is intentional, refresh the committed BENCH_sweep.json"
        )
        return 1
    return check_membership_tier(baseline, current)


def check_membership_tier(baseline: dict, current: dict) -> int:
    """Gate the membership tier: calibrated cells/sec and exactness.

    The ``membership_tier`` section records the one-pass kernel's
    serving rate (cells/sec) and its window/cell mismatch counts
    against the bisect tier.  Any mismatch fails outright; the rate is
    held to the committed baseline's, rescaled by the calibration
    ratio, under the same ``TOLERANCE``.  A baseline without the
    section (pre-tier record) arms on the next refresh.
    """
    section = current.get("membership_tier")
    reference = baseline.get("membership_tier")
    if section is None:
        if reference is None:
            return 0
        print("error: current record lacks the membership_tier section")
        return 1

    mismatches = int(section.get("mismatched_windows", 0)) + sum(
        int(entry.get("mismatched_cells", 0))
        for entry in section.get("backends", {}).values()
    )
    if mismatches:
        print(
            f"error: membership tier reports {mismatches} mismatches "
            "against the bisect reference"
        )
        return 1
    if reference is None:
        print(
            "warning: baseline predates the membership_tier section; "
            "rate gate arms on the next baseline refresh"
        )
        return 0

    required = ("cells_per_second", "calibration_seconds")
    for record, label in ((reference, "baseline"), (section, "current")):
        if any(not record.get(key) for key in required):
            print(
                f"warning: {label} membership_tier lacks rate fields; "
                "skipping the rate gate"
            )
            return 0
    scale = reference["calibration_seconds"] / section["calibration_seconds"]
    floor = reference["cells_per_second"] * scale * (1.0 - TOLERANCE)
    rate = section["cells_per_second"]
    verdict = "OK" if rate >= floor else "REGRESSION"
    print(
        f"membership tier: {rate:.1f} cells/s vs calibrated baseline "
        f"{reference['cells_per_second']:.1f} x {scale:.2f} "
        f"(floor >= {floor:.1f}, tolerance {TOLERANCE:.0%}): {verdict}"
    )
    if rate < floor:
        print(
            "error: membership tier throughput regressed beyond tolerance; "
            "if intentional, refresh the committed BENCH_sweep.json"
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_sweep.json",
        help="committed baseline record (default: repo-root BENCH_sweep.json)",
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "output" / "BENCH_sweep.json",
        help="freshly produced record to judge",
    )
    args = parser.parse_args(argv)
    return check(args.baseline, args.current)


if __name__ == "__main__":
    sys.exit(main())
