"""CI guard: fail when the sweep benchmark regresses against baseline.

Compares a freshly produced ``benchmarks/output/BENCH_sweep.json``
against the committed baseline ``BENCH_sweep.json`` at the repo root.
Raw seconds are not comparable across machines, so both records carry
``calibration_seconds`` — the time of a fixed sort-dominated reference
workload on the machine that produced them (see
:func:`_artifacts.machine_calibration`) — and the baseline's sweep
time is rescaled by the calibration ratio before the comparison.  The
check fails (exit 1) when the calibrated sweep wall-clock regresses by
more than ``TOLERANCE``.

A missing baseline is a warning, not a failure: the first run on a new
branch (or a deliberate baseline refresh) must be able to produce the
artifact that later runs are held to.

Usage::

    python benchmarks/check_bench_regression.py \
        [--baseline BENCH_sweep.json] [--current benchmarks/output/BENCH_sweep.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Allowed calibrated slowdown before the check fails.
TOLERANCE = 0.25


def _load(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as error:
        print(f"warning: unreadable benchmark record {path}: {error}")
        return None


def check(baseline_path: Path, current_path: Path) -> int:
    baseline = _load(baseline_path)
    if baseline is None:
        print(
            f"warning: no baseline at {baseline_path}; skipping the "
            "regression check (commit benchmarks/output/BENCH_sweep.json "
            "from a clean run to arm it)"
        )
        return 0
    current = _load(current_path)
    if current is None:
        print(f"error: no fresh benchmark record at {current_path}")
        return 1

    required = ("sweep_seconds", "calibration_seconds")
    for record, label in ((baseline, "baseline"), (current, "current")):
        missing = [key for key in required if not record.get(key)]
        if missing:
            print(
                f"warning: {label} record lacks {', '.join(missing)}; "
                "skipping the regression check"
            )
            return 0

    # Rescale the baseline to this machine's speed: a baseline captured
    # on hardware 2x faster than CI would otherwise always "regress".
    scale = current["calibration_seconds"] / baseline["calibration_seconds"]
    allowed = baseline["sweep_seconds"] * scale * (1.0 + TOLERANCE)
    actual = current["sweep_seconds"]
    verdict = "OK" if actual <= allowed else "REGRESSION"
    print(
        f"sweep wall-clock: {actual:.3f} s vs calibrated baseline "
        f"{baseline['sweep_seconds']:.3f} s x {scale:.2f} "
        f"(allowed <= {allowed:.3f} s, tolerance {TOLERANCE:.0%}): {verdict}"
    )
    if actual > allowed:
        print(
            "error: sweep benchmark regressed beyond tolerance; if the "
            "slowdown is intentional, refresh the committed BENCH_sweep.json"
        )
        return 1
    return check_membership_tier(baseline, current)


def check_membership_tier(baseline: dict, current: dict) -> int:
    """Gate the membership tier: calibrated cells/sec and exactness.

    The ``membership_tier`` section records the one-pass kernel's
    serving rate (cells/sec) and its window/cell mismatch counts
    against the bisect tier.  Any mismatch fails outright; the rate is
    held to the committed baseline's, rescaled by the calibration
    ratio, under the same ``TOLERANCE``.  A baseline without the
    section (pre-tier record) arms on the next refresh.
    """
    section = current.get("membership_tier")
    reference = baseline.get("membership_tier")
    if section is None:
        if reference is None:
            return 0
        print("error: current record lacks the membership_tier section")
        return 1

    mismatches = int(section.get("mismatched_windows", 0)) + sum(
        int(entry.get("mismatched_cells", 0))
        for entry in section.get("backends", {}).values()
    )
    if mismatches:
        print(
            f"error: membership tier reports {mismatches} mismatches "
            "against the bisect reference"
        )
        return 1
    if reference is None:
        print(
            "warning: baseline predates the membership_tier section; "
            "rate gate arms on the next baseline refresh"
        )
        return 0

    required = ("cells_per_second", "calibration_seconds")
    for record, label in ((reference, "baseline"), (section, "current")):
        if any(not record.get(key) for key in required):
            print(
                f"warning: {label} membership_tier lacks rate fields; "
                "skipping the rate gate"
            )
            return 0
    scale = reference["calibration_seconds"] / section["calibration_seconds"]
    floor = reference["cells_per_second"] * scale * (1.0 - TOLERANCE)
    rate = section["cells_per_second"]
    verdict = "OK" if rate >= floor else "REGRESSION"
    print(
        f"membership tier: {rate:.1f} cells/s vs calibrated baseline "
        f"{reference['cells_per_second']:.1f} x {scale:.2f} "
        f"(floor >= {floor:.1f}, tolerance {TOLERANCE:.0%}): {verdict}"
    )
    if rate < floor:
        print(
            "error: membership tier throughput regressed beyond tolerance; "
            "if intentional, refresh the committed BENCH_sweep.json"
        )
        return 1
    return 0


def check_serve(
    baseline_path: Path, current_path: Path, require: bool = False
) -> int:
    """Gate the serving benchmark: correctness first, then speed.

    Correctness is absolute: a current record reporting any
    no-wrong-score violation — clean or chaos — fails outright,
    regression or not, and a record with a micro-batch section must
    balance its job ledger (jobs in == jobs out + refused).  Speed is
    calibrated like the sweep gate: clean *batched* streams/sec is
    held to a floor, clean p99 latency and recovery-after-SIGKILL to
    ceilings, each rescaled by the calibration ratio under the shared
    ``TOLERANCE``.  Batch occupancy gets a sanity floor rather than a
    calibrated one — with ``max_batch > 1`` and a fan-out plan, a mean
    occupancy collapsing to ~1 means the scheduler stopped batching
    even if throughput happens to pass on a fast machine.

    A missing *current* record is a warning by default (most CI jobs
    never run the serving benchmark) and an error under ``require``
    (the serve-smoke job, whose whole point is producing it).
    """
    current = _load(current_path)
    if current is None:
        if require:
            print(f"error: no fresh serve benchmark record at {current_path}")
            return 1
        print(
            f"note: no serve record at {current_path}; skipping the serve "
            "gate (run `pytest benchmarks/bench_serve.py` to produce one)"
        )
        return 0

    violations = sum(
        int(current.get(scenario, {}).get("violations", 0))
        for scenario in ("clean", "chaos")
    )
    if violations:
        print(
            f"error: serve benchmark reports {violations} no-wrong-score "
            "violation(s); this gate has no tolerance for wrong scores"
        )
        return 1
    recovery = current.get("recovery", {})
    if not recovery.get("bit_identical"):
        print("error: serve recovery was not bit-identical after SIGKILL")
        return 1
    batch = current.get("clean", {}).get("batch")
    if batch:
        settled = int(batch.get("jobs_out", 0)) + int(
            batch.get("refused", 0)
        )
        if settled != int(batch.get("jobs_in", 0)):
            print(
                f"error: micro-batch ledger does not balance "
                f"(jobs_in {batch.get('jobs_in')} != jobs_out + refused "
                f"{settled}); a score job entered the scheduler and "
                "never resolved"
            )
            return 1
        occupancy = float(batch.get("occupancy_mean", 0.0))
        # Quick records run a 2-tenant plan where near-solo batches
        # are legitimate; the occupancy floor binds on the fan-out
        # plan only.
        if (
            not current.get("quick")
            and int(batch.get("max_batch", 1)) > 1
            and occupancy < 1.5
        ):
            print(
                f"error: mean batch occupancy {occupancy:.2f} is below "
                "the 1.5 sanity floor — the scheduler is not actually "
                "fusing cross-tenant work under the fan-out plan"
            )
            return 1
        print(
            f"serve batching: occupancy mean {occupancy:.2f} "
            f"(max {batch.get('occupancy_max')}), ledger balanced "
            f"({batch.get('jobs_in')} in == {settled} settled): OK"
        )

    baseline = _load(baseline_path)
    if baseline is None:
        print(
            f"warning: no serve baseline at {baseline_path}; correctness "
            "checked, rate gate skipped (commit "
            "benchmarks/output/BENCH_serve.json to arm it)"
        )
        return 0
    if baseline.get("plan") != current.get("plan"):
        print(
            f"note: serve plans differ (baseline {baseline.get('plan')} "
            f"vs current {current.get('plan')}); rate gate skipped, "
            "correctness gates applied"
        )
        return 0
    for record, label in ((baseline, "baseline"), (current, "current")):
        if not record.get("calibration_seconds"):
            print(
                f"warning: {label} serve record lacks calibration_seconds; "
                "skipping the rate gate"
            )
            return 0
    # scale > 1 means this machine is slower than the baseline's.
    scale = current["calibration_seconds"] / baseline["calibration_seconds"]

    failed = 0
    floor_rate = baseline.get("clean", {}).get("streams_per_sec")
    rate = current.get("clean", {}).get("streams_per_sec")
    if floor_rate and rate:
        floor = floor_rate / scale * (1.0 - TOLERANCE)
        verdict = "OK" if rate >= floor else "REGRESSION"
        print(
            f"serve throughput: {rate:.1f} streams/s vs calibrated "
            f"baseline {floor_rate:.1f} / {scale:.2f} "
            f"(floor >= {floor:.1f}, tolerance {TOLERANCE:.0%}): {verdict}"
        )
        failed += rate < floor
    for metric, path in (
        ("p99_ms", ("clean", "p99_ms")),
        ("recovery_seconds", ("recovery", "recovery_seconds")),
    ):
        reference = baseline.get(path[0], {}).get(path[1])
        actual = current.get(path[0], {}).get(path[1])
        if not reference or not actual:
            continue
        ceiling = reference * scale * (1.0 + TOLERANCE)
        verdict = "OK" if actual <= ceiling else "REGRESSION"
        print(
            f"serve {metric}: {actual:.3f} vs calibrated baseline "
            f"{reference:.3f} x {scale:.2f} "
            f"(ceiling <= {ceiling:.3f}, tolerance {TOLERANCE:.0%}): {verdict}"
        )
        failed += actual > ceiling
    if failed:
        print(
            "error: serve benchmark regressed beyond tolerance; if the "
            "slowdown is intentional, refresh the committed BENCH_serve.json"
        )
        return 1
    return 0


def check_fleet(
    baseline_path: Path, current_path: Path, require: bool = False
) -> int:
    """Gate the fleet benchmark: correctness first, then speed.

    Correctness is absolute: any cold refit at steady state, any
    delta-vs-refit divergence, or a traffic-weighted delta speedup
    below the record's own floor fails outright — these hold on any
    machine, no calibration involved.  Speed (steady-state events/sec
    floor, p99 touch-latency ceiling) is calibrated like the other
    gates, but only when baseline and current ran the same fleet size:
    a 5k-tenant quick record is not comparable to the committed
    100k-tenant baseline.

    A missing *current* record is a warning by default and an error
    under ``require`` (the fleet-smoke CI job).
    """
    current = _load(current_path)
    if current is None:
        if require:
            print(f"error: no fresh fleet benchmark record at {current_path}")
            return 1
        print(
            f"note: no fleet record at {current_path}; skipping the fleet "
            "gate (run `pytest benchmarks/bench_fleet.py` to produce one)"
        )
        return 0

    steady = current.get("steady_state", {})
    if int(steady.get("cold_refits", 0)):
        print(
            f"error: fleet steady state performed "
            f"{steady['cold_refits']} cold refit(s); every touch must be "
            "a delta update or a warm revival with delta replay"
        )
        return 1
    if int(steady.get("diverged", 0)):
        print(
            f"error: fleet reports {steady['diverged']} delta-fit "
            "divergence(s) from the cold-refit reference"
        )
        return 1
    speedup = current.get("speedup", {})
    weighted = speedup.get("traffic_weighted")
    floor = speedup.get("floor")
    if weighted is not None and floor is not None:
        verdict = "OK" if weighted >= floor else "REGRESSION"
        print(
            f"fleet delta speedup: {weighted:.1f}x traffic-weighted "
            f"(floor >= {floor:.1f}x): {verdict}"
        )
        if weighted < floor:
            print("error: delta-fit speedup fell below the record's floor")
            return 1

    baseline = _load(baseline_path)
    if baseline is None:
        print(
            f"warning: no fleet baseline at {baseline_path}; correctness "
            "checked, rate gate skipped (commit "
            "benchmarks/output/BENCH_fleet.json to arm it)"
        )
        return 0
    if baseline.get("tenants") != current.get("tenants"):
        print(
            f"note: fleet sizes differ (baseline {baseline.get('tenants')} "
            f"vs current {current.get('tenants')} tenants); rate gate "
            "skipped, correctness gates applied"
        )
        return 0
    for record, label in ((baseline, "baseline"), (current, "current")):
        if not record.get("calibration_seconds"):
            print(
                f"warning: {label} fleet record lacks calibration_seconds; "
                "skipping the rate gate"
            )
            return 0
    # scale > 1 means this machine is slower than the baseline's.
    scale = current["calibration_seconds"] / baseline["calibration_seconds"]

    failed = 0
    floor_rate = baseline.get("steady_state", {}).get("events_per_sec")
    rate = steady.get("events_per_sec")
    if floor_rate and rate:
        floor = floor_rate / scale * (1.0 - TOLERANCE)
        verdict = "OK" if rate >= floor else "REGRESSION"
        print(
            f"fleet throughput: {rate:.1f} events/s vs calibrated "
            f"baseline {floor_rate:.1f} / {scale:.2f} "
            f"(floor >= {floor:.1f}, tolerance {TOLERANCE:.0%}): {verdict}"
        )
        failed += rate < floor
    reference = baseline.get("steady_state", {}).get("p99_touch_ms")
    actual = steady.get("p99_touch_ms")
    if reference and actual:
        ceiling = reference * scale * (1.0 + TOLERANCE)
        verdict = "OK" if actual <= ceiling else "REGRESSION"
        print(
            f"fleet p99 touch: {actual:.3f} ms vs calibrated baseline "
            f"{reference:.3f} x {scale:.2f} "
            f"(ceiling <= {ceiling:.3f}, tolerance {TOLERANCE:.0%}): {verdict}"
        )
        failed += actual > ceiling
    if failed:
        print(
            "error: fleet benchmark regressed beyond tolerance; if the "
            "slowdown is intentional, refresh the committed BENCH_fleet.json"
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_sweep.json",
        help="committed baseline record (default: repo-root BENCH_sweep.json)",
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "output" / "BENCH_sweep.json",
        help="freshly produced record to judge",
    )
    parser.add_argument(
        "--serve-baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_serve.json",
        help="committed serving baseline (default: repo-root BENCH_serve.json)",
    )
    parser.add_argument(
        "--serve-current",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "output" / "BENCH_serve.json",
        help="freshly produced serving record to judge",
    )
    parser.add_argument(
        "--require-serve",
        action="store_true",
        help="fail when the fresh serving record is missing (the "
        "serve-smoke CI job)",
    )
    parser.add_argument(
        "--serve-only",
        action="store_true",
        help="run only the serving gate (skip the sweep and fleet gates)",
    )
    parser.add_argument(
        "--fleet-baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_fleet.json",
        help="committed fleet baseline (default: repo-root BENCH_fleet.json)",
    )
    parser.add_argument(
        "--fleet-current",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "output" / "BENCH_fleet.json",
        help="freshly produced fleet record to judge",
    )
    parser.add_argument(
        "--require-fleet",
        action="store_true",
        help="fail when the fresh fleet record is missing (the "
        "fleet-smoke CI job)",
    )
    parser.add_argument(
        "--fleet-only",
        action="store_true",
        help="run only the fleet gate (skip the sweep and serve gates)",
    )
    args = parser.parse_args(argv)
    sweep_rc: int | None = None
    if not (args.serve_only or args.fleet_only):
        sweep_rc = check(args.baseline, args.current)
    serve_rc: int | None = None
    if not args.fleet_only:
        serve_rc = check_serve(
            args.serve_baseline, args.serve_current, require=args.require_serve
        )
    fleet_rc: int | None = None
    if not args.serve_only:
        fleet_rc = check_fleet(
            args.fleet_baseline, args.fleet_current, require=args.require_fleet
        )

    # One line per gate so the canonical CI job (bench-gates) shows at
    # a glance which check tripped; the diff detail is printed above by
    # the gate itself.
    gates = (
        ("sweep+membership", sweep_rc),
        ("serve", serve_rc),
        ("fleet", fleet_rc),
    )
    print("gate summary:")
    for name, rc in gates:
        state = "skipped" if rc is None else ("PASS" if rc == 0 else "FAIL")
        print(f"  {name}: {state}")
    tripped = [name for name, rc in gates if rc]
    if tripped:
        print(f"error: tripped gate(s): {', '.join(tripped)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
