"""E3 — Figure 4: Markov-detector performance map.

Paper shape: the Markov detector covers the *entire* space under
consideration — every (anomaly size, detector window) cell registers a
maximal response, including cells where the window is smaller than the
anomaly, because the conditional probabilities respond maximally to the
rare transitions the minimal foreign sequence is composed of.
"""

from __future__ import annotations

from _artifacts import write_artifact

from repro.evaluation.performance_map import build_performance_map
from repro.evaluation.render import render_map_summary, render_performance_map


def test_fig4_markov_map(benchmark, suite):
    performance_map = benchmark.pedantic(
        build_performance_map,
        args=("markov", suite),
        rounds=1,
        iterations=1,
    )

    # Paper shape: full coverage, no spurious alarms outside spans.
    assert performance_map.detection_fraction() == 1.0
    assert performance_map.spurious_alarm_total() == 0

    chart = render_performance_map(
        performance_map,
        title="Figure 4 — Detection coverage, Markov-based detector (reproduced)",
    )
    write_artifact(
        "fig4_markov_map", chart + "\n\n" + render_map_summary(performance_map)
    )
