"""E19 — ablation: anomaly composition decides Markov's advantage.

Section 7 attributes the Markov detector's below-the-diagonal coverage
(Figure 4) to "the use of rare sequences in composing the foreign
sequence".  The bench tests the attribution by swapping the anomaly's
composition:

* **rare-composed MFS** (the paper's corpus): the Markov detector is
  capable at every window length, including ``DW < AS``;
* **common-composed MFS** (the forbidden-run corpus, whose MFS is a
  too-long zero-run with common parts): every sub-anomaly span is a
  *common* training sequence with mid-range conditional probability,
  so the Markov detector's maximal-response coverage collapses to
  Stide's ``DW >= AS`` diagonal.

Same metric, same floor, same threshold — only the anomaly's
composition changed.  The attribution holds.
"""

from __future__ import annotations

import numpy as np

from _artifacts import write_artifact

from repro.analysis.report import format_table
from repro.datagen.forbidden_run import ForbiddenRunSource
from repro.detectors import MarkovDetector, StideDetector

RUN_LIMIT = 5  # the forbidden corpus MFS has size 6
ANOMALY_SIZE = 6
# Responses are measured over the anomaly's own windows, which covers
# exactly the contested region DW <= AS (the DW > AS region is the
# uncontroversial foreign-superstring case charted by E3/E4).
WINDOW_LENGTHS = (2, 3, 4, 5, 6)


def _max_window_response(detector, sequence: tuple[int, ...]) -> float:
    window_length = detector.window_length
    if len(sequence) < window_length:
        return 0.0
    return max(
        detector.score_window(sequence[i : i + window_length])
        for i in range(len(sequence) - window_length + 1)
    )


def test_ablation_anomaly_composition(benchmark, training, suite):
    rare_mfs = suite.anomaly(ANOMALY_SIZE).sequence
    forbidden = ForbiddenRunSource(RUN_LIMIT)
    common_stream = forbidden.sample(
        len(training.stream), np.random.default_rng(23)
    )
    forbidden.verify(common_stream)
    common_mfs = forbidden.forbidden_sequence()
    assert len(common_mfs) == ANOMALY_SIZE

    def sweep():
        rows = []
        for window_length in WINDOW_LENGTHS:
            rare_markov = MarkovDetector(window_length, 8).fit(training.stream)
            rare_stide = StideDetector(window_length, 8).fit(training.stream)
            common_markov = MarkovDetector(window_length, 2).fit(common_stream)
            common_stide = StideDetector(window_length, 2).fit(common_stream)
            rows.append(
                (
                    window_length,
                    _max_window_response(rare_stide, rare_mfs),
                    _max_window_response(rare_markov, rare_mfs),
                    _max_window_response(common_stide, common_mfs),
                    _max_window_response(common_markov, common_mfs),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for window_length, rare_stide, rare_markov, common_stide, common_markov in rows:
        # Stide: DW >= AS diagonal on both corpora.
        assert (rare_stide == 1.0) == (window_length >= ANOMALY_SIZE)
        assert (common_stide == 1.0) == (window_length >= ANOMALY_SIZE)
        # Markov: full coverage with rare composition...
        assert rare_markov == 1.0
        # ...but collapses to the Stide diagonal with common composition.
        assert (common_markov == 1.0) == (window_length >= ANOMALY_SIZE)

    table = format_table(
        headers=(
            "DW",
            "stide/rare-MFS",
            "markov/rare-MFS",
            "stide/common-MFS",
            "markov/common-MFS",
        ),
        rows=[
            (
                window_length,
                f"{rare_stide:.2f}",
                f"{rare_markov:.2f}",
                f"{common_stide:.2f}",
                f"{common_markov:.2f}",
            )
            for window_length, rare_stide, rare_markov, common_stide,
            common_markov in rows
        ],
        title=(
            "E19 — max in-anomaly response vs. anomaly composition "
            f"(AS={ANOMALY_SIZE}; rare-composed vs. common-composed MFS)"
        ),
    )
    write_artifact("ablation_composition", table)
