"""Shared benchmark fixtures.

Benchmarks run on a corpus with the paper's exact structure at a
configurable scale (``REPRO_BENCH_STREAM_LEN``, default 200,000
elements; set it to 1,000,000 to reproduce at full paper scale).
Passing ``--quick`` shrinks the corpus ~10x for CI smoke runs — same
structure, same assertions, a fraction of the wall clock.

Each benchmark writes its paper-style artifact (the rows/series the
corresponding figure reports) to ``benchmarks/output/`` so that
EXPERIMENTS.md can be assembled from actual runs.
"""

from __future__ import annotations

import os

import pytest

from repro.datagen.suite import EvaluationSuite, build_suite
from repro.datagen.training import TrainingData, generate_training_data
from repro.params import PaperParams, scaled_params
from repro.syscalls import SyscallDataset, build_dataset, sendmail_model

BENCH_STREAM_LEN = int(os.environ.get("REPRO_BENCH_STREAM_LEN", "200000"))
QUICK_STREAM_LEN = 20_000


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="benchmark smoke scale: ~10x smaller corpus, same "
        "structure and assertions (the CI bench-smoke job)",
    )


@pytest.fixture(scope="session")
def quick(request: pytest.FixtureRequest) -> bool:
    """Whether this run is a ``--quick`` smoke pass."""
    return bool(request.config.getoption("--quick"))


@pytest.fixture(scope="session")
def params(quick: bool) -> PaperParams:
    """Benchmark-scale parameters with the paper's structure."""
    return scaled_params(QUICK_STREAM_LEN if quick else BENCH_STREAM_LEN)


@pytest.fixture(scope="session")
def training(params: PaperParams) -> TrainingData:
    """The benchmark training corpus."""
    return generate_training_data(params)


@pytest.fixture(scope="session")
def suite(training: TrainingData) -> EvaluationSuite:
    """The full 112-case evaluation suite."""
    return build_suite(training=training)


@pytest.fixture(scope="session")
def syscall_dataset(quick: bool) -> SyscallDataset:
    """UNM-style syscall dataset for the deployment experiments."""
    scale = 0.2 if quick else 1.0
    return build_dataset(
        sendmail_model(),
        training_sessions=max(50, int(300 * scale)),
        test_normal_sessions=max(10, int(40 * scale)),
        test_intrusion_sessions=max(8, int(30 * scale)),
    )
