"""Shared benchmark fixtures.

Benchmarks run on a corpus with the paper's exact structure at a
configurable scale (``REPRO_BENCH_STREAM_LEN``, default 200,000
elements; set it to 1,000,000 to reproduce at full paper scale).

Each benchmark writes its paper-style artifact (the rows/series the
corresponding figure reports) to ``benchmarks/output/`` so that
EXPERIMENTS.md can be assembled from actual runs.
"""

from __future__ import annotations

import os

import pytest

from repro.datagen.suite import EvaluationSuite, build_suite
from repro.datagen.training import TrainingData, generate_training_data
from repro.params import PaperParams, scaled_params
from repro.syscalls import SyscallDataset, build_dataset, sendmail_model

BENCH_STREAM_LEN = int(os.environ.get("REPRO_BENCH_STREAM_LEN", "200000"))


@pytest.fixture(scope="session")
def params() -> PaperParams:
    """Benchmark-scale parameters with the paper's structure."""
    return scaled_params(BENCH_STREAM_LEN)


@pytest.fixture(scope="session")
def training(params: PaperParams) -> TrainingData:
    """The benchmark training corpus."""
    return generate_training_data(params)


@pytest.fixture(scope="session")
def suite(training: TrainingData) -> EvaluationSuite:
    """The full 112-case evaluation suite."""
    return build_suite(training=training)


@pytest.fixture(scope="session")
def syscall_dataset() -> SyscallDataset:
    """UNM-style syscall dataset for the deployment experiments."""
    return build_dataset(
        sendmail_model(),
        training_sessions=300,
        test_normal_sessions=40,
        test_intrusion_sessions=30,
    )
