"""E4 — Figure 5: Stide performance map.

Paper shape: Stide detects the minimal foreign sequence exactly when
its detector window is at least as long as the anomaly
(``DW >= AS``); below that diagonal it is completely blind, because by
minimality every sub-anomaly-length window exists in the training data.
"""

from __future__ import annotations

from _artifacts import write_artifact

from repro.evaluation.performance_map import build_performance_map
from repro.evaluation.render import render_map_summary, render_performance_map
from repro.evaluation.scoring import ResponseClass


def test_fig5_stide_map(benchmark, suite):
    performance_map = benchmark.pedantic(
        build_performance_map,
        args=("stide", suite),
        rounds=1,
        iterations=1,
    )

    # Paper shape: capable iff DW >= AS; blind strictly below.
    for anomaly_size in suite.anomaly_sizes:
        for window_length in suite.window_lengths:
            expected = (
                ResponseClass.CAPABLE
                if window_length >= anomaly_size
                else ResponseClass.BLIND
            )
            actual = performance_map.response_class(anomaly_size, window_length)
            assert actual is expected, f"AS={anomaly_size} DW={window_length}"
    assert len(performance_map.capable_cells()) == 84

    chart = render_performance_map(
        performance_map,
        title="Figure 5 — Detection coverage, Stide (reproduced)",
    )
    write_artifact(
        "fig5_stide_map", chart + "\n\n" + render_map_summary(performance_map)
    )
