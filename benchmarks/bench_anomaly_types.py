"""E24 — diversity across anomaly *types*, not just grid regions.

The paper constrains diversity to the similarity metric and the
anomaly to one type (the MFS), noting that a detector's anomaly
definition "may not necessarily coincide with the ways in which
anomalies naturally occur in data" (Section 4.1).  This bench widens
the anomaly axis with two further types and charts which metric
families can see which:

* **order anomaly** — common symbols in a novel ordering (the MFS
  family);
* **frequency anomaly** — a symbol-density burst whose short-window
  orderings all exist in training;
* **novel-symbol anomaly** — a symbol absent from training.

Shape: ordering detectors (Stide at a window covering the novel
ordering) see the order anomaly that the histogram detector cannot;
the histogram detector sees the density burst that short-window Stide
cannot; everyone sees the novel symbol.  Coverage diversity lives on
the anomaly-type axis as well as the (AS, DW) grid.
"""

from __future__ import annotations

import numpy as np

from _artifacts import write_artifact

from repro.analysis.report import format_table
from repro.detectors import HistogramDetector, MarkovDetector, StideDetector

# Corpus over alphabet 8: 0/1 alternation with one short-run motif
# (so zero/one runs of length 2 and their orderings exist); symbols
# 2..7 never occur.
TRAIN = [0, 1] * 200 + [0, 0, 1, 1] + [0, 1] * 200

ANOMALIES = {
    # (1,1,0,0) never occurs as a 4-gram, but all of its pairs do.
    "order (novel 4-gram)": [0, 1, 1, 0, 0, 1, 0, 1],
    # A six-zero burst: every pair exists ((0,0) occurs in training),
    # but the window-level zero density is unprecedented.
    "frequency (zero burst)": [0, 1, 0, 0, 0, 0, 0, 0, 1, 0],
    "novel symbol (7)": [0, 1, 7, 0, 1, 0],
}


def _max_response(detector, stream) -> float:
    data = np.asarray(stream)
    if len(data) < detector.window_length:
        return 0.0
    return float(detector.score_stream(data).max())


def test_anomaly_type_coverage(benchmark):
    detectors = {
        "stide@2": StideDetector(2, 8).fit(TRAIN),
        "stide@4": StideDetector(4, 8).fit(TRAIN),
        "markov@2": MarkovDetector(2, 8).fit(TRAIN),
        "histogram@6": HistogramDetector(6, 8).fit(TRAIN),
    }

    def sweep():
        return {
            anomaly_name: {
                name: _max_response(detector, stream)
                for name, detector in detectors.items()
            }
            for anomaly_name, stream in ANOMALIES.items()
        }

    results = benchmark(sweep)

    order = results["order (novel 4-gram)"]
    frequency = results["frequency (zero burst)"]
    novel = results["novel symbol (7)"]

    # Order anomaly: an ordering detector with a covering window sees
    # it; the histogram detector cannot (same symbol counts).
    assert order["stide@2"] == 0.0  # every pair exists
    assert order["stide@4"] == 1.0
    assert order["histogram@6"] == 0.0
    # Frequency anomaly: short-window ordering detectors are blind;
    # the density profile fires.
    assert frequency["stide@2"] == 0.0
    assert frequency["histogram@6"] > 0.25
    # Novel symbol: visible to every family.
    assert all(response > 0.0 for response in novel.values())
    # The Markov detector's rare-floor makes it broad here too.
    assert order["markov@2"] == 1.0 and frequency["markov@2"] == 1.0

    rows = [
        (anomaly_name, *(f"{responses[name]:.2f}" for name in detectors))
        for anomaly_name, responses in results.items()
    ]
    table = format_table(
        headers=("anomaly type", *detectors),
        rows=rows,
        title="E24 — max response by anomaly type and detector family",
    )
    write_artifact("anomaly_types", table)
