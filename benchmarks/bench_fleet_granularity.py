"""E22 — profile granularity: per-program "self" vs. a pooled profile.

Forrest et al.'s per-process profiles (the Stide lineage) define normal
per program.  The bench measures what pooling erases: sessions of one
program scored against another program's profile (cross-program misuse,
the signature of a compromised daemon) versus the pooled profile that
has seen everyone's behavior.

Shape: per-program profiles flag cross-program sessions at a high
per-window rate and keep exploits at 100%; the pooled profile keeps the
exploits but is near-blind to cross-program misuse.
"""

from __future__ import annotations

import numpy as np

from _artifacts import write_artifact

from repro.analysis.report import format_table
from repro.syscalls import build_dataset, ftpd_model, lpr_model, sendmail_model
from repro.syscalls.fleet import FleetMonitor
from repro.syscalls.generator import TraceGenerator

WINDOW = 4
SESSIONS = 20


def test_fleet_granularity(benchmark, syscall_dataset):
    datasets = [
        build_dataset(
            model,
            training_sessions=200,
            test_normal_sessions=5,
            test_intrusion_sessions=5,
        )
        for model in (sendmail_model(), lpr_model(), ftpd_model())
    ]
    fleet = FleetMonitor(datasets, window_length=WINDOW)
    rng = np.random.default_rng(3)
    lpr_generator = TraceGenerator(lpr_model())
    cross_sessions = [
        lpr_generator.normal_session(rng, 25) for _ in range(SESSIONS)
    ]
    intrusion_sessions = [
        TraceGenerator(sendmail_model()).intrusion_session(rng, 25)
        for _ in range(SESSIONS)
    ]

    def deploy():
        owner_cross = np.mean(
            [
                (fleet.score("sendmail", s.stream) == 1.0).mean()
                for s in cross_sessions
            ]
        )
        pooled_cross = np.mean(
            [
                (fleet.score_pooled(s.stream) == 1.0).mean()
                for s in cross_sessions
            ]
        )
        owner_hits = np.mean(
            [
                float(fleet.score("sendmail", s.stream).max() == 1.0)
                for s in intrusion_sessions
            ]
        )
        pooled_hits = np.mean(
            [
                float(fleet.score_pooled(s.stream).max() == 1.0)
                for s in intrusion_sessions
            ]
        )
        return owner_cross, pooled_cross, owner_hits, pooled_hits

    owner_cross, pooled_cross, owner_hits, pooled_hits = benchmark.pedantic(
        deploy, rounds=1, iterations=1
    )

    # Shape: both catch the exploits; only the owner profile sees
    # cross-program misuse at scale.
    assert owner_hits == 1.0 and pooled_hits == 1.0
    assert owner_cross > 0.5
    assert pooled_cross < owner_cross / 2

    table = format_table(
        headers=("profile", "cross-program alarm rate", "exploit hit rate"),
        rows=[
            ("per-program (sendmail's self)", f"{owner_cross:.3f}", f"{owner_hits:.2f}"),
            ("pooled (everyone's self)", f"{pooled_cross:.3f}", f"{pooled_hits:.2f}"),
        ],
        title=(
            "E22 — lpr-style sessions scored as sendmail, and sendmail "
            f"exploits (DW={WINDOW}, {SESSIONS} sessions each)"
        ),
    )
    write_artifact("fleet_granularity", table)
