"""Artifact persistence shared by the benchmark modules."""

from __future__ import annotations

from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"


def write_artifact(name: str, content: str) -> Path:
    """Persist a benchmark's paper-style output for EXPERIMENTS.md."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(content + "\n")
    return path
