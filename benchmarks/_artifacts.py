"""Artifact persistence shared by the benchmark modules."""

from __future__ import annotations

import json
from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"


def write_artifact(name: str, content: str) -> Path:
    """Persist a benchmark's paper-style output for EXPERIMENTS.md."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(content + "\n")
    return path


def write_json_artifact(name: str, payload: dict) -> Path:
    """Persist a machine-readable benchmark record (BENCH json)."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
