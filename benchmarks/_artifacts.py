"""Artifact persistence shared by the benchmark modules."""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

OUTPUT_DIR = Path(__file__).parent / "output"

#: Memo: the calibration workload runs once per benchmark session.
_CALIBRATION: float | None = None


def machine_calibration(repetitions: int = 3) -> float:
    """Seconds this machine takes for a fixed reference workload.

    A deterministic sort-dominated kernel (the same primitive the
    sweep's fit phase leans on), timed best-of-``repetitions``.
    Recorded alongside wall-clock numbers in BENCH artifacts so the
    CI regression check can rescale a committed baseline to the speed
    of the machine actually running: a 25% tolerance on the *ratio*
    of sweep time to calibration time survives hardware changes that
    a raw-seconds tolerance would not.
    """
    global _CALIBRATION
    if _CALIBRATION is None:
        rng = np.random.default_rng(20260806)
        data = rng.integers(0, 64, size=1_000_000).astype(np.int64)
        best = float("inf")
        for _ in range(repetitions):
            start = time.perf_counter()
            order = np.argsort(data, kind="stable")
            np.cumsum(data[order]).sum()
            best = min(best, time.perf_counter() - start)
        _CALIBRATION = best
    return _CALIBRATION


def write_artifact(name: str, content: str) -> Path:
    """Persist a benchmark's paper-style output for EXPERIMENTS.md."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(content + "\n")
    return path


def write_json_artifact(name: str, payload: dict) -> Path:
    """Persist a machine-readable benchmark record (BENCH json)."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
