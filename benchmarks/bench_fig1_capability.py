"""E7 — Figure 1: the attack-detectability decision chain.

Exercises every terminal of the paper's Figure-1 flowchart against the
Stide performance map: no manifestation, un-analyzed data, non-anomalous
manifestation, mistuned window, and full detection.
"""

from __future__ import annotations

from _artifacts import write_artifact

from repro.capability import AttackScenario, CapabilityVerdict, assess_attack
from repro.evaluation.performance_map import build_performance_map


def test_fig1_capability_chain(benchmark, suite, training):
    performance_map = build_performance_map("stide", suite)
    analyzer = training.analyzer
    mfs6 = suite.anomaly(6).sequence
    common = tuple(int(c) for c in training.stream[:4])

    scenarios = [
        (
            AttackScenario("stealth-attack", None, True, 8),
            CapabilityVerdict.NO_MANIFESTATION,
        ),
        (
            AttackScenario("wrong-sensor", mfs6, False, 8),
            CapabilityVerdict.NOT_ANALYZED,
        ),
        (
            AttackScenario("mimicry-attack", common, True, 8),
            CapabilityVerdict.NOT_ANOMALOUS,
        ),
        (
            AttackScenario("undersized-window", mfs6, True, 3),
            CapabilityVerdict.MISTUNED,
        ),
        (
            AttackScenario("well-tuned", mfs6, True, 10),
            CapabilityVerdict.DETECTED,
        ),
    ]

    def assess_all():
        return [
            assess_attack(scenario, analyzer, performance_map)
            for scenario, _expected in scenarios
        ]

    reports = benchmark(assess_all)

    for report, (_scenario, expected) in zip(reports, scenarios):
        assert report.verdict is expected

    body = "\n\n".join(report.explain() for report in reports)
    write_artifact(
        "fig1_capability",
        "Figure 1 — attack detectability decision chain (all terminals)\n\n"
        + body,
    )
