"""Tests for repro.cli — the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

SMALL = ["--stream-len", "60000"]


class TestModuleEntryPoint:
    def test_python_dash_m_repro_help(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "maps" in result.stdout and "census" in result.stdout


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_maps_defaults(self):
        args = build_parser().parse_args(["maps"])
        assert args.command == "maps"
        assert args.detectors is None

    def test_census_program_option(self):
        args = build_parser().parse_args(["census", "--program", "lpr"])
        assert args.program == "lpr"

    @pytest.mark.parametrize("command", ("maps", "atlas", "select"))
    def test_jobs_flag(self, command):
        args = build_parser().parse_args([command, "--jobs", "4"])
        assert args.jobs == 4

    def test_jobs_defaults_to_serial(self):
        args = build_parser().parse_args(["maps"])
        assert args.jobs == 1


class TestMapsCommand:
    def test_single_detector_map(self, capsys):
        exit_code = main(["maps", *SMALL, "--detectors", "stide"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Performance map of stide" in out
        assert "84/112" in out

    def test_parallel_jobs_produce_same_map(self, capsys):
        exit_code = main(
            ["maps", *SMALL, "--detectors", "stide", "--jobs", "4"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Performance map of stide" in out
        assert "84/112" in out

    def test_two_detectors_include_agreement(self, capsys):
        exit_code = main(
            ["maps", *SMALL, "--detectors", "stide", "lane-brodley"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "lane-brodley subset of stide" in out

    def test_unknown_detector_fails_cleanly(self, capsys):
        exit_code = main(["maps", *SMALL, "--detectors", "nonsense"])
        assert exit_code == 2
        assert "unknown detectors" in capsys.readouterr().err


class TestAnomalyCommand:
    def test_synthesizes_and_prints(self, capsys):
        exit_code = main(["anomaly", *SMALL, "--size", "5"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "MFS of size 5" in out
        assert "composed of rare parts: True" in out

    def test_impossible_size_fails_cleanly(self, capsys):
        exit_code = main(["anomaly", *SMALL, "--size", "1"])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err


class TestCensusCommand:
    def test_paper_corpus_census(self, capsys):
        exit_code = main(["census", *SMALL, "--max-length", "4"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Minimal-foreign-sequence census" in out
        assert "deploy Stide with DW >=" in out

    def test_unknown_program_fails_cleanly(self, capsys):
        exit_code = main(["census", "--program", "nosuch"])
        assert exit_code == 2
        assert "unknown program" in capsys.readouterr().err


class TestAtlasCommand:
    def test_atlas_table(self, capsys):
        exit_code = main(
            ["atlas", *SMALL, "--detectors", "stide", "hamming"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Detector atlas" in out
        assert "hamming subset of stide" in out

    def test_unknown_detector_fails_cleanly(self, capsys):
        exit_code = main(["atlas", *SMALL, "--detectors", "bogus"])
        assert exit_code == 2
        assert "unknown detectors" in capsys.readouterr().err


class TestProfileCommand:
    def test_sparklines_rendered(self, capsys):
        exit_code = main(
            ["profile", *SMALL, "--size", "5", "--window", "3",
             "--detectors", "stide", "markov"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "marks the span" in out
        assert "stide" in out and "markov" in out

    def test_unknown_size_fails_cleanly(self, capsys):
        exit_code = main(["profile", *SMALL, "--size", "77"])
        assert exit_code == 2
        assert "outside the suite" in capsys.readouterr().err

    def test_unknown_detector_fails_cleanly(self, capsys):
        exit_code = main(["profile", *SMALL, "--detectors", "bogus"])
        assert exit_code == 2
        assert "unknown detectors" in capsys.readouterr().err


class TestSelectCommand:
    def test_unknown_size_yields_gated_recipe(self, capsys):
        exit_code = main(["select", *SMALL, "--max-window", "8"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "deploy markov gated by stide" in out

    def test_known_size_prefers_stide(self, capsys):
        exit_code = main(["select", *SMALL, "--size", "4", "--max-window", "10"])
        assert exit_code == 0
        assert "deploy stide" in capsys.readouterr().out

    def test_undetectable_profile_fails_cleanly(self, capsys):
        exit_code = main(
            ["select", *SMALL, "--size", "9", "--max-window", "6",
             "--detectors", "stide", "lane-brodley"]
        )
        assert exit_code == 2
        assert "not detectable" in capsys.readouterr().err


class TestSuppressionCommand:
    def test_deployment_table(self, capsys):
        exit_code = main(
            ["suppression", "--program", "lpr", "--sessions", "120"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "markov gated by stide" in out
        assert "hit rate" in out

    def test_unknown_program_fails_cleanly(self, capsys):
        exit_code = main(["suppression", "--program", "nosuch"])
        assert exit_code == 2
        assert "unknown program" in capsys.readouterr().err
