"""Tests for repro.cli — the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

SMALL = ["--stream-len", "60000"]


class TestModuleEntryPoint:
    def test_python_dash_m_repro_help(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "maps" in result.stdout and "census" in result.stdout


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_maps_defaults(self):
        args = build_parser().parse_args(["maps"])
        assert args.command == "maps"
        assert args.detectors is None

    def test_census_program_option(self):
        args = build_parser().parse_args(["census", "--program", "lpr"])
        assert args.program == "lpr"

    @pytest.mark.parametrize("command", ("maps", "atlas", "select"))
    def test_jobs_flag(self, command):
        args = build_parser().parse_args([command, "--jobs", "4"])
        assert args.jobs == 4

    def test_jobs_defaults_to_serial(self):
        args = build_parser().parse_args(["maps"])
        assert args.jobs == 1


class TestMapsCommand:
    def test_single_detector_map(self, capsys):
        exit_code = main(["maps", *SMALL, "--detectors", "stide"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Performance map of stide" in out
        assert "84/112" in out

    def test_parallel_jobs_produce_same_map(self, capsys):
        exit_code = main(
            ["maps", *SMALL, "--detectors", "stide", "--jobs", "4"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Performance map of stide" in out
        assert "84/112" in out

    def test_two_detectors_include_agreement(self, capsys):
        exit_code = main(
            ["maps", *SMALL, "--detectors", "stide", "lane-brodley"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "lane-brodley subset of stide" in out

    def test_unknown_detector_fails_cleanly(self, capsys):
        exit_code = main(["maps", *SMALL, "--detectors", "nonsense"])
        assert exit_code == 2
        assert "unknown detectors" in capsys.readouterr().err


class TestAnomalyCommand:
    def test_synthesizes_and_prints(self, capsys):
        exit_code = main(["anomaly", *SMALL, "--size", "5"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "MFS of size 5" in out
        assert "composed of rare parts: True" in out

    def test_impossible_size_fails_cleanly(self, capsys):
        exit_code = main(["anomaly", *SMALL, "--size", "1"])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err


class TestCensusCommand:
    def test_paper_corpus_census(self, capsys):
        exit_code = main(["census", *SMALL, "--max-length", "4"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Minimal-foreign-sequence census" in out
        assert "deploy Stide with DW >=" in out

    def test_unknown_program_fails_cleanly(self, capsys):
        exit_code = main(["census", "--program", "nosuch"])
        assert exit_code == 2
        assert "unknown program" in capsys.readouterr().err


class TestAtlasCommand:
    def test_atlas_table(self, capsys):
        exit_code = main(
            ["atlas", *SMALL, "--detectors", "stide", "hamming"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Detector atlas" in out
        assert "hamming subset of stide" in out

    def test_unknown_detector_fails_cleanly(self, capsys):
        exit_code = main(["atlas", *SMALL, "--detectors", "bogus"])
        assert exit_code == 2
        assert "unknown detectors" in capsys.readouterr().err


class TestProfileCommand:
    def test_sparklines_rendered(self, capsys):
        exit_code = main(
            ["profile", *SMALL, "--size", "5", "--window", "3",
             "--detectors", "stide", "markov"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "marks the span" in out
        assert "stide" in out and "markov" in out

    def test_unknown_size_fails_cleanly(self, capsys):
        exit_code = main(["profile", *SMALL, "--size", "77"])
        assert exit_code == 2
        assert "outside the suite" in capsys.readouterr().err

    def test_unknown_detector_fails_cleanly(self, capsys):
        exit_code = main(["profile", *SMALL, "--detectors", "bogus"])
        assert exit_code == 2
        assert "unknown detectors" in capsys.readouterr().err


class TestSelectCommand:
    def test_unknown_size_yields_gated_recipe(self, capsys):
        exit_code = main(["select", *SMALL, "--max-window", "8"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "deploy markov gated by stide" in out

    def test_known_size_prefers_stide(self, capsys):
        exit_code = main(["select", *SMALL, "--size", "4", "--max-window", "10"])
        assert exit_code == 0
        assert "deploy stide" in capsys.readouterr().out

    def test_undetectable_profile_fails_cleanly(self, capsys):
        exit_code = main(
            ["select", *SMALL, "--size", "9", "--max-window", "6",
             "--detectors", "stide", "lane-brodley"]
        )
        assert exit_code == 2
        assert "not detectable" in capsys.readouterr().err


class TestSuppressionCommand:
    def test_deployment_table(self, capsys):
        exit_code = main(
            ["suppression", "--program", "lpr", "--sessions", "120"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "markov gated by stide" in out
        assert "hit rate" in out

    def test_unknown_program_fails_cleanly(self, capsys):
        exit_code = main(["suppression", "--program", "nosuch"])
        assert exit_code == 2
        assert "unknown program" in capsys.readouterr().err


class TestPlanCommand:
    def _quick_plan_file(self, tmp_path):
        import json

        from repro.plans import ExperimentPlan, RenderStage, SweepStage

        plan = ExperimentPlan(
            name="cli-quick",
            stages=(
                SweepStage(
                    name="maps",
                    stream_len=12000,
                    detectors=("stide",),
                    anomaly_sizes=(2, 3),
                    window_sizes=(2, 3, 4),
                ),
                RenderStage(name="charts", needs=("maps",)),
            ),
        )
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        return path

    def test_parser_requires_plan_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan"])

    def test_validate_prints_fingerprints(self, tmp_path, capsys):
        path = self._quick_plan_file(tmp_path)
        assert main(["plan", "validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "plan 'cli-quick': 2 stage(s), order valid" in out
        assert "stage charts: render needs=maps" in out

    def test_validate_rejects_cycle_with_named_stage(self, tmp_path, capsys):
        path = tmp_path / "cycle.json"
        path.write_text(
            '{"name": "loop", "stages": ['
            '{"name": "a", "kind": "sweep", "detectors": ["stide"], "needs": ["b"]},'
            '{"name": "b", "kind": "sweep", "detectors": ["stide"], "needs": ["a"]}]}'
        )
        assert main(["plan", "validate", str(path)]) == 2
        assert "dependency cycle" in capsys.readouterr().err

    def test_run_then_resume_computes_nothing(self, tmp_path, capsys):
        path = self._quick_plan_file(tmp_path)
        run_dir = tmp_path / "run"
        assert main(["plan", "run", str(path), "--run-dir", str(run_dir)]) == 0
        first = capsys.readouterr().out
        assert "2 executed / 0 cached / 2 total" in first
        assert main(
            ["plan", "resume", str(path), "--run-dir", str(run_dir)]
        ) == 0
        second = capsys.readouterr().out
        assert "0 executed / 2 cached / 2 total" in second

    def test_status_reports_done_and_duplicates(self, tmp_path, capsys):
        path = self._quick_plan_file(tmp_path)
        run_dir = tmp_path / "run"
        assert main(["plan", "run", str(path), "--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        assert main(["plan", "status", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "done: 2/2" in out
        assert "duplicates: 0" in out

    def test_run_with_trace_validates(self, tmp_path, capsys):
        path = self._quick_plan_file(tmp_path)
        trace = tmp_path / "trace.jsonl"
        assert main(
            [
                "plan",
                "run",
                str(path),
                "--run-dir",
                str(tmp_path / "run"),
                "--trace",
                str(trace),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "validate", str(trace)]) == 0
        assert "counters consistent" in capsys.readouterr().out
