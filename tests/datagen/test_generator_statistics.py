"""Statistical tests of the corpus generators (scipy-based).

The structural tests elsewhere check hard invariants; these check the
*distributions* — jump usage balance across sources, inter-jump gap
geometry, and natural-source stationarity — so a silently skewed
generator cannot masquerade as the paper's corpus.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.datagen.markov_source import CycleJumpSource
from repro.datagen.natural import NaturalSource


@pytest.fixture(scope="module")
def long_stream() -> tuple[CycleJumpSource, np.ndarray]:
    source = CycleJumpSource(alphabet_size=8, jump_probability=0.02,
                             refractory=16)
    stream = source.sample(400_000, np.random.default_rng(31))
    return source, stream


class TestJumpStatistics:
    def test_jump_sources_used_uniformly(self, long_stream):
        """Each admissible source state takes a similar share of jumps
        (chi-square goodness of fit against uniform)."""
        source, stream = long_stream
        successors = (stream[:-1] + 1) % 8
        jump_positions = np.nonzero(stream[1:] != successors)[0]
        jump_sources = stream[jump_positions]
        counts = np.asarray(
            [int((jump_sources == s).sum()) for s in source.jump_spec.sources]
        )
        assert counts.min() > 0
        result = stats.chisquare(counts)
        assert result.pvalue > 0.001  # not detectably skewed

    def test_gap_distribution_is_shifted_geometric(self, long_stream):
        """Beyond the refractory period, waiting times are memoryless:
        the gap beyond the minimum follows a geometric distribution."""
        source, stream = long_stream
        successors = (stream[:-1] + 1) % 8
        jump_positions = np.nonzero(stream[1:] != successors)[0]
        gaps = np.diff(jump_positions)
        refractory = source.jump_spec.refractory
        excess = gaps - gaps.min()
        # Memorylessness: P(excess > 2m) ~= P(excess > m)^2.
        median = np.median(excess)
        p_half = (excess > median).mean()
        p_double = (excess > 2 * median).mean()
        assert p_double == pytest.approx(p_half**2, abs=0.05)
        assert gaps.min() >= refractory

    def test_jump_rate_matches_configuration(self, long_stream):
        """The effective jump rate reflects probability and refractory:
        expected inter-jump gap ~ refractory + 1/(p * admissible share)."""
        source, stream = long_stream
        successors = (stream[:-1] + 1) % 8
        jump_count = int((stream[1:] != successors).sum())
        observed_gap = len(stream) / jump_count
        admissible_share = len(source.jump_spec.sources) / 8
        expected_gap = (
            source.jump_spec.refractory
            + 1.0 / (source.jump_spec.probability * admissible_share)
        )
        assert observed_gap == pytest.approx(expected_gap, rel=0.1)


class TestNaturalSourceStatistics:
    def test_empirical_matrix_matches_generator(self):
        """Observed transition frequencies converge to the matrix."""
        source = NaturalSource(alphabet_size=5, seed=13)
        stream = source.sample(200_000, np.random.default_rng(7))
        matrix = source.transition_matrix
        observed = np.zeros_like(matrix)
        np.add.at(observed, (stream[:-1], stream[1:]), 1.0)
        observed = observed / observed.sum(axis=1, keepdims=True)
        assert np.abs(observed - matrix).max() < 0.02

    def test_symbol_marginals_match_stationary(self):
        source = NaturalSource(alphabet_size=5, seed=14)
        stream = source.sample(200_000, np.random.default_rng(8))
        from repro.datagen.markov_source import MarkovChainSource

        chain = MarkovChainSource(source.transition_matrix)
        stationary = chain.stationary_distribution()
        empirical = np.bincount(stream, minlength=5) / len(stream)
        assert np.abs(empirical - stationary).max() < 0.02
