"""Tests for repro.datagen.suite — the 112-case evaluation corpus."""

from __future__ import annotations

import pytest

from repro.datagen.anomalies import AnomalySynthesizer
from repro.datagen.suite import EvaluationSuite, SuiteCase, build_suite
from repro.exceptions import AnomalySynthesisError, InjectionError


class TestSuiteStructure:
    def test_case_count_matches_paper(self, suite):
        # 8 anomaly sizes x 14 detector windows = 112 test cases.
        assert suite.case_count() == 112

    def test_anomaly_sizes(self, suite):
        assert suite.anomaly_sizes == tuple(range(2, 10))

    def test_window_lengths(self, suite):
        assert suite.window_lengths == tuple(range(2, 16))

    def test_cases_iterate_in_grid_order(self, suite):
        cases = list(suite.cases())
        assert len(cases) == 112
        assert all(isinstance(case, SuiteCase) for case in cases)
        assert cases[0].anomaly_size == 2 and cases[0].window_length == 2
        assert cases[-1].anomaly_size == 9 and cases[-1].window_length == 15

    def test_cases_share_stream_per_anomaly_size(self, suite):
        cases = [case for case in suite.cases() if case.anomaly_size == 4]
        assert len(cases) == 14
        assert all(case.injected is cases[0].injected for case in cases)

    def test_stream_lookup(self, suite):
        injected = suite.stream(5)
        assert injected.anomaly_size == 5

    def test_unknown_stream_raises(self, suite):
        with pytest.raises(InjectionError, match="no test stream"):
            suite.stream(77)

    def test_anomaly_lookup(self, suite):
        assert suite.anomaly(3).size == 3

    def test_unknown_anomaly_raises(self, suite):
        with pytest.raises(AnomalySynthesisError, match="no anomaly"):
            suite.anomaly(77)

    def test_params_passthrough(self, suite, params):
        assert suite.params == params


class TestSuiteContents:
    def test_each_stream_contains_its_anomaly_once(self, suite, training):
        for size in suite.anomaly_sizes:
            injected = suite.stream(size)
            anomaly = suite.anomaly(size).sequence
            stream_list = injected.stream.tolist()
            anomaly_list = list(anomaly)
            occurrences = sum(
                1
                for i in range(len(stream_list) - size + 1)
                if stream_list[i : i + size] == anomaly_list
            )
            assert occurrences == 1

    def test_anomalies_foreign_to_training(self, suite, training):
        analyzer = training.analyzer
        for size in suite.anomaly_sizes:
            assert analyzer.is_foreign(suite.anomaly(size).sequence)

    def test_rare_parts_for_sizes_three_up(self, suite):
        for size in suite.anomaly_sizes:
            expected = size >= 3
            assert suite.anomaly(size).parts_rare == expected


class TestSuiteConstruction:
    def test_mismatched_streams_rejected(self, suite, training):
        anomalies = {2: suite.anomaly(2)}
        streams = {3: suite.stream(3)}
        with pytest.raises(InjectionError, match="disagree"):
            EvaluationSuite(training=training, anomalies=anomalies, streams=streams)

    def test_build_with_explicit_training(self, training):
        small = build_suite(training=training, stream_length=400)
        assert small.case_count() == 112

    def test_candidate_redraw_on_injection_failure(self, training, monkeypatch):
        # Force the first candidate of one size to fail injection; the
        # builder must fall through to the next candidate.
        import repro.datagen.suite as suite_module

        real_inject = suite_module.inject_anomaly
        failed_once = {"done": False}

        def flaky_inject(anomaly, *args, **kwargs):
            if not failed_once["done"]:
                failed_once["done"] = True
                raise InjectionError("synthetic failure")
            return real_inject(anomaly, *args, **kwargs)

        monkeypatch.setattr(suite_module, "inject_anomaly", flaky_inject)
        rebuilt = suite_module.build_suite(training=training, stream_length=400)
        assert rebuilt.case_count() == 112
        assert failed_once["done"]
