"""Tests for repro.datagen.contamination — poisoning the training data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.anomalies import AnomalySynthesizer
from repro.datagen.contamination import contaminate_training
from repro.detectors import MarkovDetector, StideDetector
from repro.exceptions import DataGenerationError


@pytest.fixture(scope="module")
def anomaly(training):
    return AnomalySynthesizer(training).synthesize(5)


class TestContaminateTraining:
    def test_anomaly_present_after_contamination(self, training, anomaly):
        rng = np.random.default_rng(0)
        poisoned = contaminate_training(training, anomaly.sequence, 3, rng)
        assert not poisoned.analyzer.is_foreign(anomaly.sequence)
        assert poisoned.analyzer.count(anomaly.sequence) >= 3

    def test_stream_length_preserved(self, training, anomaly):
        rng = np.random.default_rng(1)
        poisoned = contaminate_training(training, anomaly.sequence, 2, rng)
        assert len(poisoned.stream) == len(training.stream)

    def test_original_untouched(self, training, anomaly):
        rng = np.random.default_rng(2)
        contaminate_training(training, anomaly.sequence, 2, rng)
        assert training.analyzer.is_foreign(anomaly.sequence)

    def test_rejects_empty_anomaly(self, training):
        with pytest.raises(DataGenerationError, match="empty"):
            contaminate_training(
                training, (), 1, np.random.default_rng(0)
            )

    def test_rejects_zero_occurrences(self, training, anomaly):
        with pytest.raises(DataGenerationError, match="occurrences"):
            contaminate_training(
                training, anomaly.sequence, 0, np.random.default_rng(0)
            )

    def test_rejects_out_of_alphabet_codes(self, training):
        with pytest.raises(DataGenerationError, match="alphabet"):
            contaminate_training(
                training, (0, 99), 1, np.random.default_rng(0)
            )

    def test_rejects_stream_too_short(self, training, anomaly):
        from repro.datagen.training import TrainingData

        tiny = TrainingData(
            stream=training.stream[:100].copy(),
            alphabet=training.alphabet,
            source=training.source,
            params=training.params,
        )
        with pytest.raises(DataGenerationError, match="too short"):
            contaminate_training(
                tiny, anomaly.sequence, 5, np.random.default_rng(0)
            )

    def test_deterministic_under_seed(self, training, anomaly):
        a = contaminate_training(
            training, anomaly.sequence, 2, np.random.default_rng(7)
        )
        b = contaminate_training(
            training, anomaly.sequence, 2, np.random.default_rng(7)
        )
        assert np.array_equal(a.stream, b.stream)


class TestDetectorBlindness:
    """The paper's introduction: incorporated intrusive behavior makes
    detectors miss the intrusion."""

    def test_stide_goes_blind_after_one_occurrence(self, training, anomaly):
        rng = np.random.default_rng(3)
        poisoned = contaminate_training(training, anomaly.sequence, 1, rng)
        window_length = anomaly.size  # would be capable on clean training
        clean_stide = StideDetector(window_length, 8).fit(training.stream)
        poisoned_stide = StideDetector(window_length, 8).fit(poisoned.stream)
        assert clean_stide.score_window(anomaly.sequence) == 1.0
        assert poisoned_stide.score_window(anomaly.sequence) == 0.0

    def test_markov_still_flags_rare_contamination(self, training, anomaly):
        """One occurrence stays under the rarity floor: Markov holds."""
        rng = np.random.default_rng(4)
        poisoned = contaminate_training(training, anomaly.sequence, 1, rng)
        markov = MarkovDetector(anomaly.size, 8).fit(poisoned.stream)
        assert markov.score_window(anomaly.sequence) == 1.0

    def test_heavy_contamination_silences_markov(self, training, anomaly):
        """Enough occurrences to cross the rarity floor defeat Markov
        too — but that requires ~0.5% of the stream."""
        rng = np.random.default_rng(5)
        window_length = 3
        total_windows = len(training.stream) - window_length + 1
        needed = int(training.params.rare_threshold * total_windows) + 50
        poisoned = contaminate_training(
            training, anomaly.sequence, needed, rng, margin=16
        )
        markov = MarkovDetector(window_length, 8).fit(poisoned.stream)
        responses = [
            markov.score_window(anomaly.sequence[i : i + window_length])
            for i in range(anomaly.size - window_length + 1)
        ]
        assert max(responses) < 1.0
