"""Tests for repro.datagen.training — the paper's corpus structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.markov_source import CycleJumpSource
from repro.datagen.training import TrainingData, generate_training_data
from repro.exceptions import DataGenerationError
from repro.params import PaperParams, scaled_params
from repro.sequences.alphabet import Alphabet


class TestGeneration:
    def test_stream_has_requested_length(self, training):
        assert training.length == training.params.training_length

    def test_alphabet_matches_params(self, training):
        assert training.alphabet.size == training.params.alphabet_size

    def test_deterministic_under_seed(self):
        params = scaled_params(20_000, seed=99)
        a = generate_training_data(params)
        b = generate_training_data(params)
        assert np.array_equal(a.stream, b.stream)

    def test_different_seeds_differ(self):
        a = generate_training_data(scaled_params(20_000, seed=1))
        b = generate_training_data(scaled_params(20_000, seed=2))
        assert not np.array_equal(a.stream, b.stream)

    def test_refractory_defaults_above_max_window(self, training):
        refractory = training.source.jump_spec.refractory
        assert refractory > training.params.max_window_size
        assert refractory > training.params.max_anomaly_size

    def test_too_short_stream_fails_validation(self):
        # 500 elements cannot contain all 7 jump pairs reliably.
        params = scaled_params(500, seed=3)
        with pytest.raises(DataGenerationError):
            generate_training_data(params)


class TestCorpusStructure:
    """The paper's Section 5.3 properties."""

    def test_cycle_dominates(self, training):
        # The paper: 98% of the stream is the repeated cycle.
        assert training.cycle_run_fraction() > 0.95

    def test_deviations_exist(self, training):
        assert len(training.jump_positions()) > 50

    def test_every_jump_pair_present_and_rare(self, training):
        store = training.analyzer.store_for(2)
        threshold = training.params.rare_threshold
        for pair in training.source.jump_pairs():
            assert store.contains(pair)
            assert 0 < store.relative_frequency(pair) < threshold

    def test_cycle_pairs_common(self, training):
        store = training.analyzer.store_for(2)
        threshold = training.params.rare_threshold
        size = training.alphabet.size
        for state in range(size):
            pair = (state, (state + 1) % size)
            assert store.relative_frequency(pair) >= threshold

    def test_jumps_respect_refractory(self, training):
        gaps = np.diff(training.jump_positions())
        assert gaps.min() >= training.source.jump_spec.refractory

    def test_validate_passes_on_shared_corpus(self, training):
        training.validate()  # should not raise


class TestTrainingDataValidation:
    def _make(self, stream: np.ndarray) -> TrainingData:
        params = scaled_params(max(1, len(stream)))
        return TrainingData(
            stream=stream,
            alphabet=Alphabet.of_size(8),
            source=CycleJumpSource(alphabet_size=8),
            params=params,
        )

    def test_rejects_empty_stream(self):
        with pytest.raises(DataGenerationError, match="non-empty"):
            self._make(np.asarray([], dtype=np.int64))

    def test_validate_rejects_cycle_free_stream(self):
        rng = np.random.default_rng(0)
        stream = rng.integers(0, 8, size=5_000)
        data = self._make(stream)
        with pytest.raises(DataGenerationError, match="cycle fraction"):
            data.validate()

    def test_validate_rejects_missing_jump_pairs(self):
        # A pure cycle has a perfect cycle fraction but no jumps at all.
        stream = np.arange(5_000, dtype=np.int64) % 8
        data = self._make(stream)
        with pytest.raises(DataGenerationError, match="never occurred"):
            data.validate()

    def test_analyzer_cached(self, training):
        assert training.analyzer is training.analyzer
