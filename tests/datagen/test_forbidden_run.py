"""Tests for repro.datagen.forbidden_run."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.forbidden_run import ForbiddenRunSource
from repro.exceptions import DataGenerationError
from repro.sequences.foreign import ForeignSequenceAnalyzer


class TestConfiguration:
    def test_rejects_bad_limit(self):
        with pytest.raises(DataGenerationError, match="run_limit"):
            ForbiddenRunSource(0)

    def test_rejects_bad_probability(self):
        with pytest.raises(DataGenerationError, match="zero_probability"):
            ForbiddenRunSource(3, zero_probability=1.0)

    def test_forbidden_sequence(self):
        assert ForbiddenRunSource(4).forbidden_sequence() == (0, 0, 0, 0, 0)

    def test_alphabet_is_binary(self):
        assert ForbiddenRunSource(3).alphabet_size == 2


class TestSampling:
    @pytest.fixture(scope="class")
    def stream(self) -> np.ndarray:
        return ForbiddenRunSource(4).sample(60_000, np.random.default_rng(5))

    def test_rejects_nonpositive_length(self):
        with pytest.raises(DataGenerationError, match="positive"):
            ForbiddenRunSource(3).sample(0, np.random.default_rng(0))

    def test_run_limit_honored(self, stream):
        ForbiddenRunSource(4).verify(stream)

    def test_deterministic_under_seed(self):
        source = ForbiddenRunSource(3)
        a = source.sample(5_000, np.random.default_rng(1))
        b = source.sample(5_000, np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_verify_rejects_forbidden_run(self):
        source = ForbiddenRunSource(2)
        with pytest.raises(DataGenerationError, match="zero-run of 3"):
            source.verify(np.asarray([1, 0, 0, 0, 1]))

    def test_verify_rejects_undersampled_stream(self):
        source = ForbiddenRunSource(5)
        with pytest.raises(DataGenerationError, match="no zero-run"):
            source.verify(np.asarray([1, 0, 1, 0, 1]))


class TestMfsWithCommonParts:
    """The corpus's purpose: an MFS whose parts are common."""

    @pytest.fixture(scope="class")
    def analyzer(self) -> ForeignSequenceAnalyzer:
        stream = ForbiddenRunSource(4).sample(
            60_000, np.random.default_rng(9)
        )
        return ForeignSequenceAnalyzer(stream, rare_threshold=0.005)

    def test_forbidden_run_is_minimal_foreign(self, analyzer):
        mfs = ForbiddenRunSource(4).forbidden_sequence()
        assert analyzer.is_minimal_foreign(mfs)
        analyzer.verify_minimal_foreign(mfs)

    def test_parts_are_common_not_rare(self, analyzer):
        mfs = ForbiddenRunSource(4).forbidden_sequence()
        assert analyzer.is_common(mfs[:-1])
        assert analyzer.is_common(mfs[1:])
        assert not analyzer.is_rare(mfs[:-1])

    def test_main_corpus_cannot_do_this(self, training):
        """On the paper corpus, no MFS of size >= 3 has common parts."""
        candidates = training.analyzer.minimal_foreign_sequences(
            5, rare_parts_only=False
        )
        for candidate in candidates:
            assert training.analyzer.is_rare(
                candidate[:-1]
            ) or training.analyzer.is_rare(candidate[1:])
