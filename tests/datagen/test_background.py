"""Tests for repro.datagen.background."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.background import generate_background, verify_background_clean
from repro.exceptions import DataGenerationError
from repro.sequences.ngram_store import NgramStore


class TestGenerateBackground:
    def test_walks_the_cycle(self):
        assert generate_background(4, 6).tolist() == [0, 1, 2, 3, 0, 1]

    def test_phase_offsets_start(self):
        assert generate_background(4, 3, phase=2).tolist() == [2, 3, 0]

    def test_rejects_tiny_alphabet(self):
        with pytest.raises(DataGenerationError, match="alphabet_size"):
            generate_background(1, 10)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(DataGenerationError, match="positive"):
            generate_background(4, 0)

    def test_rejects_out_of_range_phase(self):
        with pytest.raises(DataGenerationError, match="phase"):
            generate_background(4, 10, phase=4)

    def test_every_transition_is_a_cycle_step(self):
        background = generate_background(8, 1000, phase=5)
        successors = (background[:-1] + 1) % 8
        assert np.array_equal(background[1:], successors)


class TestVerifyBackgroundClean:
    def test_clean_cycle_passes(self, training):
        background = generate_background(8, 300)
        store = training.analyzer.store_for(2, 5, 9)
        verify_background_clean(
            background, store, (2, 5, 9), training.params.rare_threshold
        )

    def test_every_phase_is_clean(self, training):
        store = training.analyzer.store_for(2, 7)
        for phase in range(8):
            background = generate_background(8, 100, phase=phase)
            verify_background_clean(
                background, store, (2, 7), training.params.rare_threshold
            )

    def test_foreign_window_rejected(self, training):
        corrupted = generate_background(8, 100)
        corrupted[50] = corrupted[49]  # repeat breaks the cycle: foreign pair
        store = training.analyzer.store_for(3)
        with pytest.raises(DataGenerationError, match="foreign"):
            verify_background_clean(
                corrupted, store, (3,), training.params.rare_threshold
            )

    def test_rare_window_rejected(self, training):
        # A jump pair exists in training but is rare; splicing one into
        # the background must be flagged.
        corrupted = generate_background(8, 100)
        source_state = int(corrupted[49])
        if source_state == 1:  # jumping from symbol 2 would be a cycle step
            source_state = int(corrupted[48])
            corrupted[49:] = 0  # simplify tail
        corrupted[50] = 2  # jump target; (source, 2) is rare in training
        # Re-lay the tail as a cycle so only the splice is suspicious.
        for i in range(51, len(corrupted)):
            corrupted[i] = (corrupted[i - 1] + 1) % 8
        store = training.analyzer.store_for(2)
        with pytest.raises(DataGenerationError, match="rare|foreign"):
            verify_background_clean(
                corrupted, store, (2,), training.params.rare_threshold
            )

    def test_short_background_skips_long_windows(self, training):
        background = generate_background(8, 3)
        store = training.analyzer.store_for(2, 9)
        # Window length 9 exceeds the stream; only length 2 is checked.
        verify_background_clean(
            background, store, (2, 9), training.params.rare_threshold
        )
