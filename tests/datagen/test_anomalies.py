"""Tests for repro.datagen.anomalies — MFS synthesis."""

from __future__ import annotations

import pytest

from repro.datagen.anomalies import AnomalySynthesizer, SynthesizedAnomaly
from repro.exceptions import AnomalySynthesisError


@pytest.fixture(scope="module")
def synthesizer(training) -> AnomalySynthesizer:
    return AnomalySynthesizer(training)


class TestSynthesize:
    def test_every_paper_size_synthesizes(self, synthesizer, training):
        for size in training.params.anomaly_sizes:
            anomaly = synthesizer.synthesize(size)
            assert anomaly.size == size
            assert len(anomaly.sequence) == size

    def test_result_is_verified_mfs(self, synthesizer, training):
        anomaly = synthesizer.synthesize(6)
        analyzer = training.analyzer
        assert analyzer.is_foreign(anomaly.sequence)
        analyzer.verify_minimal_foreign(anomaly.sequence)

    def test_parts_are_the_overlap_decomposition(self, synthesizer):
        anomaly = synthesizer.synthesize(5)
        assert anomaly.left_part == anomaly.sequence[:-1]
        assert anomaly.right_part == anomaly.sequence[1:]

    def test_parts_rare_for_sizes_three_and_up(self, synthesizer, training):
        for size in range(3, 10):
            anomaly = synthesizer.synthesize(size)
            assert anomaly.parts_rare, f"size {size} parts not rare"
            assert 0 < anomaly.left_part_frequency < training.params.rare_threshold
            assert 0 < anomaly.right_part_frequency < training.params.rare_threshold

    def test_size_two_parts_are_common_symbols(self, synthesizer):
        # All 8 symbols are common (the cycle visits each), so a size-2
        # MFS cannot have rare parts; the synthesizer documents this.
        anomaly = synthesizer.synthesize(2)
        assert not anomaly.parts_rare

    def test_deterministic_by_index(self, synthesizer):
        assert (
            synthesizer.synthesize(4, index=0).sequence
            == synthesizer.synthesize(4, index=0).sequence
        )

    def test_distinct_indices_give_distinct_anomalies(self, synthesizer):
        candidates = synthesizer.candidates(4)
        if len(candidates) >= 2:
            first = synthesizer.synthesize(4, index=0)
            second = synthesizer.synthesize(4, index=1)
            assert first.sequence != second.sequence

    def test_rejects_size_one(self, synthesizer):
        with pytest.raises(AnomalySynthesisError, match="size-1"):
            synthesizer.synthesize(1)

    def test_rejects_out_of_range_index(self, synthesizer):
        count = len(synthesizer.candidates(3))
        with pytest.raises(AnomalySynthesisError, match="out of range"):
            synthesizer.synthesize(3, index=count)

    def test_impossible_request_raises(self, synthesizer):
        # Rare parts of size 1 cannot exist: every symbol is common.
        with pytest.raises(AnomalySynthesisError, match="no minimal foreign"):
            synthesizer.synthesize(2, rare_parts_only=True)


class TestSynthesizedAnomalyValidation:
    def test_size_mismatch_rejected(self):
        with pytest.raises(AnomalySynthesisError, match="disagrees"):
            SynthesizedAnomaly(
                sequence=(1, 2, 3),
                size=4,
                left_part=(1, 2),
                right_part=(2, 3),
                parts_rare=False,
                left_part_frequency=0.0,
                right_part_frequency=0.0,
            )

    def test_wrong_parts_rejected(self):
        with pytest.raises(AnomalySynthesisError, match="prefix"):
            SynthesizedAnomaly(
                sequence=(1, 2, 3),
                size=3,
                left_part=(9, 9),
                right_part=(2, 3),
                parts_rare=False,
                left_part_frequency=0.0,
                right_part_frequency=0.0,
            )


class TestCandidateStructure:
    def test_candidates_are_lexicographically_sorted(self, synthesizer):
        candidates = synthesizer.candidates(4)
        assert candidates == sorted(candidates)

    def test_all_candidates_are_foreign_with_present_parts(
        self, synthesizer, training
    ):
        analyzer = training.analyzer
        for candidate in synthesizer.candidates(5)[:10]:
            assert analyzer.is_foreign(candidate)
            assert not analyzer.is_foreign(candidate[:-1])
            assert not analyzer.is_foreign(candidate[1:])
