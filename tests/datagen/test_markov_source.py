"""Tests for repro.datagen.markov_source."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.markov_source import CycleJumpSource, JumpSpec, MarkovChainSource
from repro.exceptions import DataGenerationError


class TestMarkovChainSource:
    def test_rejects_non_square_matrix(self):
        with pytest.raises(DataGenerationError, match="square"):
            MarkovChainSource(np.ones((2, 3)))

    def test_rejects_empty_matrix(self):
        with pytest.raises(DataGenerationError, match="non-empty"):
            MarkovChainSource(np.zeros((0, 0)))

    def test_rejects_negative_probabilities(self):
        matrix = np.asarray([[1.5, -0.5], [0.5, 0.5]])
        with pytest.raises(DataGenerationError, match="non-negative"):
            MarkovChainSource(matrix)

    def test_rejects_non_stochastic_rows(self):
        matrix = np.asarray([[0.5, 0.4], [0.5, 0.5]])
        with pytest.raises(DataGenerationError, match="sums to"):
            MarkovChainSource(matrix)

    def test_rejects_bad_initial_distribution_shape(self):
        matrix = np.eye(2)
        with pytest.raises(DataGenerationError, match="one entry per state"):
            MarkovChainSource(matrix, initial_distribution=np.ones(3) / 3)

    def test_rejects_non_probability_initial(self):
        matrix = np.eye(2)
        with pytest.raises(DataGenerationError, match="probability vector"):
            MarkovChainSource(matrix, initial_distribution=np.asarray([0.7, 0.7]))

    def test_deterministic_chain_walks_cycle(self):
        matrix = np.asarray([[0, 1, 0], [0, 0, 1], [1, 0, 0]], dtype=float)
        source = MarkovChainSource(matrix)
        stream = source.sample(7, np.random.default_rng(0), initial_state=0)
        assert stream.tolist() == [0, 1, 2, 0, 1, 2, 0]

    def test_sample_rejects_nonpositive_length(self):
        source = MarkovChainSource(np.eye(2))
        with pytest.raises(DataGenerationError, match="positive"):
            source.sample(0, np.random.default_rng(0))

    def test_sample_rejects_bad_initial_state(self):
        source = MarkovChainSource(np.eye(2))
        with pytest.raises(DataGenerationError, match="out of range"):
            source.sample(5, np.random.default_rng(0), initial_state=2)

    def test_sample_is_deterministic_under_seed(self):
        matrix = np.full((4, 4), 0.25)
        source = MarkovChainSource(matrix)
        a = source.sample(100, np.random.default_rng(42))
        b = source.sample(100, np.random.default_rng(42))
        assert np.array_equal(a, b)

    def test_transition_matrix_returns_copy(self):
        matrix = np.eye(2)
        source = MarkovChainSource(matrix)
        source.transition_matrix[0, 0] = 0.0
        assert source.transition_matrix[0, 0] == 1.0

    def test_stationary_distribution_uniform_chain(self):
        matrix = np.full((4, 4), 0.25)
        stationary = MarkovChainSource(matrix).stationary_distribution()
        assert np.allclose(stationary, 0.25)

    def test_empirical_frequencies_match_matrix(self):
        matrix = np.asarray([[0.9, 0.1], [0.2, 0.8]])
        source = MarkovChainSource(matrix)
        stream = source.sample(50_000, np.random.default_rng(7))
        zeros = stream[:-1] == 0
        observed = (stream[1:][zeros] == 1).mean()
        assert observed == pytest.approx(0.1, abs=0.01)


class TestJumpSpec:
    def test_rejects_bad_probability(self):
        with pytest.raises(DataGenerationError, match="probability"):
            JumpSpec(target=2, sources=(0,), probability=0.0, refractory=4)

    def test_rejects_bad_refractory(self):
        with pytest.raises(DataGenerationError, match="refractory"):
            JumpSpec(target=2, sources=(0,), probability=0.1, refractory=0)

    def test_rejects_empty_sources(self):
        with pytest.raises(DataGenerationError, match="source"):
            JumpSpec(target=2, sources=(), probability=0.1, refractory=4)


class TestCycleJumpSource:
    def test_rejects_tiny_alphabet(self):
        with pytest.raises(DataGenerationError, match="alphabet"):
            CycleJumpSource(alphabet_size=2)

    def test_rejects_out_of_range_target(self):
        with pytest.raises(DataGenerationError, match="target"):
            CycleJumpSource(alphabet_size=8, jump_target=8)

    def test_cycle_predecessor_excluded_from_sources(self):
        source = CycleJumpSource(alphabet_size=8, jump_target=2)
        assert 1 not in source.jump_spec.sources  # symbol 2 -> 3 is a cycle step
        assert len(source.jump_spec.sources) == 7

    def test_jump_pairs_all_target_the_same_state(self):
        source = CycleJumpSource(alphabet_size=8, jump_target=2)
        assert {target for _s, target in source.jump_pairs()} == {2}

    def test_sample_rejects_nonpositive_length(self):
        source = CycleJumpSource()
        with pytest.raises(DataGenerationError, match="positive"):
            source.sample(0, np.random.default_rng(0))

    def test_sample_rejects_bad_initial_state(self):
        source = CycleJumpSource()
        with pytest.raises(DataGenerationError, match="out of range"):
            source.sample(10, np.random.default_rng(0), initial_state=9)

    def test_every_transition_is_cycle_or_jump(self):
        source = CycleJumpSource(alphabet_size=8)
        stream = source.sample(20_000, np.random.default_rng(3))
        successors = (stream[:-1] + 1) % 8
        deviations = stream[1:][stream[1:] != successors]
        assert (deviations == source.jump_spec.target).all()

    def test_refractory_period_enforced(self):
        source = CycleJumpSource(alphabet_size=8, refractory=16)
        stream = source.sample(50_000, np.random.default_rng(5))
        successors = (stream[:-1] + 1) % 8
        jump_positions = np.nonzero(stream[1:] != successors)[0]
        assert len(jump_positions) > 10  # jumps actually happen
        gaps = np.diff(jump_positions)
        assert gaps.min() >= 16

    def test_deterministic_under_seed(self):
        source = CycleJumpSource()
        a = source.sample(5_000, np.random.default_rng(11))
        b = source.sample(5_000, np.random.default_rng(11))
        assert np.array_equal(a, b)

    def test_opening_window_is_jump_free(self):
        source = CycleJumpSource(alphabet_size=8, refractory=16)
        stream = source.sample(18, np.random.default_rng(1))
        assert stream.tolist() == [(i) % 8 for i in range(18)]


@settings(max_examples=20)
@given(st.integers(3, 12), st.integers(0, 11))
def test_cycle_successor_wraps(alphabet_size: int, state: int):
    state = state % alphabet_size
    source = CycleJumpSource(alphabet_size=alphabet_size)
    successor = source.cycle_successor(state)
    assert 0 <= successor < alphabet_size
    assert (state + 1) % alphabet_size == successor
