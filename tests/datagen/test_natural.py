"""Tests for repro.datagen.natural — the natural-data confound."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.background import generate_background
from repro.datagen.natural import NaturalSource, background_confound_rate
from repro.exceptions import DataGenerationError


class TestNaturalSource:
    def test_rejects_tiny_alphabet(self):
        with pytest.raises(DataGenerationError, match="alphabet_size"):
            NaturalSource(alphabet_size=1)

    def test_rejects_bad_concentration(self):
        with pytest.raises(DataGenerationError, match="concentration"):
            NaturalSource(concentration=0.0)

    def test_matrix_is_row_stochastic_and_positive(self):
        source = NaturalSource(alphabet_size=6, seed=3)
        matrix = source.transition_matrix
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert (matrix > 0).all()  # irreducible by construction

    def test_streams_deterministic_under_seed(self):
        source = NaturalSource(seed=1)
        a = source.sample(2000, np.random.default_rng(9))
        b = source.sample(2000, np.random.default_rng(9))
        assert np.array_equal(a, b)

    def test_streams_use_whole_alphabet(self):
        source = NaturalSource(alphabet_size=8, seed=2)
        stream = source.sample(20_000, np.random.default_rng(0))
        assert set(np.unique(stream)) == set(range(8))

    def test_skewed_rows(self):
        """Low concentration yields strongly non-uniform conditionals."""
        source = NaturalSource(alphabet_size=8, concentration=0.4, seed=4)
        matrix = source.transition_matrix
        assert matrix.max(axis=1).mean() > 0.4  # dominant successors exist


class TestBackgroundConfoundRate:
    def test_synthetic_background_is_confound_free(self, training):
        """The paper's design goal: clean background, rate exactly 0."""
        background = generate_background(8, 2_000)
        rate = background_confound_rate(training.stream, background, 8)
        assert rate == 0.0

    def test_natural_background_confounds(self):
        """Fresh natural data contains windows foreign to the natural
        training sample — responses with no injected cause."""
        source = NaturalSource(seed=7)
        train = source.sample(30_000, np.random.default_rng(1))
        heldout = source.sample(5_000, np.random.default_rng(2))
        rate = background_confound_rate(train, heldout, 8)
        assert rate > 0.01

    def test_rate_grows_with_window_length(self):
        source = NaturalSource(seed=8)
        train = source.sample(30_000, np.random.default_rng(3))
        heldout = source.sample(5_000, np.random.default_rng(4))
        short = background_confound_rate(train, heldout, 4)
        long = background_confound_rate(train, heldout, 10)
        assert long >= short

    def test_rejects_short_streams(self):
        with pytest.raises(DataGenerationError, match="at least one window"):
            background_confound_rate(np.zeros(3), np.zeros(100), 5)
