"""Tests for repro.datagen.injection — boundary-clean injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.anomalies import AnomalySynthesizer
from repro.datagen.injection import (
    InjectedStream,
    InjectionPolicy,
    inject_anomaly,
    inject_randomly,
)
from repro.exceptions import EvaluationError, InjectionError


@pytest.fixture(scope="module")
def policy(training) -> InjectionPolicy:
    return InjectionPolicy(
        window_lengths=training.params.window_sizes,
        rare_threshold=training.params.rare_threshold,
    )


@pytest.fixture(scope="module")
def injected(training, policy) -> InjectedStream:
    anomaly = AnomalySynthesizer(training).synthesize(6)
    return inject_anomaly(anomaly.sequence, training, policy, stream_length=400)


class TestPolicyValidation:
    def test_rejects_window_lengths_below_two(self):
        with pytest.raises(InjectionError, match=">= 2"):
            InjectionPolicy(window_lengths=(1, 5), rare_threshold=0.005)

    def test_rejects_empty_window_lengths(self):
        with pytest.raises(InjectionError, match=">= 2"):
            InjectionPolicy(window_lengths=(), rare_threshold=0.005)

    def test_rejects_bad_threshold(self):
        with pytest.raises(InjectionError, match="rare_threshold"):
            InjectionPolicy(window_lengths=(2,), rare_threshold=0.0)


class TestInjectedStreamInvariants:
    def test_anomaly_at_position(self, injected):
        size = injected.anomaly_size
        segment = injected.stream[injected.position : injected.position + size]
        assert tuple(int(c) for c in segment) == injected.anomaly

    def test_phases_recorded(self, injected):
        assert injected.stream[injected.position - 1] == injected.left_phase
        after = injected.position + injected.anomaly_size
        assert injected.stream[after] == injected.right_phase

    def test_constructor_rejects_position_mismatch(self, injected):
        with pytest.raises(InjectionError, match="disagrees"):
            InjectedStream(
                stream=injected.stream,
                anomaly=injected.anomaly,
                position=injected.position + 1,
                left_phase=0,
                right_phase=0,
            )

    def test_constructor_rejects_overflow_position(self):
        with pytest.raises(InjectionError, match="does not fit"):
            InjectedStream(
                stream=np.zeros(10, dtype=np.int64),
                anomaly=(0, 0, 0),
                position=8,
                left_phase=0,
                right_phase=0,
            )

    def test_constructor_rejects_2d_stream(self):
        with pytest.raises(InjectionError, match="one-dimensional"):
            InjectedStream(
                stream=np.zeros((4, 4), dtype=np.int64),
                anomaly=(0,),
                position=0,
                left_phase=0,
                right_phase=0,
            )


class TestIncidentSpan:
    """Figure 2: the incident span and boundary windows."""

    def test_span_size_is_dw_plus_as_minus_one(self, injected):
        # Away from stream edges, the span has DW + AS - 1 windows.
        for window_length in (2, 5, 9, 15):
            span = injected.incident_span(window_length)
            assert len(span) == window_length + injected.anomaly_size - 1

    def test_figure2_example_dw5_as8(self, training, policy):
        # The paper's Figure 2: DW=5, AS=8 -> 12 windows in the span.
        anomaly = AnomalySynthesizer(training).synthesize(8)
        injected = inject_anomaly(
            anomaly.sequence, training, policy, stream_length=400
        )
        assert len(injected.incident_span(5)) == 12

    def test_span_windows_each_contain_anomaly_elements(self, injected):
        window_length = 7
        span = injected.incident_span(window_length)
        for start in span:
            assert injected.window_overlap(start, window_length) > 0
        # And the windows just outside do not.
        assert injected.window_overlap(span.start - 1, window_length) == 0
        assert injected.window_overlap(span.stop, window_length) == 0

    def test_span_rejects_oversized_window(self, injected):
        with pytest.raises(EvaluationError, match="no windows"):
            injected.incident_span(len(injected.stream) + 1)

    def test_boundary_windows_mix(self, injected):
        window_length = 9
        span = injected.incident_span(window_length)
        boundary = [
            s for s in span if injected.is_boundary_window(s, window_length)
        ]
        # Figure 2: 2*(DW-1) boundary windows when DW <= AS... for DW > AS
        # every partial-overlap window is a boundary window.
        assert boundary, "no boundary windows found"
        for start in boundary:
            overlap = injected.window_overlap(start, window_length)
            assert 0 < overlap
            assert overlap < window_length  # some background included


class TestCleanliness:
    """The injection must create no spurious foreign/rare windows."""

    def test_non_span_windows_common(self, injected, training):
        threshold = training.params.rare_threshold
        for window_length in (2, 8, 15):
            store = training.analyzer.store_for(window_length)
            span = injected.incident_span(window_length)
            view = np.lib.stride_tricks.sliding_window_view(
                injected.stream, window_length
            )
            for start, row in enumerate(view):
                if start in span:
                    continue
                frequency = store.relative_frequency(tuple(int(c) for c in row))
                assert frequency >= threshold

    def test_partial_overlap_windows_exist_in_training(self, injected, training):
        for window_length in (2, 8, 15):
            store = training.analyzer.store_for(window_length)
            view = np.lib.stride_tricks.sliding_window_view(
                injected.stream, window_length
            )
            for start, row in enumerate(view):
                overlap = injected.window_overlap(start, window_length)
                if overlap == 0 or overlap == injected.anomaly_size:
                    continue
                assert store.contains(tuple(int(c) for c in row))

    def test_full_anomaly_windows_foreign(self, injected, training):
        for window_length in (6, 10):
            if window_length < injected.anomaly_size:
                continue
            store = training.analyzer.store_for(window_length)
            view = np.lib.stride_tricks.sliding_window_view(
                injected.stream, window_length
            )
            for start, row in enumerate(view):
                overlap = injected.window_overlap(start, window_length)
                if overlap == injected.anomaly_size:
                    assert not store.contains(tuple(int(c) for c in row))


class TestInjectErrors:
    def test_rejects_empty_anomaly(self, training, policy):
        with pytest.raises(InjectionError, match="empty"):
            inject_anomaly((), training, policy)

    def test_rejects_insufficient_margin(self, training, policy):
        anomaly = AnomalySynthesizer(training).synthesize(4)
        with pytest.raises(InjectionError, match="background on a side"):
            inject_anomaly(
                anomaly.sequence, training, policy, stream_length=40, position=5
            )

    def test_uninjectable_anomaly_raises(self, training, policy):
        # A sequence of repeated jump targets is foreign but has foreign
        # boundary interactions at every phase.
        bad = (2, 2, 2, 2)
        with pytest.raises(InjectionError, match="no clean injection"):
            inject_anomaly(bad, training, policy, stream_length=400)


class TestRandomInjection:
    """The ablation baseline: no boundary checks."""

    def test_produces_valid_stream(self, training):
        anomaly = AnomalySynthesizer(training).synthesize(5)
        rng = np.random.default_rng(0)
        injected = inject_randomly(anomaly.sequence, training, 400, rng)
        assert injected.anomaly == anomaly.sequence

    def test_rejects_short_stream(self, training):
        anomaly = AnomalySynthesizer(training).synthesize(5)
        rng = np.random.default_rng(0)
        with pytest.raises(InjectionError, match="too short"):
            inject_randomly(anomaly.sequence, training, 20, rng)

    def test_usually_violates_cleanliness(self, training):
        # Random injection should create spurious foreign boundary
        # windows for most draws — the reason the paper rejects it.
        anomaly = AnomalySynthesizer(training).synthesize(5)
        store = training.analyzer.store_for(5)
        rng = np.random.default_rng(12)
        violations = 0
        trials = 10
        for _ in range(trials):
            injected = inject_randomly(anomaly.sequence, training, 200, rng)
            view = np.lib.stride_tricks.sliding_window_view(injected.stream, 5)
            for start, row in enumerate(view):
                overlap = injected.window_overlap(start, 5)
                if 0 < overlap < injected.anomaly_size and not store.contains(
                    tuple(int(c) for c in row)
                ):
                    violations += 1
                    break
        assert violations > trials // 2
