"""Tests for repro.runtime.telemetry — spans, metrics, traces, merges."""

from __future__ import annotations

import json
import threading

import pytest

from repro.datagen.suite import build_suite
from repro.datagen.training import generate_training_data
from repro.exceptions import TelemetryError
from repro.params import scaled_params
from repro.runtime import SweepEngine
from repro.runtime.resilience import ResiliencePolicy
from repro.runtime.telemetry import (
    SPAN_PHASES,
    TRACE_SCHEMA_VERSION,
    Metrics,
    Telemetry,
    activated,
    check_trace_counters,
    count,
    iter_trace,
    observe,
    read_trace,
    span,
    summarize_trace,
    validate_trace_line,
)

#: Families the sweep tests exercise; two is enough to cover the
#: memoized (markov) and plain (stide) scoring paths cheaply.
FAMILIES = ("stide", "markov")


@pytest.fixture(scope="module")
def small_suite():
    """A reduced corpus so instrumented sweeps stay fast."""
    params = scaled_params(8_000, seed=11)
    return build_suite(training=generate_training_data(params))


def _assert_maps_identical(expected, actual, suite) -> None:
    for anomaly_size in suite.anomaly_sizes:
        for window_length in suite.window_lengths:
            assert expected.cell(anomaly_size, window_length) == actual.cell(
                anomaly_size, window_length
            )


class TestTracerSpans:
    def test_nesting_follows_the_enter_exit_stack(self):
        telemetry = Telemetry()
        with telemetry.tracer.span("sweep", "root") as root:
            with telemetry.tracer.span("block", "outer") as outer:
                with telemetry.tracer.span("fit", "inner") as inner:
                    pass
            with telemetry.tracer.span("block", "sibling") as sibling:
                pass
        by_id = {record["id"]: record for record in telemetry.tracer.records()}
        assert by_id[inner.span_id]["parent"] == outer.span_id
        assert by_id[outer.span_id]["parent"] == root.span_id
        assert by_id[sibling.span_id]["parent"] == root.span_id
        assert by_id[root.span_id]["parent"] is None

    def test_records_complete_in_exit_order(self):
        telemetry = Telemetry()
        with telemetry.tracer.span("sweep", "outer"):
            with telemetry.tracer.span("block", "inner"):
                pass
        names = [record["name"] for record in telemetry.tracer.records()]
        assert names == ["inner", "outer"]

    def test_span_carries_times_and_scalar_attrs(self):
        telemetry = Telemetry()
        with telemetry.tracer.span("fit", "stide", window_length=4, note=None):
            pass
        (record,) = telemetry.tracer.records()
        assert record["phase"] == "fit"
        assert record["attrs"] == {"window_length": 4, "note": None}
        assert record["wall"] >= 0 and record["cpu"] >= 0
        validate_trace_line(record)

    def test_threads_nest_independently(self):
        telemetry = Telemetry()
        with telemetry.tracer.span("sweep", "main") as root:
            def worker():
                with telemetry.tracer.span("block", "threaded"):
                    pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        threaded = next(
            record
            for record in telemetry.tracer.records()
            if record["name"] == "threaded"
        )
        # The worker thread has its own stack: no cross-thread parent.
        assert threaded["parent"] is None
        assert root.span_id is not None


class TestModuleHelpers:
    def test_helpers_are_noops_when_inactive(self):
        telemetry = Telemetry()
        handle = span("fit", "ignored")
        with handle:
            pass
        count("nothing")
        observe("nothing", 1.0)
        assert handle.wall == 0.0
        assert len(telemetry.tracer) == 0

    def test_activated_routes_and_restores(self):
        telemetry = Telemetry()
        with activated(telemetry):
            with span("fit", "active"):
                pass
            count("events", 2)
            observe("sizes", 5.0)
        # Deactivated again: nothing further lands on the instance.
        count("events")
        assert telemetry.metrics.counter("events") == 2
        assert [r["name"] for r in telemetry.tracer.records()] == ["active"]

    def test_activated_none_is_passthrough(self):
        telemetry = Telemetry()
        with activated(telemetry):
            with activated(None):
                count("through.none")
        assert telemetry.metrics.counter("through.none") == 1


class TestMetrics:
    def test_counters_accumulate(self):
        metrics = Metrics()
        metrics.count("hits")
        metrics.count("hits", 4)
        assert metrics.counter("hits") == 5
        assert metrics.counter("never") == 0

    def test_histogram_four_number_summary(self):
        metrics = Metrics()
        for value in (3.0, 1.0, 2.0):
            metrics.observe("sizes", value)
        summary = metrics.snapshot()["histograms"]["sizes"]
        assert summary == [3, 6.0, 1.0, 3.0]

    def test_merge_folds_counters_and_histograms(self):
        left, right = Metrics(), Metrics()
        left.count("hits", 2)
        left.observe("sizes", 10.0)
        right.count("hits", 3)
        right.count("misses", 1)
        right.observe("sizes", 2.0)
        right.observe("fresh", 7.0)
        left.merge(right.snapshot())
        snapshot = left.snapshot()
        assert snapshot["counters"] == {"hits": 5, "misses": 1}
        assert snapshot["histograms"]["sizes"] == [2, 12.0, 2.0, 10.0]
        assert snapshot["histograms"]["fresh"] == [1, 7.0, 7.0, 7.0]


class TestTraceRoundTrip:
    def _collected(self) -> Telemetry:
        telemetry = Telemetry()
        with telemetry.tracer.span("sweep", "run", executor="serial"):
            with telemetry.tracer.span("fit", "stide", window_length=4):
                pass
        telemetry.metrics.count("cache.hit", 3)
        telemetry.metrics.observe("kernel.batch_size", 17)
        return telemetry

    def test_jsonl_round_trip(self, tmp_path):
        telemetry = self._collected()
        path = telemetry.write_trace(tmp_path / "trace.jsonl")
        headers, spans, counters, histograms = read_trace(path)
        assert len(headers) == 1
        assert headers[0]["schema"] == TRACE_SCHEMA_VERSION
        assert headers[0]["spans"] == len(spans) == 2
        assert counters == {"cache.hit": 3}
        assert histograms["kernel.batch_size"]["count"] == 1
        assert {record["phase"] for record in spans} <= SPAN_PHASES

    def test_every_line_validates(self, tmp_path):
        path = self._collected().write_trace(tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert lines
        for number, line in enumerate(lines, start=1):
            validate_trace_line(json.loads(line), number)

    @pytest.mark.parametrize(
        "mutation, message",
        [
            ({"type": "mystery"}, "unknown record type"),
            ({"schema": TRACE_SCHEMA_VERSION + 1}, "schema"),
            ({"phase": "lunch"}, "unknown span phase"),
            ({"wall": -1.0}, "bad span 'wall'"),
            ({"attrs": {"bad": [1, 2]}}, "non-scalar span attribute"),
        ],
    )
    def test_validator_rejects_bad_spans(self, mutation, message):
        record = {
            "type": "span",
            "schema": TRACE_SCHEMA_VERSION,
            "pid": 1,
            "id": "1-1",
            "parent": None,
            "phase": "fit",
            "name": "stide",
            "start": 0.0,
            "wall": 0.0,
            "cpu": 0.0,
        }
        record.update(mutation)
        with pytest.raises(TelemetryError, match=message):
            validate_trace_line(record, 7)

    def test_validator_rejects_inconsistent_histogram(self):
        record = {
            "type": "histogram",
            "schema": TRACE_SCHEMA_VERSION,
            "name": "sizes",
            "count": 2,
            "total": 3.0,
            "min": 5.0,
            "max": 1.0,
        }
        with pytest.raises(TelemetryError, match="inconsistent histogram"):
            validate_trace_line(record)

    def test_iter_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TelemetryError, match="not valid JSON"):
            list(iter_trace(path))

    def test_check_trace_counters_flags_mismatch(self):
        problems = check_trace_counters(
            {"sweep.count": 1, "cache.hit": 3, "cache.hits": 2}
        )
        assert any("cache.hit" in problem for problem in problems)

    def test_check_trace_counters_flags_dangling_parent(self):
        spans = [
            {"id": "1-2", "parent": "1-404", "phase": "fit", "name": ""},
        ]
        problems = check_trace_counters({}, spans)
        assert any("unknown parent" in problem for problem in problems)


class TestSweepTelemetry:
    """The engine-level contract: consistent counters, identical maps."""

    def _swept(self, small_suite, **engine_kwargs):
        telemetry = Telemetry()
        engine = SweepEngine(telemetry=telemetry, **engine_kwargs)
        maps = engine.sweep(FAMILIES, small_suite)
        return telemetry, maps

    def _check(self, telemetry, tmp_path, label):
        path = telemetry.write_trace(tmp_path / f"{label}.jsonl")
        headers, spans, counters, histograms = read_trace(path)
        assert check_trace_counters(counters, spans) == []
        return spans, counters, histograms

    def test_serial_sweep_counters_consistent(self, small_suite, tmp_path):
        telemetry, _maps = self._swept(small_suite, executor="serial")
        spans, counters, histograms = self._check(
            telemetry, tmp_path, "serial"
        )
        assert counters["sweep.count"] == 1
        assert counters["cache.hit"] == counters["cache.hits"]
        assert {record["phase"] for record in spans} >= {
            "sweep",
            "block",
            "fit",
            "score",
        }
        grid = len(small_suite.anomaly_sizes) * len(small_suite.window_lengths)
        assert histograms["cell.wall"]["count"] == grid * len(FAMILIES)

    def test_thread_sweep_counters_consistent(self, small_suite, tmp_path):
        telemetry, _maps = self._swept(
            small_suite, executor="thread", max_workers=4
        )
        self._check(telemetry, tmp_path, "thread")

    def test_process_sweep_merges_worker_snapshots(
        self, small_suite, tmp_path
    ):
        telemetry, _maps = self._swept(
            small_suite, executor="process", max_workers=2
        )
        spans, counters, _ = self._check(telemetry, tmp_path, "process")
        # Worker spans rode back in snapshots: more than one pid merged.
        assert len({record["pid"] for record in spans}) > 1
        assert counters["cache.hit"] == counters["cache.hits"]

    def test_resilient_report_carries_the_metrics(
        self, small_suite, tmp_path
    ):
        telemetry = Telemetry()
        engine = SweepEngine(
            executor="thread",
            max_workers=4,
            resilience=ResiliencePolicy(),
            telemetry=telemetry,
        )
        _maps, report = engine.sweep_with_report(FAMILIES, small_suite)
        spans, counters, _ = self._check(telemetry, tmp_path, "resilient")
        assert report.telemetry is not None
        assert report.telemetry["counters"] == counters

    def test_store_counters_mirror_fit_provenance(
        self, small_suite, tmp_path
    ):
        store_dir = tmp_path / "store"
        cold = Telemetry()
        engine = SweepEngine(
            executor="serial",
            store=store_dir,
            warm_start=False,
            telemetry=cold,
        )
        engine.sweep(FAMILIES, small_suite)
        _headers, spans, cold_counters, _ = read_trace(
            cold.write_trace(tmp_path / "cold.jsonl")
        )
        assert check_trace_counters(cold_counters, spans) == []
        assert cold_counters["store.miss"] == cold_counters["fits.computed"]
        assert cold_counters["store.put"] == cold_counters["fits.computed"]
        assert cold_counters.get("store.hit", 0) == 0

        warm = Telemetry()
        rerun = SweepEngine(
            executor="serial",
            store=store_dir,
            warm_start=False,
            telemetry=warm,
        )
        rerun.sweep(FAMILIES, small_suite)
        _, spans, warm_counters, _ = read_trace(
            warm.write_trace(tmp_path / "warm.jsonl")
        )
        assert check_trace_counters(warm_counters, spans) == []
        assert warm_counters["fits.computed"] == 0
        assert warm_counters["store.hit"] == warm_counters["fits.from_store"]

    def test_disabled_telemetry_is_a_no_op_on_the_maps(self, small_suite):
        plain = SweepEngine(executor="serial").sweep(FAMILIES, small_suite)
        telemetry = Telemetry()
        traced = SweepEngine(executor="serial", telemetry=telemetry).sweep(
            FAMILIES, small_suite
        )
        for name in FAMILIES:
            _assert_maps_identical(plain[name], traced[name], small_suite)
        assert len(telemetry.tracer) > 0  # it really was collecting

    def test_summarize_renders_the_phase_table(self, small_suite, tmp_path):
        telemetry, _maps = self._swept(small_suite, executor="serial")
        path = telemetry.write_trace(tmp_path / "summary.jsonl")
        rendered = summarize_trace(path)
        assert "phase" in rendered and "sweep" in rendered
        assert "cache hit rate" in rendered
        assert "fits:" in rendered


class TestProfiling:
    def test_profiled_dumps_pstats(self, tmp_path):
        telemetry = Telemetry(profile_dir=tmp_path / "profiles")
        with telemetry.profiled():
            sum(range(1000))
        written = telemetry.dump_profiles()
        assert written and all(path.suffix == ".pstats" for path in written)

    def test_profiled_is_reentrant(self, tmp_path):
        telemetry = Telemetry(profile_dir=tmp_path / "profiles")
        with telemetry.profiled():
            with telemetry.profiled():
                pass
        assert telemetry.dump_profiles()

    def test_no_profile_dir_is_a_no_op(self):
        telemetry = Telemetry()
        with telemetry.profiled():
            pass
        assert telemetry.dump_profiles() == []

    def test_engine_profile_hook(self, small_suite, tmp_path):
        profile_dir = tmp_path / "profiles"
        telemetry = Telemetry(profile_dir=profile_dir)
        engine = SweepEngine(executor="serial", telemetry=telemetry)
        engine.sweep(("stide",), small_suite)
        assert list(profile_dir.glob("profile-*.pstats"))
