"""Tests for repro.runtime.cache — the shared window-artifact cache."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.runtime import WindowCache
from repro.sequences.windows import pack_windows, windows_array

STREAM = np.array([0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 0, 2], dtype=np.int64)
ALPHABET = 4


@pytest.fixture()
def cache() -> WindowCache:
    return WindowCache()


class TestWindowsArtifact:
    def test_matches_windows_array(self, cache):
        np.testing.assert_array_equal(
            cache.windows(STREAM, 3), windows_array(STREAM, 3)
        )

    def test_second_lookup_returns_same_object(self, cache):
        first = cache.windows(STREAM, 3)
        assert cache.windows(STREAM, 3) is first

    def test_window_lengths_do_not_collide(self, cache):
        assert cache.windows(STREAM, 2).shape[1] == 2
        assert cache.windows(STREAM, 3).shape[1] == 3

    def test_streams_do_not_collide(self, cache):
        other = np.array([3, 3, 3, 3, 3], dtype=np.int64)
        np.testing.assert_array_equal(
            cache.windows(other, 2), windows_array(other, 2)
        )
        np.testing.assert_array_equal(
            cache.windows(STREAM, 2), windows_array(STREAM, 2)
        )


class TestPackedArtifact:
    def test_matches_pack_windows(self, cache):
        expected = pack_windows(windows_array(STREAM, 3), ALPHABET)
        np.testing.assert_array_equal(
            cache.packed(STREAM, 3, ALPHABET), expected
        )

    def test_alphabets_do_not_collide(self, cache):
        four = cache.packed(STREAM, 2, 4)
        eight = cache.packed(STREAM, 2, 8)
        assert not np.array_equal(four, eight)


class TestUniqueArtifact:
    @pytest.mark.parametrize("alphabet_size", (None, ALPHABET))
    def test_matches_numpy_unique(self, cache, alphabet_size):
        rows, inverse = cache.unique(STREAM, 3, alphabet_size)
        expected_rows, expected_inverse = np.unique(
            windows_array(STREAM, 3), axis=0, return_inverse=True
        )
        np.testing.assert_array_equal(rows, expected_rows)
        np.testing.assert_array_equal(inverse, expected_inverse.reshape(-1))

    @pytest.mark.parametrize("alphabet_size", (None, ALPHABET))
    def test_scatter_reconstructs_view(self, cache, alphabet_size):
        rows, inverse = cache.unique(STREAM, 3, alphabet_size)
        np.testing.assert_array_equal(rows[inverse], windows_array(STREAM, 3))

    @pytest.mark.parametrize("alphabet_size", (None, ALPHABET))
    def test_counts_match_numpy_unique(self, cache, alphabet_size):
        rows, counts = cache.unique_counts(STREAM, 3, alphabet_size)
        expected_rows, expected_counts = np.unique(
            windows_array(STREAM, 3), axis=0, return_counts=True
        )
        np.testing.assert_array_equal(rows, expected_rows)
        np.testing.assert_array_equal(counts, expected_counts)

    def test_unpackable_window_falls_back(self, cache):
        # 40 * log2(4) = 80 bits: over the packed budget.
        long_stream = np.tile(STREAM, 8)
        rows, inverse = cache.unique(long_stream, 40, ALPHABET)
        expected_rows, expected_inverse = np.unique(
            windows_array(long_stream, 40), axis=0, return_inverse=True
        )
        np.testing.assert_array_equal(rows, expected_rows)
        np.testing.assert_array_equal(inverse, expected_inverse.reshape(-1))


class TestAccounting:
    def test_stats_count_hits_and_misses(self, cache):
        cache.windows(STREAM, 3)
        cache.windows(STREAM, 3)
        cache.windows(STREAM, 2)
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.requests == 3
        assert 0.0 < stats.hit_rate < 1.0

    def test_unused_cache_hit_rate(self, cache):
        assert cache.stats.hit_rate == 0.0

    def test_clear_drops_entries(self, cache):
        cache.windows(STREAM, 3)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_clear_keeps_lifetime_counters(self, cache):
        cache.windows(STREAM, 3)
        cache.windows(STREAM, 3)
        cache.clear()
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1

    def test_merge_counts_folds_worker_stats(self, cache):
        cache.windows(STREAM, 3)  # 1 miss
        cache.merge_counts(hits=10, misses=4)
        stats = cache.stats
        assert stats.hits == 10
        assert stats.misses == 5

    def test_merge_counts_rejects_negative_counters(self, cache):
        with pytest.raises(ValueError, match="negative"):
            cache.merge_counts(hits=-1, misses=0)
        with pytest.raises(ValueError, match="negative"):
            cache.merge_counts(hits=0, misses=-1)

    def test_evict_one_window_length(self, cache):
        cache.windows(STREAM, 2)
        cache.windows(STREAM, 3)
        assert cache.evict(STREAM, 3) == 1
        assert len(cache) == 1
        # The survivor is still served as a hit.
        cache.windows(STREAM, 2)
        assert cache.stats.hits == 1

    def test_evict_whole_stream(self, cache):
        other = np.array([3, 3, 3, 3, 3], dtype=np.int64)
        cache.windows(STREAM, 2)
        cache.packed(STREAM, 2, ALPHABET)
        cache.windows(other, 2)
        assert cache.evict(STREAM) == 2
        assert len(cache) == 1
        np.testing.assert_array_equal(
            cache.windows(other, 2), windows_array(other, 2)
        )

    def test_evict_releases_pinned_stream_reference(self, cache):
        stream = np.array([1, 2, 1, 2, 1], dtype=np.int64)
        cache.windows(stream, 2)
        assert id(stream) in cache._streams
        cache.evict(stream, 3)  # other artifacts remain: still pinned
        assert id(stream) in cache._streams
        cache.evict(stream)
        assert id(stream) not in cache._streams

    def test_evict_unknown_stream_is_a_noop(self, cache):
        cache.windows(STREAM, 2)
        unknown = np.array([9, 9, 9], dtype=np.int64)
        assert cache.evict(unknown) == 0
        assert len(cache) == 1

    def test_concurrent_requests_compute_once(self, cache):
        start = threading.Barrier(8)

        def worker() -> None:
            start.wait()
            cache.packed(STREAM, 3, ALPHABET)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.stats.misses == 1
        assert cache.stats.hits == 7


class TestReleaseStream:
    def test_release_drops_artifacts_index_and_pin(self, cache):
        cache.windows(STREAM, 2)
        cache.unique(STREAM, 3)
        assert id(STREAM) in cache._streams
        assert cache.release_stream(STREAM) == 2
        assert len(cache) == 0
        assert id(STREAM) not in cache._streams
        assert id(STREAM) not in cache._indexes

    def test_release_unknown_stream_is_a_noop(self, cache):
        unknown = np.array([9, 9, 9], dtype=np.int64)
        assert cache.release_stream(unknown) == 0

    def test_released_stream_recomputes_cleanly(self, cache):
        rows, inverse = cache.unique(STREAM, 3)
        cache.release_stream(STREAM)
        again_rows, again_inverse = cache.unique(STREAM, 3)
        np.testing.assert_array_equal(rows, again_rows)
        np.testing.assert_array_equal(inverse, again_inverse)


class TestSeededDecomposition:
    def test_seed_installs_and_serves(self, cache):
        view = windows_array(STREAM, 3)
        rows, inverse, counts = np.unique(
            view, axis=0, return_inverse=True, return_counts=True
        )
        assert cache.seed_decomposition(
            STREAM, 3, rows, inverse.reshape(-1), counts
        )
        served_rows, served_inverse = cache.unique(STREAM, 3)
        assert served_rows is rows
        np.testing.assert_array_equal(served_inverse, inverse.reshape(-1))
        assert cache.stats.hits == 1  # served from the seeded entry

    def test_seed_does_not_overwrite(self, cache):
        first_rows, _ = cache.unique(STREAM, 3)
        other = np.zeros((1, 3), dtype=np.int64)
        assert not cache.seed_decomposition(
            STREAM, 3, other, np.zeros(10, dtype=np.int64),
            np.ones(1, dtype=np.int64),
        )
        again, _ = cache.unique(STREAM, 3)
        assert again is first_rows


class TestValidatedMemo:
    def test_validation_runs_once_per_stream(self, cache):
        calls = []

        def compute():
            calls.append(1)
            return STREAM

        for _ in range(4):
            assert cache.validated(STREAM, ALPHABET, compute) is STREAM
        assert len(calls) == 1

    def test_validation_keyed_by_alphabet(self, cache):
        calls = []

        def compute():
            calls.append(1)
            return STREAM

        cache.validated(STREAM, 4, compute)
        cache.validated(STREAM, 5, compute)
        assert len(calls) == 2
