"""Tests for repro.runtime.fitindex — the incremental training index.

The tentpole contract: for ANY window length, the index's
(rows, inverse, counts) decomposition — derived incrementally, each
order from the one below — is bit-identical to a direct
``np.unique(view, axis=0, ...)``, and detector tables fitted through
it are indistinguishable from tables fitted directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.registry import create_detector
from repro.exceptions import DetectorConfigurationError, WindowError
from repro.runtime import TrainingIndex, WarmStartPolicy, WarmStartRegistry, WindowCache
from repro.runtime.fitindex import FitLedger, FitRecord
from repro.sequences.windows import windows_array


def _reference(stream: np.ndarray, window_length: int):
    view = windows_array(stream, window_length)
    rows, inverse, counts = np.unique(
        view, axis=0, return_inverse=True, return_counts=True
    )
    return rows, inverse.reshape(-1), counts


def _stream(alphabet_size: int, length: int = 600, seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed + alphabet_size)
    return rng.integers(0, alphabet_size, size=length).astype(np.int64)


class TestTrainingIndex:
    @pytest.mark.parametrize("alphabet_size", range(2, 10))
    def test_bit_identical_to_direct_unique_over_grid(self, alphabet_size):
        """The acceptance grid: AS in 2..9 x DW in 2..15, bit-identical."""
        stream = _stream(alphabet_size)
        index = TrainingIndex(stream)
        for window_length in range(2, 16):
            rows, inverse, counts = index.decomposition(window_length)
            expected_rows, expected_inverse, expected_counts = _reference(
                stream, window_length
            )
            np.testing.assert_array_equal(rows, expected_rows)
            np.testing.assert_array_equal(inverse, expected_inverse)
            np.testing.assert_array_equal(counts, expected_counts)

    def test_unpackable_corner(self):
        """AS=32, DW=13: 65 bits — past the packed-integer budget."""
        stream = _stream(32, length=400)
        index = TrainingIndex(stream)
        rows, inverse, counts = index.decomposition(13)
        expected_rows, expected_inverse, expected_counts = _reference(stream, 13)
        np.testing.assert_array_equal(rows, expected_rows)
        np.testing.assert_array_equal(inverse, expected_inverse)
        np.testing.assert_array_equal(counts, expected_counts)

    def test_descending_order_queries(self):
        """Derivation is ascending internally; query order is free."""
        stream = _stream(4)
        index = TrainingIndex(stream)
        for window_length in (9, 3, 6, 2):
            rows, inverse, counts = index.decomposition(window_length)
            expected_rows, _inverse, expected_counts = _reference(
                stream, window_length
            )
            np.testing.assert_array_equal(rows, expected_rows)
            np.testing.assert_array_equal(counts, expected_counts)

    def test_rows_are_reconstruction(self):
        stream = _stream(5)
        index = TrainingIndex(stream)
        rows, inverse, _counts = index.decomposition(4)
        np.testing.assert_array_equal(rows[inverse], windows_array(stream, 4))

    def test_counts_sum_to_window_count(self):
        stream = _stream(3)
        index = TrainingIndex(stream)
        _rows, _inverse, counts = index.decomposition(7)
        assert counts.sum() == len(stream) - 7 + 1

    def test_too_long_window_raises(self):
        stream = np.arange(5, dtype=np.int64)
        with pytest.raises(WindowError):
            TrainingIndex(stream).decomposition(6)

    def test_bad_window_length_raises(self):
        with pytest.raises(WindowError):
            TrainingIndex(_stream(3)).decomposition(0)


class TestIndexDerivedDetectorTables:
    """Index-backed fits must equal direct fits for every family."""

    FAMILIES = ("stide", "t-stide", "markov", "lane-brodley", "hamming")

    @pytest.mark.parametrize("name", FAMILIES)
    @pytest.mark.parametrize("alphabet_size", (2, 5, 9))
    def test_fit_through_index_matches_direct(self, name, alphabet_size):
        stream = _stream(alphabet_size)
        probe = windows_array(stream, 6)[:64]
        direct = create_detector(name, 6, alphabet_size)
        direct.fit(stream)
        indexed = create_detector(name, 6, alphabet_size)
        indexed.attach_cache(WindowCache())
        indexed.fit(stream)
        np.testing.assert_array_equal(
            direct.score_batch(probe), indexed.score_batch(probe)
        )

    def test_unpackable_family_corner(self):
        """Markov at AS=32, DW=13 walks the unpacked dictionary path."""
        stream = _stream(32, length=400)
        probe = windows_array(stream, 13)[:32]
        direct = create_detector("markov", 13, 32)
        direct.fit(stream)
        indexed = create_detector("markov", 13, 32)
        indexed.attach_cache(WindowCache())
        indexed.fit(stream)
        np.testing.assert_array_equal(
            direct.score_batch(probe), indexed.score_batch(probe)
        )


class TestWarmStartPolicy:
    def test_warm_epochs_fraction(self):
        policy = WarmStartPolicy(epochs_fraction=0.5)
        assert policy.warm_epochs(100) == 50
        assert policy.warm_epochs(1) == 1

    def test_invalid_fraction_rejected(self):
        with pytest.raises(DetectorConfigurationError):
            WarmStartPolicy(epochs_fraction=0.0)
        with pytest.raises(DetectorConfigurationError):
            WarmStartPolicy(epochs_fraction=1.5)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(DetectorConfigurationError):
            WarmStartPolicy(loss_tolerance=-0.1)


class TestWarmStartRegistry:
    def test_donor_prefers_lower_neighbor(self):
        registry = WarmStartRegistry()
        registry.publish("d", "f", 4, {"w": np.zeros(1)}, 0.5)
        registry.publish("d", "f", 6, {"w": np.ones(1)}, 0.7)
        held = registry.donor("d", "f", 5)
        assert held is not None
        donor_window, _state, loss = held
        assert donor_window == 4
        assert loss == 0.5

    def test_donor_falls_back_to_upper_neighbor(self):
        registry = WarmStartRegistry()
        registry.publish("d", "f", 6, {"w": np.ones(1)}, 0.7)
        held = registry.donor("d", "f", 5)
        assert held is not None
        assert held[0] == 6

    def test_no_donor_for_unknown_key(self):
        registry = WarmStartRegistry()
        registry.publish("d", "f", 4, {}, 0.5)
        assert registry.donor("other", "f", 5) is None
        assert registry.donor("d", "g", 5) is None
        assert registry.donor("d", "f", 9) is None


class TestFitLedger:
    def test_snapshot_counts_origins(self):
        ledger = FitLedger()
        ledger.record(FitRecord(origin="computed"), "a:2")
        ledger.record(FitRecord(origin="store"), "a:3")
        ledger.record(FitRecord(origin="warm", warm_donor_window=2), "a:4")
        ledger.record(
            FitRecord(origin="computed", warm_disabled="loss gate"), "a:5"
        )
        ledger.record(None, "a:6")  # factory path: no record
        stats = ledger.snapshot()
        assert stats.computed == 2
        assert stats.from_store == 1
        assert stats.warm_started == 1
        assert len(stats.warm_disabled) == 1
        assert "a:5" in stats.warm_disabled[0]
