"""Delta-fit bit-identity: streaming updates equal cold refits.

The fleet serving path folds appended training batches into the
count-based families' packed tables via ``update_batch`` instead of
refitting.  These tests are the contract: over the full AS 2..9 x
DW 2..15 grid (seeded), a chain of delta updates must leave a state —
and therefore scores — bit-identical to fitting cold on the full
accumulated stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.lane_brodley import LaneBrodleyDetector
from repro.detectors.markov import MarkovDetector
from repro.detectors.registry import create_detector
from repro.detectors.stide import StideDetector
from repro.detectors.tstide import TStideDetector
from repro.exceptions import (
    DetectorConfigurationError,
    NotFittedError,
    WindowError,
)
from repro.runtime.deltafit import fit_states_equal, verify_delta

DELTA_FAMILIES = ("stide", "t-stide", "markov")


def _apply_batches(detector, stream, batches):
    """Feed ``batches`` through ``update_batch``, returning the full stream."""
    for batch in batches:
        detector.update_batch(batch, stream[-(detector.window_length - 1) :])
        stream = np.concatenate([stream, batch])
    return stream


@pytest.mark.parametrize("family", DELTA_FAMILIES)
def test_delta_fit_matches_cold_refit_over_grid(family):
    """Seeded fuzz over AS 2..9 x DW 2..15: states and scores bit-equal."""
    rng = np.random.default_rng(20260809)
    for alphabet_size in range(2, 10):
        for window in range(2, 16):
            base_len = int(rng.integers(window, 4 * window + 20))
            base = rng.integers(0, alphabet_size, size=base_len)
            detector = create_detector(family, window, alphabet_size)
            detector.fit(base)
            assert detector.supports_delta_fit
            batches = [
                rng.integers(0, alphabet_size, size=int(rng.integers(1, 24)))
                for _ in range(int(rng.integers(1, 4)))
            ]
            full = _apply_batches(detector, base, batches)
            twin = detector.clone_unfitted().fit(full)
            assert fit_states_equal(
                detector.export_fit_state(), twin.export_fit_state()
            ), f"{family} diverged at AS={alphabet_size} DW={window}"
            assert verify_delta(detector, full)
            probe = rng.integers(0, alphabet_size, size=window + 17)
            np.testing.assert_array_equal(
                detector.score_stream(probe), twin.score_stream(probe)
            )


@pytest.mark.parametrize("family", DELTA_FAMILIES)
def test_verify_delta_flags_divergence(family):
    """A detector whose updates missed a batch must fail verification."""
    rng = np.random.default_rng(7)
    base = rng.integers(0, 6, size=60)
    detector = create_detector(family, 4, 6)
    detector.fit(base)
    extra = rng.integers(0, 6, size=20)
    detector.update_batch(extra, base[-3:])
    # Claim one more batch than was actually folded in.
    full = np.concatenate([base, extra, rng.integers(0, 6, size=15)])
    assert not verify_delta(detector, full)


def test_update_batch_argument_validation():
    rng = np.random.default_rng(3)
    base = rng.integers(0, 5, size=40)
    detector = StideDetector(5, 5).fit(base)
    with pytest.raises(WindowError):
        detector.update_batch(rng.integers(0, 5, size=8), base[-2:])
    with pytest.raises(WindowError):
        detector.update_batch(np.empty(0, dtype=np.int64), base[-4:])
    with pytest.raises(WindowError):
        detector.update_batch(np.asarray([1, 2, 9]), base[-4:])
    with pytest.raises(NotFittedError):
        StideDetector(5, 5).update_batch(base[:8], base[-4:])


def test_families_without_delta_path_refuse():
    rng = np.random.default_rng(5)
    base = rng.integers(0, 6, size=50)
    detector = LaneBrodleyDetector(4, 6).fit(base)
    assert not detector.supports_delta_fit
    with pytest.raises(DetectorConfigurationError):
        detector.update_batch(base[:8], base[-3:])


def test_unpackable_fit_refuses_delta():
    # AS=32, DW=13 needs 65 bits: the tuple fallback has no delta path.
    rng = np.random.default_rng(11)
    base = rng.integers(0, 32, size=120)
    detector = StideDetector(13, 32).fit(base)
    assert not detector.supports_delta_fit
    with pytest.raises(DetectorConfigurationError):
        detector.update_batch(rng.integers(0, 32, size=8), base[-12:])


def test_clone_unfitted_carries_hyperparameters():
    tstide = TStideDetector(4, 8, rare_threshold=0.02)
    clone = tstide.clone_unfitted()
    assert isinstance(clone, TStideDetector)
    assert clone.rare_threshold == pytest.approx(0.02)
    assert not clone.is_fitted
    markov = MarkovDetector(3, 8, rare_floor=0.01, unseen_context_response=0.5)
    twin = markov.clone_unfitted()
    assert twin.rare_floor == pytest.approx(0.01)
    assert twin._unseen_context_response == pytest.approx(0.5)


def test_import_export_fit_state_roundtrip_keeps_delta_capability():
    """A t-stide state reloaded from arrays still delta-fits (schema v3)."""
    rng = np.random.default_rng(23)
    base = rng.integers(0, 8, size=80)
    origin = TStideDetector(5, 8).fit(base)
    state = origin.export_fit_state()
    loaded = TStideDetector(5, 8)
    assert loaded.import_fit_state(state)
    assert loaded.is_fitted and loaded.supports_delta_fit
    extra = rng.integers(0, 8, size=30)
    loaded.update_batch(extra, base[-4:])
    full = np.concatenate([base, extra])
    assert verify_delta(loaded, full)


def test_fit_states_equal_edge_cases():
    a = {"x": np.asarray([1, 2, 3], dtype=np.int64)}
    assert fit_states_equal(a, {"x": np.asarray([1, 2, 3], dtype=np.int64)})
    assert not fit_states_equal(a, {"x": np.asarray([1, 2, 3], dtype=np.int32)})
    assert not fit_states_equal(a, {"y": np.asarray([1, 2, 3], dtype=np.int64)})
    assert not fit_states_equal(a, None)
    assert fit_states_equal(None, None)
