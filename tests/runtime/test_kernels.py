"""Kernel equivalence: batch scoring must match the scalar rules bit for bit.

Every detector family's ``score_batch`` runs through a vectorized
kernel (:mod:`repro.runtime.kernels`).  These tests pin each kernel to
an *independent* reference implementation — plain Python loops over
tuples and Counters, written directly from the papers' scoring rules,
sharing no code with the kernels — over randomized alphabets and the
full window range of the paper's grid, packable and not.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.detectors.base import AnomalyDetector
from repro.detectors.hamming import HammingDetector
from repro.detectors.lane_brodley import LaneBrodleyDetector
from repro.detectors.markov import MarkovDetector
from repro.detectors.mlp import MlpConfig
from repro.detectors.neural import NeuralDetector
from repro.detectors.stide import StideDetector
from repro.detectors.tstide import TStideDetector
from repro.runtime.kernels import (
    count_lookup,
    hamming_batch_distance,
    lb_batch_similarity,
    markov_batch_response,
    merge_sorted_counts,
    merge_sorted_unique,
    sorted_membership,
)

#: (alphabet size, window length) grid: the paper's DW extremes, a
#: mid-grid point, and one combination beyond the 63-bit packing
#: budget (5 bits x 13 symbols = 65 > 63) exercising the tuple paths.
GRIDS = [(8, 2), (4, 7), (6, 15), (32, 13)]

STREAM_LENGTH = 400
PROBE_COUNT = 200


def _rng(alphabet_size: int, window_length: int) -> np.random.Generator:
    return np.random.default_rng(10_000 * alphabet_size + window_length)


def _training_stream(alphabet_size: int, window_length: int) -> np.ndarray:
    rng = _rng(alphabet_size, window_length)
    # A small effective vocabulary makes repeated (hence common/rare)
    # windows likely even at DW 15.
    vocabulary = rng.integers(0, alphabet_size, size=5)
    return vocabulary[rng.integers(0, len(vocabulary), size=STREAM_LENGTH)].astype(
        np.int64
    )


def _probe_windows(
    stream: np.ndarray, alphabet_size: int, window_length: int
) -> np.ndarray:
    """Seen, unseen, and edge-case probe windows.

    Mixes training windows (seen), uniform random windows (mostly
    foreign), windows whose context is seen but whose final symbol is
    novel, and fully foreign contexts.
    """
    rng = _rng(alphabet_size, window_length)
    seen = np.stack(
        [
            stream[i : i + window_length]
            for i in rng.integers(0, len(stream) - window_length + 1, size=60)
        ]
    )
    random_rows = rng.integers(
        0, alphabet_size, size=(PROBE_COUNT - len(seen) - 20, window_length)
    )
    # Seen context, novel last symbol.
    context_seen = seen[:10].copy()
    context_seen[:, -1] = (context_seen[:, -1] + 1) % alphabet_size
    # Foreign context (constant runs of the highest symbol are absent
    # from the 5-symbol training vocabulary with high probability).
    foreign = np.full((10, window_length), alphabet_size - 1, dtype=np.int64)
    foreign[:, 0] = np.arange(10) % alphabet_size
    return np.concatenate([seen, random_rows, context_seen, foreign]).astype(np.int64)


def _window_tuples(stream: np.ndarray, length: int) -> list[tuple[int, ...]]:
    return [
        tuple(int(c) for c in stream[i : i + length])
        for i in range(len(stream) - length + 1)
    ]


@pytest.fixture(params=GRIDS, ids=lambda grid: f"AS{grid[0]}-DW{grid[1]}")
def grid(request):
    alphabet_size, window_length = request.param
    stream = _training_stream(alphabet_size, window_length)
    probes = _probe_windows(stream, alphabet_size, window_length)
    return alphabet_size, window_length, stream, probes


class TestStideEquivalence:
    def test_matches_tuple_set_reference(self, grid):
        alphabet_size, window_length, stream, probes = grid
        database = set(_window_tuples(stream, window_length))
        expected = np.array(
            [0.0 if tuple(row) in database else 1.0 for row in probes.tolist()]
        )
        detector = StideDetector(window_length, alphabet_size).fit(stream)
        np.testing.assert_array_equal(detector.score_batch(probes), expected)


class TestTStideEquivalence:
    @pytest.mark.parametrize("rare_threshold", [0.005, 0.1])
    def test_matches_counter_reference(self, grid, rare_threshold):
        alphabet_size, window_length, stream, probes = grid
        counts = Counter(_window_tuples(stream, window_length))
        bound = rare_threshold * sum(counts.values())
        common = {key for key, n in counts.items() if n >= bound}
        expected = np.array(
            [0.0 if tuple(row) in common else 1.0 for row in probes.tolist()]
        )
        detector = TStideDetector(
            window_length, alphabet_size, rare_threshold=rare_threshold
        ).fit(stream)
        np.testing.assert_array_equal(detector.score_batch(probes), expected)


def _markov_reference(
    stream: np.ndarray,
    probes: np.ndarray,
    window_length: int,
    rare_floor: float,
    unseen: float,
) -> np.ndarray:
    """The papers' conditional-probability rule, in pure Python floats."""
    joint = Counter(_window_tuples(stream, window_length))
    context = Counter(_window_tuples(stream, window_length - 1))
    total = sum(joint.values())
    out = []
    for row in probes.tolist():
        key = tuple(row)
        j = joint.get(key, 0)
        c = context.get(key[:-1], 0)
        if j == 0 or (rare_floor > 0.0 and j < rare_floor * total):
            response = unseen if (j == 0 and c == 0) else 1.0
        elif c == 0:
            response = 1.0
        else:
            response = 1.0 - j / c
        out.append(min(1.0, max(0.0, response)))
    return np.array(out)


class TestMarkovEquivalence:
    @pytest.mark.parametrize(
        ("rare_floor", "unseen"),
        [(0.005, 1.0), (0.0, 1.0), (0.3, 0.25), (0.005, 0.0)],
    )
    def test_matches_counter_reference(self, grid, rare_floor, unseen):
        alphabet_size, window_length, stream, probes = grid
        expected = _markov_reference(
            stream, probes, window_length, rare_floor, unseen
        )
        detector = MarkovDetector(
            window_length,
            alphabet_size,
            rare_floor=rare_floor,
            unseen_context_response=unseen,
        ).fit(stream)
        np.testing.assert_array_equal(detector.score_batch(probes), expected)

    def test_matches_scalar_window_response(self, grid):
        """The batch path equals the detector's own scalar rule."""
        alphabet_size, window_length, stream, probes = grid
        detector = MarkovDetector(window_length, alphabet_size).fit(stream)
        scalar = np.array(
            [
                detector._window_response(tuple(int(c) for c in row))
                for row in probes
            ]
        )
        np.testing.assert_array_equal(detector.score_batch(probes), scalar)


class TestLaneBrodleyEquivalence:
    def test_matches_run_weight_reference(self, grid):
        alphabet_size, window_length, stream, probes = grid
        database = sorted(set(_window_tuples(stream, window_length)))

        def similarity(x, y):
            run = total = 0
            for a, b in zip(x, y):
                run = run + 1 if a == b else 0
                total += run
            return total

        maximum = window_length * (window_length + 1) // 2
        expected = np.array(
            [
                1.0 - max(similarity(row, entry) for entry in database) / maximum
                for row in probes.tolist()
            ]
        )
        detector = LaneBrodleyDetector(window_length, alphabet_size).fit(stream)
        np.testing.assert_array_equal(detector.score_batch(probes), expected)


class TestHammingEquivalence:
    def test_matches_mismatch_reference(self, grid):
        alphabet_size, window_length, stream, probes = grid
        database = sorted(set(_window_tuples(stream, window_length)))
        expected = np.array(
            [
                min(
                    sum(a != b for a, b in zip(row, entry))
                    for entry in database
                )
                / window_length
                for row in probes.tolist()
            ]
        )
        detector = HammingDetector(window_length, alphabet_size).fit(stream)
        np.testing.assert_array_equal(detector.score_batch(probes), expected)


class TestNeuralEquivalence:
    def test_batch_matches_per_row_scoring(self):
        alphabet_size, window_length = 6, 4
        stream = _training_stream(alphabet_size, window_length)
        probes = _probe_windows(stream, alphabet_size, window_length)
        detector = NeuralDetector(
            window_length,
            alphabet_size,
            config=MlpConfig(hidden_units=8, epochs=30),
        ).fit(stream)
        batched = detector.score_batch(probes)
        # The base class's default: one minimal stream per row.
        per_row = AnomalyDetector._score_windows(detector, probes)
        np.testing.assert_allclose(batched, per_row, rtol=0, atol=1e-12)


class TestKernelPrimitives:
    def test_sorted_membership_empty_database(self):
        probes = np.array([1, 2, 3], dtype=np.int64)
        result = sorted_membership(probes, np.array([], dtype=np.int64))
        np.testing.assert_array_equal(result, np.zeros(3, dtype=bool))

    def test_sorted_membership_hits_and_misses(self):
        database = np.array([2, 5, 9], dtype=np.int64)
        probes = np.array([0, 2, 4, 5, 9, 10], dtype=np.int64)
        np.testing.assert_array_equal(
            sorted_membership(probes, database),
            np.array([False, True, False, True, True, False]),
        )

    def test_count_lookup_missing_probes_are_zero(self):
        codes = np.array([3, 7], dtype=np.int64)
        counts = np.array([4, 9], dtype=np.int64)
        probes = np.array([1, 3, 5, 7, 11], dtype=np.int64)
        np.testing.assert_array_equal(
            count_lookup(probes, codes, counts),
            np.array([0, 4, 0, 9, 0], dtype=np.int64),
        )

    def test_markov_batch_response_stays_clipped(self):
        joint = np.array([0, 5, 5, 1], dtype=np.int64)
        context = np.array([0, 5, 0, 10], dtype=np.int64)
        responses = markov_batch_response(joint, context, 0.0, 0.25)
        assert responses.min() >= 0.0 and responses.max() <= 1.0
        # unseen context & unseen joint -> configured response
        assert responses[0] == 0.25
        # certain transition -> 0
        assert responses[1] == 0.0
        # counted joint under an uncounted context -> maximal
        assert responses[2] == 1.0

    def test_lb_chunking_is_invisible(self):
        rng = np.random.default_rng(3)
        windows = rng.integers(0, 4, size=(50, 6)).astype(np.int64)
        database = rng.integers(0, 4, size=(30, 6)).astype(np.int64)
        one_chunk = lb_batch_similarity(windows, database, 10**9)
        many_chunks = lb_batch_similarity(windows, database, 6)
        np.testing.assert_array_equal(one_chunk, many_chunks)

    def test_hamming_chunking_is_invisible(self):
        rng = np.random.default_rng(4)
        windows = rng.integers(0, 4, size=(50, 6)).astype(np.int64)
        database = rng.integers(0, 4, size=(30, 6)).astype(np.int64)
        one_chunk = hamming_batch_distance(windows, database, 10**9)
        many_chunks = hamming_batch_distance(windows, database, 6)
        np.testing.assert_array_equal(one_chunk, many_chunks)

    @pytest.mark.parametrize("seed", range(5))
    def test_merge_sorted_unique_matches_union1d(self, seed):
        rng = np.random.default_rng(seed)
        table = np.unique(rng.integers(0, 200, size=60))
        delta = np.unique(rng.integers(0, 200, size=20))
        merged = merge_sorted_unique(table, delta)
        np.testing.assert_array_equal(merged, np.union1d(table, delta))

    def test_merge_sorted_unique_saturated_delta_is_allocation_free(self):
        table = np.array([2, 5, 9], dtype=np.int64)
        merged = merge_sorted_unique(table, np.array([5, 9], dtype=np.int64))
        assert merged is table  # the same array object: no allocation

    def test_merge_sorted_unique_empty_table(self):
        delta = np.array([1, 3], dtype=np.int64)
        np.testing.assert_array_equal(
            merge_sorted_unique(np.array([], dtype=np.int64), delta), delta
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_merge_sorted_counts_matches_unique_scatter_add(self, seed):
        rng = np.random.default_rng(100 + seed)
        values = np.unique(rng.integers(0, 150, size=50))
        counts = rng.integers(1, 9, size=len(values)).astype(np.int64)
        delta_values = np.unique(rng.integers(0, 150, size=25))
        delta_counts = rng.integers(1, 9, size=len(delta_values)).astype(
            np.int64
        )
        merged_values, merged_counts = merge_sorted_counts(
            values, counts, delta_values, delta_counts
        )
        # The multi-stream reference idiom: unique over the concat
        # plus a scatter-add.
        ref_values, inverse = np.unique(
            np.concatenate([values, delta_values]), return_inverse=True
        )
        ref_counts = np.zeros(len(ref_values), dtype=np.int64)
        np.add.at(
            ref_counts, inverse, np.concatenate([counts, delta_counts])
        )
        np.testing.assert_array_equal(merged_values, ref_values)
        np.testing.assert_array_equal(merged_counts, ref_counts)

    def test_merge_sorted_counts_saturated_delta_keeps_values_array(self):
        values = np.array([1, 4, 8], dtype=np.int64)
        counts = np.array([2, 2, 2], dtype=np.int64)
        merged_values, merged_counts = merge_sorted_counts(
            values,
            counts,
            np.array([4], dtype=np.int64),
            np.array([3], dtype=np.int64),
        )
        assert merged_values is values  # no new values: same array object
        np.testing.assert_array_equal(merged_counts, [2, 5, 2])
        np.testing.assert_array_equal(counts, [2, 2, 2])  # input untouched

    def test_merge_sorted_counts_empty_table(self):
        delta_values = np.array([3, 7], dtype=np.int64)
        delta_counts = np.array([1, 2], dtype=np.int64)
        merged_values, merged_counts = merge_sorted_counts(
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            delta_values,
            delta_counts,
        )
        np.testing.assert_array_equal(merged_values, delta_values)
        np.testing.assert_array_equal(merged_counts, delta_counts)
