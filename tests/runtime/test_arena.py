"""Tests for repro.runtime.arena — the zero-copy suite transport.

Covers the publish/attach round trip, refcounted release, the
``SharedSuite`` wire format and its per-process restore memo, the
cache/arena eviction coupling, and — most importantly — that no
``/dev/shm`` segment survives a sweep, normal or crashed.
"""

from __future__ import annotations

import glob
import pickle

import numpy as np
import pytest

from repro.exceptions import EvaluationError
from repro.runtime import SweepEngine, WindowArena, share_suite
from repro.runtime.arena import (
    SEGMENT_PREFIX,
    ArrayDescriptor,
    attach_array,
    detach_all,
)
from repro.runtime.cache import WindowCache

pytestmark = pytest.mark.skipif(
    not WindowArena.available(), reason="shared memory unavailable"
)


def _segment_paths() -> list[str]:
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}-*")


@pytest.fixture()
def arena():
    arena = WindowArena()
    yield arena
    detach_all()
    arena.close()


class TestPublishAttach:
    def test_round_trip_preserves_values(self, arena):
        array = np.arange(240, dtype=np.int64).reshape(40, 6)
        descriptor = arena.publish(array)
        # The descriptor alone crosses the process boundary.
        descriptor = pickle.loads(pickle.dumps(descriptor))
        view = attach_array(descriptor)
        np.testing.assert_array_equal(view, array)
        assert not view.flags.writeable

    def test_descriptor_is_tiny(self, arena):
        array = np.zeros(100_000, dtype=np.int64)
        descriptor = arena.publish(array)
        assert len(pickle.dumps(descriptor)) < 200
        assert descriptor.nbytes == array.nbytes

    def test_attach_is_memoized_per_name(self, arena):
        array = np.arange(12, dtype=np.int64)
        descriptor = arena.publish(array)
        assert attach_array(descriptor) is attach_array(descriptor)

    def test_publish_after_close_raises(self, arena):
        arena.close()
        with pytest.raises(EvaluationError):
            arena.publish(np.zeros(3, dtype=np.int64))

    def test_descriptor_nbytes_matches_dtype(self):
        descriptor = ArrayDescriptor(name="x", shape=(3, 5), dtype="int64")
        assert descriptor.nbytes == 3 * 5 * 8


class TestRefcounting:
    def test_republish_returns_same_descriptor(self, arena):
        array = np.arange(8, dtype=np.int64)
        first = arena.publish(array)
        assert arena.publish(array) is first
        assert len(arena) == 1

    def test_release_unlinks_at_zero(self, arena):
        array = np.arange(8, dtype=np.int64)
        descriptor = arena.publish(array)
        arena.publish(array)
        path = f"/dev/shm/{descriptor.name}"
        assert arena.release(array) is False  # one reference remains
        assert glob.glob(path)
        assert arena.release(array) is True
        assert not glob.glob(path)

    def test_release_of_unknown_array_is_noop(self, arena):
        assert arena.release(np.zeros(3, dtype=np.int64)) is False

    def test_close_unlinks_everything(self):
        arena = WindowArena()
        names = [
            arena.publish(np.full(16, i, dtype=np.int64)).name for i in range(3)
        ]
        arena.close()
        assert arena.closed
        for name in names:
            assert not glob.glob(f"/dev/shm/{name}")
        arena.close()  # idempotent


class TestSharedSuite:
    def test_restore_rebuilds_identical_suite(self, arena, suite):
        transport = pickle.loads(pickle.dumps(share_suite(arena, suite)))
        restored = transport.restore()
        np.testing.assert_array_equal(
            restored.training.stream, suite.training.stream
        )
        assert restored.anomaly_sizes == suite.anomaly_sizes
        for anomaly_size in suite.anomaly_sizes:
            original = suite.stream(anomaly_size)
            rebuilt = restored.stream(anomaly_size)
            np.testing.assert_array_equal(rebuilt.stream, original.stream)
            assert rebuilt.anomaly == original.anomaly
            assert rebuilt.position == original.position

    def test_restore_is_memoized_per_process(self, arena, suite):
        transport = share_suite(arena, suite)
        again = pickle.loads(pickle.dumps(transport))
        assert transport.restore() is again.restore()

    def test_restore_credits_attaches_as_hits(self, arena, suite):
        transport = share_suite(arena, suite)
        cache = WindowCache()
        transport.restore(cache=cache)
        stats = cache.stats
        assert stats.hits == len(transport.descriptors())
        assert stats.misses == 0

    def test_payload_is_an_order_of_magnitude_lighter(self, arena, suite):
        transport = share_suite(arena, suite)
        assert len(pickle.dumps(suite)) >= 10 * len(pickle.dumps(transport))


class TestSharedTables:
    """Derived training tables ride the arena and seed worker caches."""

    WINDOWS = (2, 5, 9)

    def test_tables_published_per_window_length(self, arena, suite):
        transport = share_suite(
            arena, suite, cache=WindowCache(), window_lengths=self.WINDOWS
        )
        assert tuple(t.window_length for t in transport.training_tables) == (
            tuple(sorted(self.WINDOWS))
        )

    def test_restore_seeds_bit_identical_decompositions(self, arena, suite):
        transport = pickle.loads(
            pickle.dumps(
                share_suite(
                    arena, suite, cache=WindowCache(), window_lengths=self.WINDOWS
                )
            )
        )
        worker_cache = WindowCache()
        restored = transport.restore(cache=worker_cache)
        stream = restored.training.stream
        for window_length in self.WINDOWS:
            view = np.lib.stride_tricks.sliding_window_view(
                stream, window_length
            )
            expected_rows, expected_inverse, expected_counts = np.unique(
                view, axis=0, return_inverse=True, return_counts=True
            )
            rows, inverse = worker_cache.unique(stream, window_length)
            _rows, counts = worker_cache.unique_counts(stream, window_length)
            np.testing.assert_array_equal(rows, expected_rows)
            np.testing.assert_array_equal(
                inverse, expected_inverse.reshape(-1)
            )
            np.testing.assert_array_equal(counts, expected_counts)
        # Every query above was served from the seeded tables — the
        # worker never rebuilt an index over the training stream.
        assert worker_cache.stats.misses == 0

    def test_share_without_cache_publishes_no_tables(self, arena, suite):
        transport = share_suite(arena, suite, window_lengths=self.WINDOWS)
        assert transport.training_tables == ()


class TestCacheEvictionCoupling:
    def test_evict_releases_bound_segment(self, arena):
        stream = np.arange(64, dtype=np.int64) % 4
        descriptor = arena.publish(stream)
        cache = WindowCache()
        cache.bind_arena(arena)
        cache.windows(stream, 3)
        path = f"/dev/shm/{descriptor.name}"
        assert glob.glob(path)
        assert cache.evict(stream) == 1
        assert not glob.glob(path)

    def test_evict_without_arena_is_unchanged(self):
        stream = np.arange(64, dtype=np.int64) % 4
        cache = WindowCache()
        cache.windows(stream, 3)
        assert cache.evict(stream) == 1

    def test_unbind_decouples(self, arena):
        stream = np.arange(64, dtype=np.int64) % 4
        descriptor = arena.publish(stream)
        cache = WindowCache()
        cache.bind_arena(arena)
        cache.unbind_arena(arena)
        cache.windows(stream, 3)
        cache.evict(stream)
        assert glob.glob(f"/dev/shm/{descriptor.name}")

    def test_partial_evict_keeps_segment(self, arena):
        stream = np.arange(64, dtype=np.int64) % 4
        descriptor = arena.publish(stream)
        cache = WindowCache()
        cache.bind_arena(arena)
        cache.windows(stream, 3)
        cache.windows(stream, 4)
        cache.evict(stream, window_length=3)
        # An artifact of the stream survives, so the segment must too.
        assert glob.glob(f"/dev/shm/{descriptor.name}")


class TestNoLeaks:
    def test_process_sweep_leaves_no_segments(self, suite):
        engine = SweepEngine(max_workers=2, executor="process")
        engine.sweep(("stide",), suite)
        assert _segment_paths() == []

    def test_aborted_resilient_sweep_leaves_no_segments(self, suite):
        from repro.exceptions import SweepAbortedError
        from repro.runtime import FaultSchedule, ResiliencePolicy, RetryPolicy

        policy = ResiliencePolicy(
            retry=RetryPolicy(retries=0),
            fault_schedule=FaultSchedule(rate=1.0, kinds=("fatal",)),
        )
        engine = SweepEngine(
            max_workers=2, executor="process", resilience=policy
        )
        with pytest.raises(SweepAbortedError):
            engine.sweep_with_report(("stide",), suite)
        assert _segment_paths() == []


@pytest.mark.faults
class TestCrashCleanup:
    def test_crashed_workers_leave_no_segments(self, suite):
        """Workers hard-killed mid-task must not strand segments."""
        from repro.runtime import FaultSchedule, ResiliencePolicy, RetryPolicy

        policy = ResiliencePolicy(
            retry=RetryPolicy(retries=3, backoff=0.01, jitter=0.0),
            fault_schedule=FaultSchedule(rate=0.4, seed=11, kinds=("crash",)),
        )
        engine = SweepEngine(
            max_workers=2, executor="process", resilience=policy
        )
        engine.sweep_with_report(("stide",), suite)
        assert _segment_paths() == []
