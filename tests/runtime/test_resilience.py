"""Tests for repro.runtime.resilience — retries, timeouts, checkpoints."""

from __future__ import annotations

import pytest

from repro.evaluation.experiment import run_paper_experiment
from repro.evaluation.performance_map import CellResult, build_performance_map
from repro.evaluation.robustness import replicate_shapes, stide_shape
from repro.evaluation.scoring import DetectionOutcome, ResponseClass
from repro.exceptions import (
    CheckpointError,
    DetectorConfigurationError,
    EvaluationError,
    SweepAbortedError,
    TaskTimeoutError,
    TransientTaskError,
)
from repro.io import checkpoint_append, checkpoint_load
from repro.runtime import ResiliencePolicy, RetryPolicy, SweepEngine
from repro.runtime.resilience import ResilientRunner, SweepTask


def _assert_maps_identical(expected, actual, suite) -> None:
    assert expected.detector_name == actual.detector_name
    for anomaly_size in suite.anomaly_sizes:
        for window_length in suite.window_lengths:
            assert expected.cell(anomaly_size, window_length) == actual.cell(
                anomaly_size, window_length
            )


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(backoff=0.1, jitter=0.5, seed=42)
        assert policy.delay("stide:4", 1) == policy.delay("stide:4", 1)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff=0.1, backoff_factor=2.0, max_backoff=0.3, jitter=0.0
        )
        assert policy.delay("k", 1) == pytest.approx(0.1)
        assert policy.delay("k", 2) == pytest.approx(0.2)
        assert policy.delay("k", 3) == pytest.approx(0.3)  # capped
        assert policy.delay("k", 9) == pytest.approx(0.3)

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(backoff=1.0, backoff_factor=1.0, jitter=0.25)
        for attempt in range(1, 20):
            delay = policy.delay("key", attempt)
            assert 1.0 <= delay <= 1.25

    def test_keys_jitter_independently(self):
        policy = RetryPolicy(backoff=1.0, jitter=1.0, seed=0)
        assert policy.delay("a:1", 1) != policy.delay("b:1", 1)

    @pytest.mark.parametrize(
        "kwargs",
        (
            {"retries": -1},
            {"backoff": -0.1},
            {"backoff_factor": 0.5},
            {"jitter": -0.1},
        ),
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(DetectorConfigurationError):
            RetryPolicy(**kwargs)

    def test_invalid_timeout_rejected(self):
        with pytest.raises(DetectorConfigurationError, match="task_timeout"):
            ResiliencePolicy(task_timeout=0.0)


class TestFromArgs:
    """The shared ``--retries``/``--task-timeout`` CLI semantics."""

    class _Args:
        def __init__(self, retries=None, task_timeout=None):
            self.retries = retries
            self.task_timeout = task_timeout

    def test_no_flags_means_no_policy(self):
        assert ResiliencePolicy.from_args(self._Args()) is None
        assert ResiliencePolicy.from_args(object()) is None

    def test_retries_alone(self):
        policy = ResiliencePolicy.from_args(self._Args(retries=5))
        assert policy is not None
        assert policy.retry.retries == 5
        assert policy.task_timeout is None

    def test_timeout_alone_applies_default_retries(self):
        policy = ResiliencePolicy.from_args(self._Args(task_timeout=1.5))
        assert policy is not None
        assert policy.task_timeout == 1.5
        assert policy.retry.retries == 2

    def test_default_retries_is_adjustable(self):
        policy = ResiliencePolicy.from_args(
            self._Args(task_timeout=1.5), default_retries=1
        )
        assert policy is not None
        assert policy.retry.retries == 1

    def test_both_flags(self):
        policy = ResiliencePolicy.from_args(
            self._Args(retries=0, task_timeout=3.0)
        )
        assert policy is not None
        assert policy.retry.retries == 0
        assert policy.task_timeout == 3.0


def _task(key, fn, validate=None):
    name, _, window = key.partition(":")
    return SweepTask(
        key=key,
        name=name,
        window_length=int(window),
        run=fn,
        validate=validate,
    )


def _fast_policy(**kwargs) -> ResiliencePolicy:
    kwargs.setdefault("retry", RetryPolicy(retries=2, backoff=0.001))
    return ResiliencePolicy(**kwargs)


class TestResilientRunner:
    @pytest.mark.parametrize("backend", ("serial", "thread"))
    def test_transient_failures_are_retried(self, backend):
        attempts_seen = []

        def flaky(attempt: int):
            attempts_seen.append(attempt)
            if attempt < 3:
                raise TransientTaskError("boom")
            return ("ok", None)

        runner = ResilientRunner(_fast_policy(), backend, max_workers=2)
        results = {}
        runner.run(
            [_task("stide:4", flaky)],
            lambda task, result: results.update({task.key: result}),
        )
        assert results["stide:4"] == ("ok", None)
        assert attempts_seen == [1, 2, 3]
        (report,) = runner.task_reports()
        assert report.status == "completed"
        assert report.attempts == 3
        assert report.retried
        assert len(report.errors) == 2

    @pytest.mark.parametrize("backend", ("serial", "thread"))
    def test_retry_budget_exhaustion_aborts(self, backend):
        def hopeless(attempt: int):
            raise TransientTaskError("always")

        runner = ResilientRunner(
            _fast_policy(retry=RetryPolicy(retries=1, backoff=0.001)),
            backend,
            max_workers=2,
        )
        with pytest.raises(SweepAbortedError, match="retry budget"):
            runner.run([_task("stide:4", hopeless)], lambda *_: None)
        (report,) = runner.task_reports()
        assert report.status == "failed"
        assert report.attempts == 2

    @pytest.mark.parametrize("backend", ("serial", "thread"))
    def test_fatal_errors_abort_immediately(self, backend):
        def fatal(attempt: int):
            raise EvaluationError("bad inputs")

        runner = ResilientRunner(_fast_policy(), backend, max_workers=2)
        with pytest.raises(SweepAbortedError, match="failed fatally"):
            runner.run([_task("stide:4", fatal)], lambda *_: None)

    @pytest.mark.parametrize("backend", ("serial", "thread"))
    def test_timeout_is_retried_as_transient(self, backend):
        import time as _time

        def slow_once(attempt: int):
            if attempt == 1:
                _time.sleep(0.4)
            return ("ok", None)

        runner = ResilientRunner(
            _fast_policy(task_timeout=0.1), backend, max_workers=2
        )
        results = {}
        runner.run(
            [_task("stide:4", slow_once)],
            lambda task, result: results.update({task.key: result}),
        )
        assert results["stide:4"] == ("ok", None)
        (report,) = runner.task_reports()
        assert report.attempts == 2
        assert any("wall-clock" in error for error in report.errors)

    def test_timeout_error_is_transient(self):
        assert issubclass(TaskTimeoutError, TransientTaskError)

    @pytest.mark.parametrize("backend", ("serial", "thread"))
    def test_validation_failures_are_retried(self, backend):
        def task(attempt: int):
            return (attempt, None)

        def validate(result):
            if result[0] < 2:
                raise TransientTaskError("corrupt")

        runner = ResilientRunner(_fast_policy(), backend, max_workers=2)
        results = {}
        runner.run(
            [_task("stide:4", task, validate)],
            lambda t, result: results.update({t.key: result}),
        )
        assert results["stide:4"] == (2, None)

    def test_completed_tasks_survive_a_later_abort(self):
        def good(attempt: int):
            return ("done", None)

        def bad(attempt: int):
            raise EvaluationError("fatal")

        runner = ResilientRunner(_fast_policy(), "serial", max_workers=1)
        delivered = []
        with pytest.raises(SweepAbortedError):
            runner.run(
                [_task("stide:2", good), _task("stide:3", bad)],
                lambda task, _result: delivered.append(task.key),
            )
        assert delivered == ["stide:2"]
        statuses = {r.key: r.status for r in runner.task_reports()}
        assert statuses == {"stide:2": "completed", "stide:3": "failed"}


def _outcome(value: float) -> DetectionOutcome:
    return DetectionOutcome(
        response_class=ResponseClass.WEAK,
        max_in_span=value,
        max_outside_span=value / 3.0,
        span_start=7,
        span_stop=19,
        spurious_alarms=1,
    )


class TestCheckpointIO:
    def test_round_trip_is_bit_identical(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        # 0.1 + 0.2 exercises full float precision through JSON.
        original = CellResult(
            anomaly_size=3, window_length=5, outcome=_outcome(0.1 + 0.2)
        )
        checkpoint_append(path, "stide", original)
        loaded = checkpoint_load(path)
        assert loaded["stide"][(3, 5)] == original

    def test_append_accumulates_and_duplicates_last_write_wins(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        first = CellResult(anomaly_size=2, window_length=4, outcome=_outcome(0.5))
        second = CellResult(anomaly_size=2, window_length=4, outcome=_outcome(0.75))
        checkpoint_append(path, "markov", first)
        checkpoint_append(path, "markov", second)
        loaded = checkpoint_load(path)
        assert loaded["markov"][(2, 4)] == second

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            checkpoint_load(tmp_path / "absent.jsonl")

    def test_torn_tail_is_tolerated_even_in_strict_mode(self, tmp_path):
        # A SIGKILL mid-append can only truncate the LAST line; that
        # signature is recovered from (skip + recompute), never raised.
        path = tmp_path / "cells.jsonl"
        checkpoint_append(
            path,
            "stide",
            CellResult(anomaly_size=2, window_length=4, outcome=_outcome(0.5)),
        )
        with path.open("a") as handle:
            handle.write('{"detector": "stide", "anomaly_si')  # truncated
        recovered = checkpoint_load(path)
        assert (2, 4) in recovered["stide"]
        assert len(recovered["stide"]) == 1

    def test_mid_file_damage_still_raises_in_strict_mode(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        checkpoint_append(
            path,
            "stide",
            CellResult(anomaly_size=2, window_length=4, outcome=_outcome(0.5)),
        )
        lines = path.read_text().splitlines()
        lines.insert(0, '{"detector": "stide", "anomaly_si')  # NOT the tail
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError):
            checkpoint_load(path)
        recovered = checkpoint_load(path, strict=False)
        assert (2, 4) in recovered["stide"]


class TestResilientSweep:
    @pytest.fixture(scope="class")
    def serial_map(self, suite):
        return build_performance_map("stide", suite)

    def test_clean_run_report(self, suite, serial_map):
        engine = SweepEngine(
            max_workers=2, executor="thread", resilience=ResiliencePolicy()
        )
        maps, report = engine.sweep_with_report(["stide"], suite)
        _assert_maps_identical(serial_map, maps["stide"], suite)
        assert report.requested_backend == "thread"
        assert report.final_backend == "thread"
        assert report.degradations == ()
        assert report.completed == len(suite.window_lengths)
        assert report.failed == 0
        assert report.total_retries == 0
        assert report.cells_completed == suite.case_count()
        assert report.cells_resumed == 0
        assert "resilient sweep" in report.summary()

    def test_sweep_routes_through_resilient_path(self, suite, serial_map):
        engine = SweepEngine(executor="serial", resilience=ResiliencePolicy())
        maps = engine.sweep(["stide"], suite)
        _assert_maps_identical(serial_map, maps["stide"], suite)

    def test_checkpoint_streams_every_cell(self, suite, tmp_path):
        path = tmp_path / "sweep.jsonl"
        engine = SweepEngine(executor="serial")
        engine.sweep(["stide"], suite, checkpoint=path)
        loaded = checkpoint_load(path)
        assert len(loaded["stide"]) == suite.case_count()

    def test_resume_skips_checkpointed_blocks(self, suite, serial_map, tmp_path):
        path = tmp_path / "sweep.jsonl"
        engine = SweepEngine(executor="serial")
        engine.sweep(["stide"], suite, checkpoint=path)
        # Simulate a mid-run kill: keep only the first 6 blocks' cells.
        kept = 6 * len(suite.anomaly_sizes)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:kept]))
        maps, report = SweepEngine(executor="serial").sweep_with_report(
            ["stide"], suite, checkpoint=path, resume_from=path
        )
        _assert_maps_identical(serial_map, maps["stide"], suite)
        assert report.resumed == 6
        assert report.cells_resumed == kept
        assert report.completed == len(suite.window_lengths) - 6
        assert report.resumed_fraction == pytest.approx(
            kept / suite.case_count()
        )

    def test_partial_block_is_recomputed_in_full(self, suite, serial_map, tmp_path):
        path = tmp_path / "sweep.jsonl"
        SweepEngine(executor="serial").sweep(["stide"], suite, checkpoint=path)
        # Keep one full block plus half of the next one.
        block = len(suite.anomaly_sizes)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[: block + block // 2]))
        maps, report = SweepEngine(executor="serial").sweep_with_report(
            ["stide"], suite, resume_from=path
        )
        _assert_maps_identical(serial_map, maps["stide"], suite)
        assert report.resumed == 1
        assert report.cells_resumed == block

    def test_resume_tolerates_a_kill_truncated_final_line(
        self, suite, serial_map, tmp_path
    ):
        path = tmp_path / "sweep.jsonl"
        SweepEngine(executor="serial").sweep(["stide"], suite, checkpoint=path)
        # A kill mid-write leaves the last line torn; resume must
        # recompute that block, not abort.
        torn = path.read_text()[: len(path.read_text()) // 2].rstrip("\n")[:-30]
        path.write_text(torn)
        maps, report = SweepEngine(executor="serial").sweep_with_report(
            ["stide"], suite, resume_from=path
        )
        _assert_maps_identical(serial_map, maps["stide"], suite)
        assert report.resumed > 0

    def test_serial_reference_loop_checkpoint_and_resume(
        self, suite, serial_map, tmp_path
    ):
        path = tmp_path / "serial.jsonl"
        build_performance_map("stide", suite, checkpoint=path)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[: len(lines) // 2]))
        resumed = build_performance_map("stide", suite, resume_from=path)
        _assert_maps_identical(serial_map, resumed, suite)

    def test_abort_attaches_partial_report(self, suite, tmp_path):
        from repro.runtime import FaultSchedule

        path = tmp_path / "aborted.jsonl"
        policy = ResiliencePolicy(
            retry=RetryPolicy(retries=0),
            fault_schedule=FaultSchedule(rate=0.1, seed=2, kinds=("fatal",)),
        )
        engine = SweepEngine(executor="serial", resilience=policy)
        with pytest.raises(SweepAbortedError) as excinfo:
            engine.sweep_with_report(["stide"], suite, checkpoint=path)
        report = excinfo.value.report
        assert report is not None
        assert report.failed == 1
        # Every completed block reached the checkpoint before the abort.
        checkpointed = sum(len(v) for v in checkpoint_load(path).values())
        assert checkpointed == report.cells_completed

    def test_run_paper_experiment_surfaces_run_report(self, suite):
        engine = SweepEngine(executor="serial", resilience=ResiliencePolicy())
        result = run_paper_experiment(
            suite=suite, detectors=("stide",), engine=engine
        )
        assert result.run_report is not None
        assert result.run_report.completed == len(suite.window_lengths)


class TestFailFastValidation:
    def test_process_executor_rejects_factories_before_any_work(self, suite):
        calls = []

        def factory(window_length: int):
            calls.append(window_length)
            raise AssertionError("factory must not run")

        engine = SweepEngine(executor="process", max_workers=2)
        with pytest.raises(EvaluationError, match="registered detector names"):
            engine.sweep([factory], suite)
        assert calls == []  # fail fast: the factory was never invoked
        assert len(engine.window_cache) == 0  # and nothing was packed

    def test_constructor_validates_before_touching_streams(self):
        with pytest.raises(EvaluationError, match="max_workers"):
            SweepEngine(max_workers=0)
        with pytest.raises(EvaluationError, match="unknown executor"):
            SweepEngine(executor="quantum")


class TestReplicationCheckpoints:
    def test_replications_reuse_per_seed_checkpoints(self, params, tmp_path):
        first = replicate_shapes(
            params,
            seeds=[11],
            detectors={"stide": stide_shape},
            checkpoint_dir=tmp_path,
        )
        checkpoint = tmp_path / "replication-seed11.jsonl"
        assert checkpoint.exists()
        cells = checkpoint_load(checkpoint)["stide"]
        before = dict(cells)
        # A re-run resumes from the checkpoint instead of recomputing:
        # the file's records are adopted unchanged (bit-identical).
        second = replicate_shapes(
            params,
            seeds=[11],
            detectors={"stide": stide_shape},
            checkpoint_dir=tmp_path,
        )
        assert checkpoint_load(checkpoint)["stide"] == before
        assert first.all_held == second.all_held
