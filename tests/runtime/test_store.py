"""Tests for repro.runtime.store — the persistent fit-artifact store.

Covers the content-addressed key schema (stability across processes),
corruption tolerance (a damaged entry is a miss, never an error), the
LRU byte cap, and the end-to-end sweep integration: store-warm re-runs
perform zero fits and reproduce every map cell, and warm-started
neural fits keep (or visibly surrender) the Figure-6 classification.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.datagen.suite import build_suite
from repro.datagen.training import generate_training_data
from repro.detectors.mlp import MlpConfig
from repro.detectors.neural import NeuralDetector
from repro.detectors.registry import create_detector
from repro.params import scaled_params
from repro.runtime import (
    ArtifactStore,
    SweepEngine,
    WarmStartPolicy,
    fit_key,
    stream_digest,
    streams_digest,
)

STREAM = np.array([0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 0, 2] * 8, dtype=np.int64)


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


@pytest.fixture(scope="module")
def suite():
    params = scaled_params(12_000, seed=7)
    return build_suite(training=generate_training_data(params))


class TestKeySchema:
    def test_digest_ignores_input_dtype_and_layout(self):
        base = stream_digest(STREAM)
        assert stream_digest(STREAM.astype(np.int32)) == base
        assert stream_digest(np.asfortranarray(STREAM)) == base
        assert stream_digest(STREAM[::-1][::-1]) == base

    def test_digest_sees_content(self):
        changed = STREAM.copy()
        changed[0] += 1
        assert stream_digest(changed) != stream_digest(STREAM)

    def test_streams_digest_is_order_sensitive(self):
        a, b = STREAM[:20], STREAM[20:50]
        assert streams_digest([a, b]) != streams_digest([b, a])

    def test_fit_key_separates_configs(self):
        digest = stream_digest(STREAM)
        assert fit_key(digest, "stide;dw=4") != fit_key(digest, "stide;dw=5")

    def test_key_stable_across_processes(self, tmp_path):
        """The whole point of content addressing: another interpreter,
        same stream and config, must derive the same key (no id(),
        hash randomization, or dict order may leak in)."""
        detector = create_detector("stide", 4, 4)
        detector.attach_store(ArtifactStore(tmp_path))
        detector.fit(STREAM)
        here = detector.last_fit_report.store_key
        script = (
            "import numpy as np\n"
            "from repro.detectors.registry import create_detector\n"
            "from repro.runtime import ArtifactStore\n"
            "stream = np.array([0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 0, 2] * 8, "
            "dtype=np.int64)\n"
            "detector = create_detector('stide', 4, 4)\n"
            f"detector.attach_store(ArtifactStore({os.fspath(tmp_path)!r}))\n"
            "detector.fit(stream)\n"
            "print(detector.last_fit_report.store_key)\n"
            "print(detector.last_fit_report.origin)\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            cwd=Path(__file__).resolve().parents[2],
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        there, origin = result.stdout.split()
        assert there == here
        assert origin == "store"  # the other process actually loaded it


class TestRoundTrip:
    def test_put_get(self, store):
        arrays = {"a": np.arange(6).reshape(2, 3), "b": np.array(1.5)}
        store.put("ab" + "0" * 62, arrays)
        held = store.get("ab" + "0" * 62)
        assert held is not None
        np.testing.assert_array_equal(held["a"], arrays["a"])
        np.testing.assert_array_equal(held["b"], arrays["b"])

    def test_missing_key_is_miss(self, store):
        assert store.get("cd" + "1" * 62) is None
        assert store.stats.misses == 1

    def test_corrupted_entry_is_a_miss_and_is_purged(self, store):
        key = "ef" + "2" * 62
        store.put(key, {"a": np.arange(4)})
        path = store.root / key[:2] / f"{key}.npz"
        path.write_bytes(b"this is not a zip archive")
        assert store.get(key) is None
        assert not path.exists(), "corrupt entries must be unlinked"
        # The slot works again after the purge.
        store.put(key, {"a": np.arange(4)})
        assert store.get(key) is not None

    def test_truncated_entry_is_a_miss(self, store):
        key = "0a" + "3" * 62
        store.put(key, {"a": np.arange(1000)})
        path = store.root / key[:2] / f"{key}.npz"
        path.write_bytes(path.read_bytes()[:100])
        assert store.get(key) is None

    def test_verify_purges_only_corrupt_entries(self, store):
        store.put("11" + "0" * 62, {"a": np.arange(3)})
        store.put("22" + "0" * 62, {"a": np.arange(3)})
        bad = store.root / "22" / ("22" + "0" * 62 + ".npz")
        bad.write_bytes(b"garbage")
        good, purged = store.verify()
        assert (good, purged) == (1, 1)
        assert store.get("11" + "0" * 62) is not None

    def test_invalid_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path, cap_bytes=0)


class TestLruEviction:
    def _fill(self, store, keys, size=1000):
        import time

        for offset, key in enumerate(keys):
            store.put(key, {"a": np.arange(size)})
            # Distinct mtimes make LRU order deterministic on coarse
            # filesystem timestamps.
            path = store.root / key[:2] / f"{key}.npz"
            stamp = time.time() - 100 + offset
            os.utime(path, times=(stamp, stamp))

    def test_oldest_entries_evicted_over_cap(self, tmp_path):
        keys = [f"{i:02d}" + "a" * 62 for i in range(4)]
        probe = ArtifactStore(tmp_path)
        probe.put(keys[0], {"a": np.arange(1000)})
        entry_bytes = probe.size_bytes()
        store = ArtifactStore(tmp_path, cap_bytes=int(entry_bytes * 2.5))
        self._fill(store, keys)
        survivors = {path.stem for path in store.entries()}
        assert keys[3] in survivors, "the newest entry must survive"
        assert keys[0] not in survivors, "the oldest entry must be evicted"
        assert store.size_bytes() <= store.cap_bytes
        assert store.stats.evictions >= 1

    def test_hit_refreshes_recency(self, tmp_path):
        keys = [f"{i:02d}" + "b" * 62 for i in range(3)]
        probe = ArtifactStore(tmp_path)
        probe.put(keys[0], {"a": np.arange(1000)})
        entry_bytes = probe.size_bytes()
        store = ArtifactStore(tmp_path, cap_bytes=int(entry_bytes * 2.5))
        self._fill(store, keys[:2])
        assert store.get(keys[0]) is not None  # refresh: now newest
        store.put(keys[2], {"a": np.arange(1000)})
        survivors = {path.stem for path in store.entries()}
        assert keys[0] in survivors, "a hit must protect against eviction"
        assert keys[1] not in survivors

    def test_put_never_evicts_itself(self, tmp_path):
        store = ArtifactStore(tmp_path, cap_bytes=1)  # tiny cap
        key = "33" + "c" * 62
        store.put(key, {"a": np.arange(1000)})
        assert store.get(key) is not None, "the just-written entry survives"


class TestSweepIntegration:
    FAMILIES = ("stide", "markov", "lane-brodley")

    def test_store_warm_rerun_is_zero_fit_and_bit_identical(
        self, suite, tmp_path
    ):
        cold_engine = SweepEngine(executor="serial", store=tmp_path / "s")
        cold_maps = cold_engine.sweep(self.FAMILIES, suite)
        assert cold_engine.last_fit_stats.from_store == 0

        warm_engine = SweepEngine(executor="serial", store=tmp_path / "s")
        warm_maps = warm_engine.sweep(self.FAMILIES, suite)
        stats = warm_engine.last_fit_stats
        assert stats.computed == 0, "a warm re-run must perform zero fits"
        assert stats.from_store == len(self.FAMILIES) * len(
            suite.window_lengths
        )
        mismatched = sum(
            cold_maps[name].cell(anomaly_size, window_length)
            != warm_maps[name].cell(anomaly_size, window_length)
            for name in self.FAMILIES
            for anomaly_size in suite.anomaly_sizes
            for window_length in suite.window_lengths
        )
        assert mismatched == 0

    def test_report_surfaces_store_traffic(self, suite, tmp_path):
        engine = SweepEngine(executor="serial", store=tmp_path / "s")
        engine.sweep(("stide",), suite)
        _maps, report = SweepEngine(
            executor="serial", store=tmp_path / "s"
        ).sweep_with_report(("stide",), suite)
        assert report.fits_from_store == len(suite.window_lengths)
        assert report.fits_computed == 0
        assert "from store" in report.summary()

    def test_no_warm_start_isolated_from_warm_entries(self, suite, tmp_path):
        """--no-warm-start must never load warm-trained neural weights:
        the two modes fork the content address."""
        warm = SweepEngine(
            executor="serial", store=tmp_path / "s", warm_start=True
        )
        warm.sweep(("neural-network",), suite)
        cold = SweepEngine(
            executor="serial", store=tmp_path / "s", warm_start=False
        )
        cold.sweep(("neural-network",), suite)
        stats = cold.last_fit_stats
        assert stats.from_store == 0, "cold run must miss warm-mode entries"
        assert stats.warm_started == 0
        assert stats.computed == len(suite.window_lengths)


class TestWarmStartClassification:
    """Warm-started neural fits on a Figure-6-style map."""

    def test_warm_map_keeps_or_reports_classification(self, suite, tmp_path):
        cold_engine = SweepEngine(executor="serial", warm_start=False)
        cold_map = cold_engine.build_map("neural-network", suite)
        warm_engine = SweepEngine(
            executor="serial", store=tmp_path / "s", warm_start=True
        )
        warm_map = warm_engine.build_map("neural-network", suite)
        stats = warm_engine.last_fit_stats
        assert stats.warm_started + stats.computed == len(
            suite.window_lengths
        )
        differing = [
            (anomaly_size, window_length)
            for anomaly_size in suite.anomaly_sizes
            for window_length in suite.window_lengths
            if cold_map.response_class(anomaly_size, window_length)
            is not warm_map.response_class(anomaly_size, window_length)
        ]
        # The acceptance contract: warm starting must reproduce the
        # blind/weak/capable classification, or the gate must have
        # auto-disabled (reported via the fit stats) wherever it risked
        # changing it.
        assert not differing or stats.warm_disabled, (
            f"classification changed at {differing} without any "
            "reported warm-start disable"
        )
        assert not differing, (
            f"warm-started map changed classification at {differing}"
        )

    def test_gate_rejection_reports_and_falls_back_cold(self):
        """An impossible tolerance forces the gate to reject: the fit
        must fall back to a cold fit and record the reason."""
        rng = np.random.default_rng(3)
        stream = rng.integers(0, 4, size=400).astype(np.int64)
        config = MlpConfig(epochs=30)
        policy = WarmStartPolicy(epochs_fraction=0.1, loss_tolerance=0.0)
        from repro.runtime import WarmStartRegistry

        registry = WarmStartRegistry()
        donor = NeuralDetector(3, 4, config=config)
        donor.attach_warm_start(policy, registry)
        donor.fit(stream)
        assert donor.last_fit_report.origin == "computed"

        # Publish an unreachable donor loss so the gate must reject.
        registry.clear()
        registry.publish(
            donor._training_digest,
            donor.family_fingerprint(),
            3,
            donor._network.export_weights(),
            -1.0,
        )
        warm = NeuralDetector(4, 4, config=config)
        warm.attach_warm_start(policy, registry)
        warm.fit(stream)
        report = warm.last_fit_report
        assert report.origin == "computed"
        assert report.warm_disabled is not None
        assert "exceeded donor" in report.warm_disabled

    def test_warm_start_accepts_adjacent_donor(self):
        rng = np.random.default_rng(5)
        stream = rng.integers(0, 4, size=400).astype(np.int64)
        config = MlpConfig(epochs=30)
        policy = WarmStartPolicy(epochs_fraction=0.5, loss_tolerance=10.0)
        from repro.runtime import WarmStartRegistry

        registry = WarmStartRegistry()
        donor = NeuralDetector(3, 4, config=config)
        donor.attach_warm_start(policy, registry)
        donor.fit(stream)
        warm = NeuralDetector(4, 4, config=config)
        warm.attach_warm_start(policy, registry)
        warm.fit(stream)
        report = warm.last_fit_report
        assert report.origin == "warm"
        assert report.warm_donor_window == 3
