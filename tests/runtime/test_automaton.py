"""Automaton membership must match searchsorted bisection bit for bit.

The one-pass multi-order membership kernel (:mod:`repro.runtime.automaton`)
is a different *algorithm* for exactly the same predicate the bisect
tier answers per DW — so every test here cross-checks the automaton
against an independent bisection (or tuple-set) reference over random
streams: the full AS 2..9 x DW 2..15 paper grid, anomaly-injected
streams, the unpackable AS=32/DW=13 fallback, and the cache/engine
plumbing that shares one profile across every membership cell.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.stide import StideDetector
from repro.detectors.tstide import TStideDetector
from repro.exceptions import DetectorConfigurationError, WindowError
from repro.runtime.automaton import (
    AUTOMATON_MAX_ORDER,
    MembershipAutomaton,
    StreamCodes,
    match_profile,
    packed_order_cap,
    training_databases,
)
from repro.runtime.cache import WindowCache
from repro.runtime.kernels import (
    KERNEL_TIERS,
    resolve_kernel_tier,
    sorted_membership,
)
from repro.sequences.windows import pack_windows, packable, windows_array

SEED = 20260808


def reference_foreign(
    train: np.ndarray, test: np.ndarray, window_length: int
) -> np.ndarray:
    """Independent tuple-set membership: no packing, no bisection."""
    database = {
        tuple(row)
        for row in windows_array(train, window_length).tolist()
    }
    return np.asarray(
        [
            tuple(row) not in database
            for row in windows_array(test, window_length).tolist()
        ],
        dtype=bool,
    )


class TestStreamCodes:
    def test_levels_match_direct_packing(self):
        rng = np.random.default_rng(SEED)
        for alphabet_size in (2, 3, 5, 8):
            stream = rng.integers(0, alphabet_size, 300)
            codes = StreamCodes(stream, alphabet_size, AUTOMATON_MAX_ORDER)
            for order in range(2, codes.cap + 1):
                expected = pack_windows(
                    windows_array(stream, order), alphabet_size
                )
                assert np.array_equal(codes.level(order), expected), (
                    alphabet_size,
                    order,
                )

    def test_keys_at_matches_level_gather(self):
        rng = np.random.default_rng(SEED + 1)
        for alphabet_size in (2, 5, 8):
            stream = rng.integers(0, alphabet_size, 60)
            codes = StreamCodes(stream, alphabet_size, AUTOMATON_MAX_ORDER)
            for order in range(2, codes.cap + 1):
                count = len(stream) - order + 1
                positions = rng.permutation(count)[: count // 2 + 1]
                # Sparse path first (nothing memoized), then against
                # the materialized level — must agree on tail
                # positions past the last full cap-length window too.
                sparse = codes.keys_at(order, positions)
                assert np.array_equal(
                    sparse, codes.level(order)[positions]
                ), (alphabet_size, order)

    def test_cap_respects_bit_budget(self):
        stream = np.zeros(100, dtype=np.int64)
        # 5 bits/symbol -> floor(63 / 5) = 12: DW 13 is out of range.
        codes = StreamCodes(stream, 32, AUTOMATON_MAX_ORDER)
        assert codes.cap == 12
        with pytest.raises(WindowError, match="outside"):
            codes.level(13)

    def test_cap_respects_stream_length(self):
        codes = StreamCodes(np.zeros(5, dtype=np.int64), 8, 15)
        assert codes.cap == 5

    def test_rejects_unusable_streams(self):
        with pytest.raises(WindowError):
            StreamCodes(np.zeros(1, dtype=np.int64), 8, 15)
        with pytest.raises(WindowError):
            StreamCodes(np.zeros((2, 2), dtype=np.int64), 8, 15)


class TestMatchProfile:
    def test_profile_against_per_order_bisection(self):
        """The seeded fuzz: profile == max matching order, every position."""
        rng = np.random.default_rng(SEED)
        for alphabet_size in range(2, 10):
            train = rng.integers(0, alphabet_size, 600)
            test = rng.integers(0, alphabet_size, 300)
            codes = StreamCodes(test, alphabet_size, AUTOMATON_MAX_ORDER)
            databases = training_databases(
                train, alphabet_size, AUTOMATON_MAX_ORDER
            )
            profile = match_profile(codes, databases)
            assert len(profile) == len(test) - 1
            expected = np.zeros(len(test) - 1, dtype=np.int64)
            for order in range(2, codes.cap + 1):
                known = sorted_membership(
                    pack_windows(windows_array(test, order), alphabet_size),
                    databases[order],
                )
                expected[: len(known)][known] = order
            assert np.array_equal(profile, expected), alphabet_size

    def test_prefix_closure_holds(self):
        """Known orders form the interval [2, profile] — the invariant
        that lets one profile answer every DW."""
        rng = np.random.default_rng(SEED + 1)
        train = rng.integers(0, 4, 500)
        test = rng.integers(0, 4, 250)
        databases = training_databases(train, 4, AUTOMATON_MAX_ORDER)
        codes = StreamCodes(test, 4, AUTOMATON_MAX_ORDER)
        profile = match_profile(codes, databases)
        for order in range(2, codes.cap + 1):
            known = sorted_membership(codes.level(order), databases[order])
            assert np.array_equal(known, profile[: len(known)] >= order), order

    def test_missing_orders_count_as_empty(self):
        test = np.asarray([0, 1, 0, 1])
        codes = StreamCodes(test, 2, 4)
        profile = match_profile(codes, {})
        assert np.array_equal(profile, np.zeros(3, dtype=np.int64))


class TestMembershipAutomaton:
    @pytest.mark.parametrize("alphabet_size", [2, 5, 8, 9])
    def test_foreign_matches_tuple_reference(self, alphabet_size):
        rng = np.random.default_rng(SEED + alphabet_size)
        train = rng.integers(0, alphabet_size, 800)
        test = rng.integers(0, alphabet_size, 400)
        automaton = MembershipAutomaton(train, alphabet_size)
        for window_length in range(2, 16):
            if window_length > automaton.max_order:
                break
            assert np.array_equal(
                automaton.foreign(test, window_length),
                reference_foreign(train, test, window_length),
            ), window_length

    def test_foreign_all_is_one_pass_consistent(self):
        rng = np.random.default_rng(SEED)
        train = rng.integers(0, 8, 600)
        test = rng.integers(0, 8, 200)
        automaton = MembershipAutomaton(train, 8)
        masks = automaton.foreign_all(test)
        assert set(masks) == set(range(2, 16))
        for window_length, mask in masks.items():
            assert np.array_equal(
                mask, reference_foreign(train, test, window_length)
            )

    def test_max_order_clamped_by_packing_budget(self):
        automaton = MembershipAutomaton(np.zeros(100, dtype=np.int64), 32)
        assert automaton.max_order == 12

    def test_database_empty_off_grid(self):
        automaton = MembershipAutomaton(np.asarray([0, 1, 0]), 2)
        assert len(automaton.database(40)) == 0


class TestTierResolution:
    def test_bisect_always_honored(self):
        assert resolve_kernel_tier("bisect", 8, 6) == "bisect"

    def test_auto_and_forced_resolve_on_packable_grid(self):
        for tier in ("auto", "automaton"):
            assert resolve_kernel_tier(tier, 8, 6) == "automaton"

    def test_unpackable_falls_back_even_when_forced(self):
        # AS=32/DW=13: 65 bits > 63 — must keep the fallback.
        assert not packable(32, 13)
        assert resolve_kernel_tier("automaton", 32, 13) == "bisect"

    def test_over_order_falls_back(self):
        assert resolve_kernel_tier("automaton", 2, 16) == "bisect"
        assert resolve_kernel_tier("auto", 2, 16, max_order=20) == "automaton"

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="kernel tier"):
            resolve_kernel_tier("turbo", 8, 6)
        with pytest.raises(DetectorConfigurationError, match="kernel tier"):
            StideDetector(6, 8).attach_kernel_tier("turbo")
        assert set(KERNEL_TIERS) == {"auto", "bisect", "automaton"}

    def test_packed_order_cap(self):
        assert packed_order_cap(8) == 21  # 3 bits -> DW 21 now packs
        assert packed_order_cap(32) == 12
        assert packed_order_cap(2) == 63


def _inject(test: np.ndarray, anomaly: np.ndarray, at: int) -> np.ndarray:
    out = test.copy()
    out[at : at + len(anomaly)] = anomaly
    return out


class TestDetectorTierEquivalence:
    """The dispatcher's tiers are bit-identical through the detectors."""

    def _streams(self, alphabet_size, rng):
        train = rng.integers(0, alphabet_size, 700)
        test = _inject(
            rng.integers(0, alphabet_size, 350),
            rng.integers(0, alphabet_size, 9),
            120,
        )
        return train, test

    @pytest.mark.parametrize("alphabet_size", [2, 3, 6, 8, 9])
    def test_stide_fuzz_grid(self, alphabet_size):
        rng = np.random.default_rng(SEED + alphabet_size)
        train, test = self._streams(alphabet_size, rng)
        cache = WindowCache()
        for window_length in range(2, 16):
            reference = (
                StideDetector(window_length, alphabet_size)
                .attach_kernel_tier("bisect")
                .fit(train)
                .score_stream(test)
            )
            cached = (
                StideDetector(window_length, alphabet_size)
                .attach_cache(cache)
                .attach_kernel_tier("automaton")
                .fit(train)
                .score_stream(test)
            )
            uncached = (
                StideDetector(window_length, alphabet_size)
                .attach_kernel_tier("automaton")
                .fit(train)
                .score_stream(test)
            )
            assert np.array_equal(reference, cached), window_length
            assert np.array_equal(reference, uncached), window_length

    @pytest.mark.parametrize("alphabet_size", [2, 3, 6, 8, 9])
    def test_tstide_fuzz_grid(self, alphabet_size):
        rng = np.random.default_rng(SEED - alphabet_size)
        train, test = self._streams(alphabet_size, rng)
        cache = WindowCache()
        for window_length in range(2, 16):
            for rare in (0.0005, 0.02):
                reference = (
                    TStideDetector(window_length, alphabet_size, rare)
                    .attach_kernel_tier("bisect")
                    .fit(train)
                    .score_stream(test)
                )
                automaton = (
                    TStideDetector(window_length, alphabet_size, rare)
                    .attach_cache(cache)
                    .attach_kernel_tier("automaton")
                    .fit(train)
                    .score_stream(test)
                )
                assert np.array_equal(reference, automaton), (
                    window_length,
                    rare,
                )

    def test_unpackable_grid_falls_back(self):
        """AS=32/DW=13 (65 bits) keeps the tuple fallback under every tier."""
        rng = np.random.default_rng(SEED)
        train = rng.integers(0, 32, 900)
        test = rng.integers(0, 32, 300)
        reference = StideDetector(13, 32).fit(train).score_stream(test)
        assert np.array_equal(
            reference, reference_foreign(train, test, 13).astype(np.float64)
        )
        for tier in KERNEL_TIERS:
            detector = (
                StideDetector(13, 32)
                .attach_cache(WindowCache())
                .attach_kernel_tier(tier)
                .fit(train)
            )
            assert detector._packed_db is None  # tuple path retained
            assert np.array_equal(reference, detector.score_stream(test)), tier

    def test_multi_stream_fit_keeps_bisect(self):
        """The profile is defined against one training stream."""
        rng = np.random.default_rng(SEED)
        streams = [rng.integers(0, 8, 300), rng.integers(0, 8, 300)]
        test = rng.integers(0, 8, 200)
        reference = (
            StideDetector(6, 8)
            .attach_kernel_tier("bisect")
            .fit_many(streams)
            .score_stream(test)
        )
        detector = (
            StideDetector(6, 8)
            .attach_cache(WindowCache())
            .attach_kernel_tier("automaton")
            .fit_many(streams)
        )
        assert detector._membership_context(test) is None
        assert np.array_equal(reference, detector.score_stream(test))

    def test_auto_without_cache_keeps_bisect(self):
        rng = np.random.default_rng(SEED)
        train = rng.integers(0, 8, 300)
        detector = StideDetector(6, 8).fit(train)
        assert detector.kernel_tier == "auto"
        assert detector._membership_context(train) is None


class TestCacheSharing:
    def test_profile_computed_once_across_families_and_windows(self):
        rng = np.random.default_rng(SEED)
        train = rng.integers(0, 8, 500)
        test = rng.integers(0, 8, 250)
        cache = WindowCache()
        first = cache.membership_profile(test, train, 8, AUTOMATON_MAX_ORDER)
        before = cache.stats
        for window_length in (2, 7, 15):
            for family in (StideDetector, TStideDetector):
                detector = (
                    family(window_length, 8)
                    .attach_cache(cache)
                    .attach_kernel_tier("automaton")
                    .fit(train)
                )
                detector.score_stream(test)
        again = cache.membership_profile(test, train, 8, AUTOMATON_MAX_ORDER)
        assert again is first  # one profile object served every cell
        assert cache.stats.hits > before.hits
        # No new profile entries appeared: every scoring pass above hit
        # the one shared "profile" artifact.
        profile_keys = [key for key in cache._entries if key[2] == "profile"]
        assert len(profile_keys) == 1

    def test_eviction_of_either_stream_drops_profile(self):
        rng = np.random.default_rng(SEED)
        train = rng.integers(0, 8, 300)
        test = rng.integers(0, 8, 200)
        for victim in (test, train):
            cache = WindowCache()
            cache.membership_profile(test, train, 8, AUTOMATON_MAX_ORDER)
            assert any(key[2] == "profile" for key in cache._entries)
            cache.release_stream(victim)
            assert not any(key[2] == "profile" for key in cache._entries)
