"""Tiered sharded store: hot LRU, mmap shard files, cold fallback."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.runtime.shardstore import (
    SHARD_SCHEMA_VERSION,
    HotTier,
    ShardedStore,
    ShardFile,
    write_shard,
)
from repro.runtime.store import ArtifactStore


def _entry(seed: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "packed_db": np.sort(rng.integers(0, 1 << 40, size=32)),
        "meta": np.asarray([seed, 3 * seed], dtype=np.int64),
    }


# -- hot tier -----------------------------------------------------------------


def test_hot_tier_lru_eviction_is_byte_accounted():
    tier = HotTier(cap_bytes=100)
    tier.put("a", "A", 40)
    tier.put("b", "B", 40)
    assert tier.get("a") == "A"  # freshen a; b is now LRU
    tier.put("c", "C", 40)  # over cap: b goes
    assert tier.get("b") is None
    assert tier.get("a") == "A"
    assert tier.get("c") == "C"
    stats = tier.stats
    assert stats.evictions == 1
    assert stats.resident_entries == 2
    assert stats.resident_bytes == 80


def test_hot_tier_never_evicts_the_entry_just_written():
    tier = HotTier(cap_bytes=10)
    tier.put("big", "B", 50)
    assert tier.get("big") == "B"
    tier.put("big2", "C", 60)
    assert tier.get("big2") == "C"


def test_hot_tier_remove_and_replace_accounting():
    tier = HotTier(cap_bytes=1000)
    tier.put("k", "v1", 100)
    tier.put("k", "v2", 30)  # replacement re-accounts
    assert tier.resident_bytes == 30
    assert tier.stats.inserts == 1
    assert tier.remove("k")
    assert not tier.remove("k")
    assert tier.resident_bytes == 0
    assert tier.stats.removals == 1


def test_hot_tier_prefix_listing_tracks_puts_removes_and_evictions():
    """The tenant-group index must mirror residency exactly."""
    tier = HotTier(cap_bytes=1000)
    tier.put("t1|stide|6", "a", 10)
    tier.put("t1|markov|6", "b", 10)
    tier.put("t2|stide|6", "c", 10)
    assert tier.keys_with_prefix("t1|") == ["t1|markov|6", "t1|stide|6"]
    assert tier.keys_with_prefix("t2|") == ["t2|stide|6"]
    assert tier.keys_with_prefix("t3|") == []
    # Non-group prefixes still answer by scan.
    assert sorted(tier.keys_with_prefix("t")) == [
        "t1|markov|6",
        "t1|stide|6",
        "t2|stide|6",
    ]
    assert tier.keys_with_prefix("t1|stide") == ["t1|stide|6"]
    tier.remove("t1|stide|6")
    assert tier.keys_with_prefix("t1|") == ["t1|markov|6"]
    # Evictions drop keys from the index too.
    small = HotTier(cap_bytes=25)
    small.put("t1|a", "x", 10)
    small.put("t1|b", "y", 10)
    small.put("t2|a", "z", 10)  # evicts t1|a (LRU)
    assert small.keys_with_prefix("t1|") == ["t1|b"]
    assert small.keys_with_prefix("t2|") == ["t2|a"]


def test_hot_tier_eviction_under_concurrent_readers():
    """Hammer gets while puts force evictions: no torn state, no crash."""
    tier = HotTier(cap_bytes=64 * 50)
    errors: list[Exception] = []

    def reader() -> None:
        try:
            for i in range(2000):
                value = tier.get(f"k{i % 200}")
                assert value is None or value == f"v{i % 200}"
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    def writer(base: int) -> None:
        try:
            for i in range(1000):
                key = (base * 1000 + i) % 200
                tier.put(f"k{key}", f"v{key}", 64)
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=reader) for _ in range(3)] + [
        threading.Thread(target=writer, args=(n,)) for n in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    stats = tier.stats
    assert stats.resident_bytes <= tier.cap_bytes
    assert stats.inserts - stats.evictions - stats.removals == (
        stats.resident_entries
    )


# -- shard files --------------------------------------------------------------


def test_shard_file_roundtrip_zero_copy(tmp_path):
    path = tmp_path / "shard-0000.bin"
    entries = {f"t{i}|stide|6": _entry(i) for i in range(10)}
    write_shard(path, entries)
    mapped = ShardFile(path)
    assert sorted(mapped.keys()) == sorted(entries)
    for key, arrays in entries.items():
        held = mapped.get(key)
        assert held is not None
        for name, expected in arrays.items():
            np.testing.assert_array_equal(held[name], expected)
            assert held[name].dtype == expected.dtype
            assert not held[name].flags.writeable  # mmap-backed view


def test_shard_roundtrip_preserves_zero_dim_arrays(tmp_path):
    """Scalars like t-stide's ``table_total`` must stay 0-d end to end."""
    entry = {"total": np.asarray(7, dtype=np.int64)}
    path = tmp_path / "shard-0000.bin"
    write_shard(path, {"k": entry})
    held = ShardFile(path).get("k")
    assert held is not None and held["total"].shape == ()
    assert int(held["total"]) == 7
    store = ShardedStore(tmp_path / "store", shards=1)
    store.put("k", entry)
    pending = store.get("k")
    assert pending is not None and pending["total"].shape == ()


def test_corrupted_shard_entry_is_a_miss_not_a_crash(tmp_path):
    path = tmp_path / "shard-0000.bin"
    entries = {"good": _entry(1), "bad": _entry(2)}
    write_shard(path, entries)
    mapped = ShardFile(path)
    # Locate the bad entry's first array and flip one payload byte.
    spec = mapped._entries["bad"]["packed_db"]
    offset = mapped._payload_base + int(spec[0])
    raw = bytearray(path.read_bytes())
    raw[offset] ^= 0xFF
    path.write_bytes(raw)
    reopened = ShardFile(path)
    assert reopened.get("bad") is None  # crc catches the flip
    assert reopened.get("bad") is None  # stays a miss (cached verdict)
    held = reopened.get("good")  # neighbors unaffected
    assert held is not None
    np.testing.assert_array_equal(held["meta"], entries["good"]["meta"])


def test_truncated_shard_file_reads_empty(tmp_path):
    path = tmp_path / "shard-0000.bin"
    write_shard(path, {"k": _entry(3)})
    path.write_bytes(path.read_bytes()[:10])
    with pytest.raises(ValueError):
        ShardFile(path)
    store = ShardedStore(tmp_path, shards=1)
    assert store.get("k") is None  # unreadable file == empty shard


# -- the tiered store ---------------------------------------------------------


def test_sharded_store_pending_then_compact_then_mmap_reopen(tmp_path):
    store = ShardedStore(tmp_path / "models", shards=4, compact_every=0)
    keys = [f"tenant-{i}|stide|6" for i in range(40)]
    for i, key in enumerate(keys):
        store.put(key, _entry(i))
    for i, key in enumerate(keys):  # served from pending
        np.testing.assert_array_equal(
            store.get(key)["meta"], _entry(i)["meta"]
        )
    total = store.compact_all()
    assert total == len(keys)
    assert store.stats.pending_entries == 0
    for i, key in enumerate(keys):  # now served from the mmap files
        held = store.get(key)
        np.testing.assert_array_equal(held["packed_db"], _entry(i)["packed_db"])
        assert not held["packed_db"].flags.writeable
    # A second store over the same directory reads the shard files cold.
    reopened = ShardedStore(tmp_path / "models", shards=4)
    for i, key in enumerate(keys):
        np.testing.assert_array_equal(
            reopened.get(key)["meta"], _entry(i)["meta"]
        )


def test_shard_reopen_after_compaction_with_live_readers(tmp_path):
    """Arrays handed out before a compaction stay valid after it."""
    store = ShardedStore(tmp_path, shards=1, compact_every=0)
    store.put("a", _entry(1))
    store.compact_all()
    before = store.get("a")["packed_db"]
    snapshot = before.copy()
    store.put("b", _entry(2))
    store.compact_all()  # rewrites shard-0000.bin under the old mapping
    np.testing.assert_array_equal(before, snapshot)  # old view still alive
    np.testing.assert_array_equal(store.get("a")["packed_db"], snapshot)
    assert store.get("b") is not None


def test_shard_assignment_is_stable_and_spread(tmp_path):
    store = ShardedStore(tmp_path, shards=16)
    assignments = {f"tenant-{i}": store.shard_of(f"tenant-{i}") for i in range(500)}
    again = ShardedStore(tmp_path, shards=16)
    assert all(
        again.shard_of(key) == shard for key, shard in assignments.items()
    )
    buckets = set(assignments.values())
    assert len(buckets) == 16  # 500 keys cover all 16 buckets


def test_cold_tier_fallback_and_promotion(tmp_path):
    cold = ArtifactStore(tmp_path / "cold")
    store = ShardedStore(tmp_path / "models", shards=2, cold=cold)
    store.put("k", _entry(9), cold=True)
    # A fresh store over an empty models dir must fall back to cold.
    fresh = ShardedStore(tmp_path / "models2", shards=2, cold=cold)
    held = fresh.get("k")
    assert held is not None
    np.testing.assert_array_equal(held["meta"], _entry(9)["meta"])
    assert fresh.stats.cold_hits == 1
    assert fresh.stats.promotions == 1
    # Promotion staged it warm: the next get is a warm hit.
    warm = fresh.get("k")
    assert warm is not None
    assert fresh.stats.warm_hits == 1


def test_invalidate_tombstones_across_tiers(tmp_path):
    store = ShardedStore(tmp_path, shards=1, compact_every=0)
    store.put("k", _entry(4))
    store.compact_all()
    store.hot.put("k", object(), 100)
    store.invalidate("k")
    assert store.hot.get("k") is None
    assert store.get("k") is None
    store.compact_all()  # tombstone survives into the rewrite
    assert store.get("k") is None
    store.put("k", _entry(5))  # a fresh put clears the tombstone
    np.testing.assert_array_equal(store.get("k")["meta"], _entry(5)["meta"])


def test_auto_compaction_after_threshold(tmp_path):
    store = ShardedStore(tmp_path, shards=1, compact_every=8)
    for i in range(8):
        store.put(f"k{i}", _entry(i))
    stats = store.stats
    assert stats.compactions == 1
    assert stats.pending_entries == 0
    assert stats.shard_entries == 8


def test_cold_key_is_schema_versioned(tmp_path):
    store = ShardedStore(tmp_path, shards=1)
    assert store.cold_key("k") != store.cold_key("k2")
    assert f"repro-shard/{SHARD_SCHEMA_VERSION}" in (
        f"repro-shard/{SHARD_SCHEMA_VERSION}\nk\n"
    )
