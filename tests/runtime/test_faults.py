"""Fault-matrix tests: every failure mode x every backend recovers.

Each test injects failures on a seeded
:class:`~repro.runtime.faults.FaultSchedule` and asserts the sweep
still produces a map bit-identical to the fault-free serial reference
— the recovery paths are proven, not assumed.  The module is marked
``faults`` so CI can run it as a dedicated job under a hard timeout
(``pytest -m faults``).
"""

from __future__ import annotations

import pytest

from repro.evaluation.performance_map import build_performance_map
from repro.exceptions import (
    DetectorConfigurationError,
    SweepAbortedError,
    TransientTaskError,
)
from repro.io import checkpoint_load
from repro.runtime import (
    FaultSchedule,
    ResiliencePolicy,
    RetryPolicy,
    SweepEngine,
)
from repro.runtime.faults import FAULT_KINDS, apply_fault, wrap_factory

pytestmark = pytest.mark.faults

BACKENDS = ("serial", "thread", "process")
FAMILY = "stide"


@pytest.fixture(scope="module")
def reference_map(suite):
    """The fault-free serial map every faulted sweep must reproduce."""
    return build_performance_map(FAMILY, suite)


def _assert_identical(actual, reference, suite) -> None:
    for anomaly_size in suite.anomaly_sizes:
        for window_length in suite.window_lengths:
            assert actual.cell(anomaly_size, window_length) == reference.cell(
                anomaly_size, window_length
            )


def _faulted_sweep(suite, backend, schedule, checkpoint=None, **policy_kwargs):
    policy_kwargs.setdefault("retry", RetryPolicy(retries=2, backoff=0.001))
    policy = ResiliencePolicy(fault_schedule=schedule, **policy_kwargs)
    engine = SweepEngine(max_workers=2, executor=backend, resilience=policy)
    maps, report = engine.sweep_with_report([FAMILY], suite, checkpoint=checkpoint)
    return maps[FAMILY], report


def _fired_blocks(schedule, suite) -> list[int]:
    """Window lengths whose first attempt draws a fault (deterministic)."""
    return [
        window_length
        for window_length in suite.window_lengths
        if schedule.decide(f"{FAMILY}:{window_length}", 1) is not None
    ]


class TestFaultSchedule:
    def test_decisions_are_deterministic(self):
        schedule = FaultSchedule(rate=0.5, seed=9, kinds=FAULT_KINDS)
        decisions = [schedule.decide("stide:7", n) for n in range(1, 5)]
        assert decisions == [schedule.decide("stide:7", n) for n in range(1, 5)]

    def test_zero_rate_never_fires(self):
        schedule = FaultSchedule(rate=0.0)
        assert all(
            schedule.decide(f"stide:{w}", 1) is None for w in range(2, 16)
        )

    def test_attempts_past_max_are_exempt(self):
        schedule = FaultSchedule(rate=1.0, max_attempt=1)
        assert schedule.decide("stide:4", 1) == "raise"
        assert schedule.decide("stide:4", 2) is None

    @pytest.mark.parametrize(
        "kwargs",
        (
            {"rate": -0.1},
            {"rate": 1.5},
            {"kinds": ("segfault",)},
            {"kinds": ()},
            {"max_attempt": 0},
            {"hang_seconds": 0.0},
        ),
    )
    def test_invalid_schedules_rejected(self, kwargs):
        with pytest.raises(DetectorConfigurationError):
            FaultSchedule(**kwargs)

    def test_crash_downgrades_outside_worker_processes(self):
        schedule = FaultSchedule(rate=1.0, kinds=("crash",))
        with pytest.raises(TransientTaskError, match="downgraded"):
            apply_fault(schedule, "stide:4", 1)

    def test_wrapped_factory_faults_at_construction(self):
        schedule = FaultSchedule(rate=1.0, kinds=("raise",))
        factory = wrap_factory(lambda window_length: window_length, schedule)
        with pytest.raises(TransientTaskError):
            factory(5)


class TestRaiseRecovery:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_transient_raises_recover_bit_identically(
        self, backend, suite, reference_map
    ):
        schedule = FaultSchedule(rate=0.2, seed=7, kinds=("raise",))
        fired = _fired_blocks(schedule, suite)
        assert fired, "seed must inject at least one fault"
        performance_map, report = _faulted_sweep(suite, backend, schedule)
        _assert_identical(performance_map, reference_map, suite)
        assert report.total_retries >= len(fired)
        assert report.failed == 0
        assert report.degradations == ()


class TestHangRecovery:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_hangs_time_out_and_recover_bit_identically(
        self, backend, suite, reference_map
    ):
        schedule = FaultSchedule(
            rate=0.15, seed=3, kinds=("hang",), hang_seconds=0.4
        )
        fired = _fired_blocks(schedule, suite)
        assert fired, "seed must inject at least one hang"
        performance_map, report = _faulted_sweep(
            suite, backend, schedule, task_timeout=0.1
        )
        _assert_identical(performance_map, reference_map, suite)
        assert report.total_retries >= len(fired)
        timed_out = [
            task for task in report.tasks if any("wall-clock" in e for e in task.errors)
        ]
        assert {t.window_length for t in timed_out} >= set(fired)


class TestLatencyFaults:
    def test_delay_is_deterministic_and_bounded(self):
        schedule = FaultSchedule(
            rate=1.0, kinds=("latency",), latency_seconds=0.02
        )
        delays = [schedule.latency_delay(f"stide:{w}", 1) for w in range(2, 16)]
        assert delays == [
            schedule.latency_delay(f"stide:{w}", 1) for w in range(2, 16)
        ]
        assert all(0.0 <= delay < 0.02 for delay in delays)
        assert len(set(delays)) > 1  # the draw actually varies by key

    def test_latency_stalls_then_proceeds(self):
        import time

        schedule = FaultSchedule(
            rate=1.0, kinds=("latency",), latency_seconds=0.02
        )
        started = time.monotonic()
        corrupt = apply_fault(schedule, "stide:4", 1)
        elapsed = time.monotonic() - started
        assert corrupt is False  # the task completes normally
        assert elapsed >= schedule.latency_delay("stide:4", 1)

    def test_invalid_latency_seconds_rejected(self):
        with pytest.raises(DetectorConfigurationError, match="latency_seconds"):
            FaultSchedule(latency_seconds=0.0)

    @pytest.mark.parametrize("backend", ("serial", "thread"))
    def test_slow_tasks_still_finish_bit_identically(
        self, backend, suite, reference_map
    ):
        # Unlike hang, latency stays below any armed timeout: the sweep
        # must succeed with zero retries, merely slower.
        schedule = FaultSchedule(
            rate=0.3, seed=2, kinds=("latency",), latency_seconds=0.02
        )
        fired = _fired_blocks(schedule, suite)
        assert fired, "seed must inject at least one latency stall"
        performance_map, report = _faulted_sweep(
            suite, backend, schedule, task_timeout=30.0
        )
        _assert_identical(performance_map, reference_map, suite)
        assert report.total_retries == 0
        assert report.failed == 0


class TestCorruptionRecovery:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_corrupt_blocks_fail_validation_and_recover(
        self, backend, suite, reference_map
    ):
        schedule = FaultSchedule(rate=0.2, seed=11, kinds=("corrupt",))
        fired = _fired_blocks(schedule, suite)
        assert fired, "seed must inject at least one corruption"
        performance_map, report = _faulted_sweep(suite, backend, schedule)
        _assert_identical(performance_map, reference_map, suite)
        assert report.total_retries >= len(fired)
        corrupted = [
            task for task in report.tasks if any("corrupt" in e for e in task.errors)
        ]
        assert {t.window_length for t in corrupted} >= set(fired)


class TestBrokenPoolDegradation:
    def test_process_crash_degrades_to_thread(self, suite, reference_map):
        schedule = FaultSchedule(rate=0.15, seed=5, kinds=("crash",))
        assert _fired_blocks(schedule, suite), "seed must inject a crash"
        performance_map, report = _faulted_sweep(suite, "process", schedule)
        _assert_identical(performance_map, reference_map, suite)
        assert report.requested_backend == "process"
        assert report.final_backend in ("thread", "serial")
        assert report.degradations
        assert report.degradations[0].startswith("process->thread")

    def test_degradation_can_be_disabled(self, suite):
        schedule = FaultSchedule(rate=0.15, seed=5, kinds=("crash",))
        with pytest.raises(SweepAbortedError, match="no degradation"):
            _faulted_sweep(suite, "process", schedule, degrade=False)

    @pytest.mark.parametrize("backend", ("serial", "thread"))
    def test_crash_downgrades_to_transient_off_process(
        self, backend, suite, reference_map
    ):
        schedule = FaultSchedule(rate=0.15, seed=5, kinds=("crash",))
        performance_map, report = _faulted_sweep(suite, backend, schedule)
        _assert_identical(performance_map, reference_map, suite)
        assert report.degradations == ()
        assert report.total_retries >= 1


class TestAcceptance:
    """ISSUE acceptance criteria, asserted end to end."""

    def test_twenty_percent_transient_failure_rate_is_bit_identical(
        self, suite, reference_map
    ):
        # Acceptance: a 20% injected transient failure rate must yield
        # a map bit-identical to the fault-free run.
        schedule = FaultSchedule(rate=0.2, seed=7, kinds=("raise", "corrupt"))
        for backend in BACKENDS:
            performance_map, report = _faulted_sweep(suite, backend, schedule)
            _assert_identical(performance_map, reference_map, suite)
            assert report.failed == 0

    def test_killed_sweep_resumes_from_checkpoint(
        self, suite, reference_map, tmp_path
    ):
        # Acceptance: a sweep killed mid-run resumes, skipping at least
        # the checkpointed fraction of cells (asserted via RunReport).
        checkpoint = tmp_path / "killed.jsonl"
        kill_schedule = FaultSchedule(rate=0.1, seed=2, kinds=("fatal",))
        with pytest.raises(SweepAbortedError) as excinfo:
            _faulted_sweep(
                suite,
                "serial",
                kill_schedule,
                retry=RetryPolicy(retries=0),
                checkpoint=checkpoint,
            )
        aborted_report = excinfo.value.report
        assert aborted_report is not None and aborted_report.failed == 1
        checkpointed = sum(
            len(cells) for cells in checkpoint_load(checkpoint).values()
        )
        assert 0 < checkpointed < suite.case_count()
        assert checkpointed == aborted_report.cells_completed

        engine = SweepEngine(executor="serial", resilience=ResiliencePolicy())
        maps, report = engine.sweep_with_report(
            [FAMILY], suite, checkpoint=checkpoint, resume_from=checkpoint
        )
        _assert_identical(maps[FAMILY], reference_map, suite)
        assert report.cells_resumed == checkpointed
        assert report.resumed_fraction >= checkpointed / suite.case_count()
        assert report.completed + report.resumed == len(suite.window_lengths)
