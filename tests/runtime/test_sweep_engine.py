"""Tests for repro.runtime.engine — parallel/sequential equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.neural import NeuralDetector
from repro.detectors.registry import create_detector
from repro.detectors.stide import StideDetector
from repro.evaluation.experiment import run_paper_experiment
from repro.evaluation.performance_map import build_performance_map
from repro.exceptions import EvaluationError
from repro.runtime import MEMOIZED_FAMILIES, SweepEngine, WindowCache

#: The families sharing the window cache in the tentpole sweep.
FAMILIES = ("stide", "t-stide", "markov", "lane-brodley")


def _assert_maps_identical(expected, actual, suite) -> None:
    """Cell-for-cell equality over the full grid."""
    assert expected.detector_name == actual.detector_name
    assert expected.anomaly_sizes == actual.anomaly_sizes
    assert expected.window_lengths == actual.window_lengths
    for anomaly_size in suite.anomaly_sizes:
        for window_length in suite.window_lengths:
            assert expected.cell(anomaly_size, window_length) == actual.cell(
                anomaly_size, window_length
            ), (
                f"{expected.detector_name} cell (AS={anomaly_size}, "
                f"DW={window_length}) differs between serial and engine"
            )


class TestParallelSequentialEquivalence:
    @pytest.fixture(scope="class")
    def serial_maps(self, suite):
        return {name: build_performance_map(name, suite) for name in FAMILIES}

    def test_thread_sweep_matches_serial_cell_for_cell(self, suite, serial_maps):
        engine = SweepEngine(max_workers=4, executor="thread")
        engine_maps = engine.sweep(FAMILIES, suite)
        for name in FAMILIES:
            _assert_maps_identical(serial_maps[name], engine_maps[name], suite)

    def test_serial_executor_matches_serial_loop(self, suite, serial_maps):
        engine_maps = SweepEngine(executor="serial").sweep(FAMILIES, suite)
        for name in FAMILIES:
            _assert_maps_identical(serial_maps[name], engine_maps[name], suite)

    def test_process_sweep_matches_serial(self, suite, serial_maps):
        engine = SweepEngine(max_workers=2, executor="process")
        engine_maps = engine.sweep(("stide",), suite)
        _assert_maps_identical(serial_maps["stide"], engine_maps["stide"], suite)

    def test_build_performance_map_max_workers_wiring(self, suite, serial_maps):
        engine_map = build_performance_map("markov", suite, max_workers=4)
        _assert_maps_identical(serial_maps["markov"], engine_map, suite)

    def test_run_paper_experiment_engine_wiring(self, suite, serial_maps):
        result = run_paper_experiment(
            suite=suite,
            detectors=("stide", "lane-brodley"),
            engine=SweepEngine(max_workers=2),
        )
        for name in ("stide", "lane-brodley"):
            _assert_maps_identical(serial_maps[name], result.map_for(name), suite)

    def test_factory_spec_matches_name_spec(self, suite, serial_maps):
        alphabet_size = suite.training.alphabet.size

        def factory(window_length: int) -> StideDetector:
            return StideDetector(window_length, alphabet_size)

        engine_map = SweepEngine(max_workers=2).build_map(factory, suite)
        _assert_maps_identical(serial_maps["stide"], engine_map, suite)


class TestMemoizedScoring:
    def test_expensive_families_are_memoized_by_default(self):
        assert {"lane-brodley", "neural-network"} <= MEMOIZED_FAMILIES

    @pytest.mark.parametrize("name", sorted(MEMOIZED_FAMILIES - {"neural-network"}))
    def test_memoized_responses_equal_score_stream(self, suite, name):
        detector = create_detector(
            name, 5, suite.training.alphabet.size
        ).fit(suite.training.stream)
        stream = suite.stream(suite.anomaly_sizes[0]).stream
        direct = detector.score_stream(stream)
        cache = WindowCache()
        unique_rows, inverse = cache.unique(stream, 5, detector.alphabet_size)
        memoized = detector.score_windows(unique_rows)[inverse]
        np.testing.assert_array_equal(direct, memoized)

    def test_neural_memoized_responses_equal_score_stream(self):
        training = np.tile(np.arange(5), 60)
        detector = NeuralDetector(3, 5).fit(training)
        stream = np.tile(np.arange(5), 8)
        direct = detector.score_stream(stream)
        cache = WindowCache()
        unique_rows, inverse = cache.unique(stream, 3, 5)
        memoized = detector.score_windows(unique_rows)[inverse]
        np.testing.assert_array_equal(direct, memoized)


class TestEngineValidation:
    def test_unknown_executor_rejected(self):
        with pytest.raises(EvaluationError, match="unknown executor"):
            SweepEngine(executor="fibers")

    def test_zero_workers_rejected(self):
        with pytest.raises(EvaluationError, match="max_workers"):
            SweepEngine(max_workers=0)

    def test_empty_detector_list_rejected(self, suite):
        with pytest.raises(EvaluationError, match="at least one detector"):
            SweepEngine().sweep((), suite)

    def test_duplicate_families_rejected(self, suite):
        with pytest.raises(EvaluationError, match="duplicate"):
            SweepEngine().sweep(("stide", "stide"), suite)

    def test_process_executor_rejects_factories(self, suite):
        alphabet_size = suite.training.alphabet.size

        def factory(window_length: int) -> StideDetector:
            return StideDetector(window_length, alphabet_size)

        with pytest.raises(EvaluationError, match="registered detector names"):
            SweepEngine(executor="process").sweep((factory,), suite)


class TestCacheSharing:
    def test_families_share_one_training_sort(self, suite):
        engine = SweepEngine(max_workers=2)
        engine.sweep(("stide", "t-stide"), suite)
        stats = engine.window_cache.stats
        # The second family's fits should hit the first family's
        # training-stream artifacts at every window length.
        assert stats.hits > 0
        assert stats.hit_rate > 0.3
