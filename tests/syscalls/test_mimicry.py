"""Tests for repro.syscalls.mimicry — evading Stide with padding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors import StideDetector
from repro.exceptions import DataGenerationError
from repro.sequences.ngram_store import NgramStore
from repro.syscalls.mimicry import MimicryResult, pad_to_mimic, window_is_normal

# Normal behavior: the cycle 0 1 2 3.  The attacker must execute 0 then 2
# (a foreign adjacency) — but 0 1 2 is normal, so padding with 1 hides it.
NORMAL = [0, 1, 2, 3] * 30
EXPLOIT = (0, 2)


@pytest.fixture()
def store() -> NgramStore:
    return NgramStore.from_stream(NORMAL, [2])


class TestWindowIsNormal:
    def test_all_known_windows(self, store):
        assert window_is_normal((0, 1, 2, 3), store, 2)

    def test_foreign_window_detected(self, store):
        assert not window_is_normal((0, 2), store, 2)

    def test_short_sequence_trivially_normal(self, store):
        assert window_is_normal((0,), store, 2)


class TestPadToMimic:
    def test_successful_padding(self, store):
        result = pad_to_mimic(EXPLOIT, store, window_length=2)
        assert result.succeeded
        assert result.overhead >= 1
        # The exploit calls appear in order within the padded sequence.
        padded = list(result.padded)
        i = padded.index(0)
        assert 2 in padded[i + 1 :]
        # And the padded sequence is invisible to Stide.
        stide = StideDetector(2, 4).fit(NORMAL)
        assert stide.score_stream(np.asarray(result.padded)).max() == 0.0

    def test_direct_exploit_is_visible(self):
        stide = StideDetector(2, 4).fit(NORMAL)
        assert stide.score_stream(np.asarray(EXPLOIT)).max() == 1.0

    def test_impossible_mimicry_fails_cleanly(self):
        # Normal behavior never emits symbol 3 after anything but 2, and
        # never allows a path from 3 back to 3; a 3->3 requirement with
        # no padding budget cannot be hidden.
        store = NgramStore.from_stream([0, 1, 2, 3] * 10, [2])
        result = pad_to_mimic((3, 3), store, window_length=2, max_padding=0)
        assert not result.succeeded
        assert result.padded is None
        assert result.overhead == 0

    def test_budget_exhaustion_returns_failure(self, store):
        result = pad_to_mimic(
            (0, 2), store, window_length=2, max_attempts=1
        )
        assert not result.succeeded
        assert result.attempts >= 1

    def test_rejects_empty_exploit(self, store):
        with pytest.raises(DataGenerationError, match="non-empty"):
            pad_to_mimic((), store, window_length=2)

    def test_rejects_bad_window(self, store):
        with pytest.raises(DataGenerationError, match="window_length"):
            pad_to_mimic(EXPLOIT, store, window_length=1)

    def test_result_dataclass(self):
        result = MimicryResult(padded=None, original_length=2, attempts=5)
        assert not result.succeeded
        assert result.overhead == 0


class TestOnPaperCorpus:
    def test_mfs_can_be_hidden_from_small_windows(self, training, suite):
        """A size-2 MFS (foreign pair) can be padded into normality —
        turning a Stide-capable case into a mimicry miss."""
        anomaly = suite.anomaly(2).sequence
        store = training.analyzer.store_for(2)
        stide = StideDetector(2, 8).fit(training.stream)
        assert stide.score_stream(np.asarray(anomaly)).max() == 1.0
        result = pad_to_mimic(anomaly, store, window_length=2, max_padding=16)
        assert result.succeeded
        assert stide.score_stream(np.asarray(result.padded)).max() == 0.0
