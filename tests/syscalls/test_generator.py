"""Tests for repro.syscalls.generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataGenerationError, EvaluationError
from repro.syscalls.generator import (
    LabeledTrace,
    TraceGenerator,
    build_dataset,
    truth_window_regions,
)
from repro.syscalls.programs import lpr_model, sendmail_model


@pytest.fixture(scope="module")
def generator() -> TraceGenerator:
    return TraceGenerator(sendmail_model())


class TestLabeledTrace:
    def test_rejects_inconsistent_labeling(self):
        with pytest.raises(DataGenerationError, match="together"):
            LabeledTrace(
                stream=np.zeros(5, dtype=np.int64),
                intrusion_region=(0, 2),
                exploit_name=None,
            )

    def test_rejects_out_of_range_region(self):
        with pytest.raises(DataGenerationError, match="out of range"):
            LabeledTrace(
                stream=np.zeros(5, dtype=np.int64),
                intrusion_region=(3, 9),
                exploit_name="x",
            )

    def test_is_intrusion(self):
        normal = LabeledTrace(
            stream=np.zeros(3, dtype=np.int64),
            intrusion_region=None,
            exploit_name=None,
        )
        assert not normal.is_intrusion


class TestTruthWindowRegions:
    def test_normal_trace_has_no_regions(self):
        trace = LabeledTrace(
            stream=np.zeros(10, dtype=np.int64),
            intrusion_region=None,
            exploit_name=None,
        )
        assert truth_window_regions(trace, 3) == []

    def test_region_covers_overlapping_windows(self):
        trace = LabeledTrace(
            stream=np.zeros(10, dtype=np.int64),
            intrusion_region=(4, 6),
            exploit_name="x",
        )
        # Windows of length 3 overlapping [4, 6): starts 2..5.
        assert truth_window_regions(trace, 3) == [(2, 6)]

    def test_region_clipped_to_valid_starts(self):
        trace = LabeledTrace(
            stream=np.zeros(6, dtype=np.int64),
            intrusion_region=(4, 6),
            exploit_name="x",
        )
        assert truth_window_regions(trace, 4) == [(1, 3)]

    def test_rejects_bad_window(self):
        trace = LabeledTrace(
            stream=np.zeros(6, dtype=np.int64),
            intrusion_region=None,
            exploit_name=None,
        )
        with pytest.raises(EvaluationError, match="window_length"):
            truth_window_regions(trace, 0)


class TestSessions:
    def test_normal_session_concatenates_paths(self, generator):
        rng = np.random.default_rng(0)
        session = generator.normal_session(rng, path_count=10)
        assert not session.is_intrusion
        assert len(session.stream) >= 10 * 5  # paths are at least 5 calls

    def test_sample_paths_rejects_zero(self, generator):
        with pytest.raises(DataGenerationError, match="path_count"):
            generator.sample_paths(np.random.default_rng(0), 0)

    def test_intrusion_session_embeds_exploit(self, generator):
        rng = np.random.default_rng(1)
        session = generator.intrusion_session(rng, path_count=8)
        assert session.is_intrusion
        start, stop = session.intrusion_region
        exploit = generator.model.path(session.exploit_name)
        embedded = generator.alphabet.decode(session.stream[start:stop].tolist())
        assert embedded == exploit.calls

    def test_named_exploit_selection(self, generator):
        rng = np.random.default_rng(2)
        session = generator.intrusion_session(
            rng, exploit_name="overflow-shell"
        )
        assert session.exploit_name == "overflow-shell"

    def test_normal_path_cannot_be_named_as_exploit(self, generator):
        rng = np.random.default_rng(3)
        with pytest.raises(DataGenerationError, match="not an exploit"):
            generator.intrusion_session(rng, exploit_name="smtp-accept")

    def test_coverage_session_visits_all_paths(self, generator):
        session = generator.coverage_session()
        total = sum(len(p.calls) for p in generator.model.paths)
        assert len(session.stream) == total

    def test_sampling_deterministic_under_seed(self, generator):
        a = generator.normal_session(np.random.default_rng(9), 10)
        b = generator.normal_session(np.random.default_rng(9), 10)
        assert np.array_equal(a.stream, b.stream)

    def test_weights_respected(self, generator):
        rng = np.random.default_rng(4)
        paths = generator.sample_paths(rng, 2000)
        names = [p.name for p in paths]
        assert names.count("smtp-receive") > names.count("bounce-handling") * 20


class TestBuildDataset:
    def test_split_sizes(self, syscall_dataset):
        assert len(syscall_dataset.test_normal) == 20
        assert len(syscall_dataset.test_intrusions) == 15
        # Training has the requested sessions plus coverage sessions.
        assert len(syscall_dataset.training) == 150 + 1

    def test_training_is_normal_only(self, syscall_dataset):
        assert all(not trace.is_intrusion for trace in syscall_dataset.training)

    def test_intrusions_are_labeled(self, syscall_dataset):
        assert all(trace.is_intrusion for trace in syscall_dataset.test_intrusions)

    def test_training_streams_helper(self, syscall_dataset):
        streams = syscall_dataset.training_streams()
        assert len(streams) == len(syscall_dataset.training)
        assert all(isinstance(stream, np.ndarray) for stream in streams)

    def test_rare_paths_present_in_training(self, syscall_dataset):
        """Coverage sessions guarantee every rare path was seen."""
        model = sendmail_model()
        alphabet = syscall_dataset.alphabet
        pooled = [stream.tolist() for stream in syscall_dataset.training_streams()]
        for rare in model.rare_paths:
            encoded = list(alphabet.encode(rare.calls))
            found = any(
                encoded == stream[i : i + len(encoded)]
                for stream in pooled
                for i in range(len(stream) - len(encoded) + 1)
            )
            assert found, f"rare path {rare.name} absent from training"

    def test_different_programs_share_alphabet(self):
        lpr = build_dataset(lpr_model(), training_sessions=5,
                            test_normal_sessions=2, test_intrusion_sessions=2)
        assert lpr.alphabet.size == len(lpr.alphabet.symbols)
        assert "execve" in lpr.alphabet
