"""Tests for repro.syscalls.programs."""

from __future__ import annotations

import pytest

from repro.exceptions import DataGenerationError
from repro.syscalls.programs import (
    SYSCALL_NAMES,
    ExecutionPath,
    ProgramModel,
    all_program_models,
    ftpd_model,
    lpr_model,
    sendmail_model,
)


class TestExecutionPath:
    def test_rejects_empty_calls(self):
        with pytest.raises(DataGenerationError, match="no calls"):
            ExecutionPath("x", (), weight=1.0)

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(DataGenerationError, match="weight"):
            ExecutionPath("x", ("open",), weight=0.0)

    def test_rejects_unknown_syscalls(self):
        with pytest.raises(DataGenerationError, match="unknown system calls"):
            ExecutionPath("x", ("open", "frobnicate"), weight=1.0)


class TestProgramModel:
    def test_requires_two_normal_paths(self):
        path = ExecutionPath("only", ("open", "close"), weight=1.0)
        exploit = ExecutionPath("sploit", ("execve",), weight=1.0)
        with pytest.raises(DataGenerationError, match="two normal paths"):
            ProgramModel("p", (path,), (exploit,))

    def test_requires_an_exploit(self):
        a = ExecutionPath("a", ("open",), weight=1.0)
        b = ExecutionPath("b", ("close",), weight=1.0)
        with pytest.raises(DataGenerationError, match="exploit"):
            ProgramModel("p", (a, b), ())

    def test_rejects_duplicate_path_names(self):
        a = ExecutionPath("dup", ("open",), weight=1.0)
        b = ExecutionPath("b", ("close",), weight=1.0)
        exploit = ExecutionPath("dup", ("execve",), weight=1.0)
        with pytest.raises(DataGenerationError, match="duplicate"):
            ProgramModel("p", (a, b), (exploit,))

    def test_path_lookup(self):
        model = sendmail_model()
        assert model.path("smtp-accept").name == "smtp-accept"
        assert model.path("overflow-shell") in model.exploit_paths

    def test_unknown_path_raises(self):
        with pytest.raises(DataGenerationError, match="no path"):
            sendmail_model().path("nope")

    def test_rare_paths_identified_by_weight(self):
        model = sendmail_model()
        rare_names = {path.name for path in model.rare_paths}
        assert "bounce-handling" in rare_names
        assert "smtp-receive" not in rare_names


class TestBundledModels:
    @pytest.mark.parametrize(
        "model", all_program_models(), ids=lambda m: m.name
    )
    def test_models_well_formed(self, model):
        assert len(model.paths) >= 2
        assert model.exploit_paths
        assert model.rare_paths  # every bundled model has rare behavior

    @pytest.mark.parametrize(
        "model", all_program_models(), ids=lambda m: m.name
    )
    def test_exploits_contain_foreign_adjacency(self, model):
        """Each exploit has an adjacent call pair no normal path emits."""
        normal_pairs = set()
        for path in model.paths:
            normal_pairs.update(zip(path.calls, path.calls[1:]))
            # Junction pairs between any two normal paths are also
            # potentially observable in sessions.
            for other in model.paths:
                normal_pairs.add((path.calls[-1], other.calls[0]))
        for exploit in model.exploit_paths:
            exploit_pairs = set(zip(exploit.calls, exploit.calls[1:]))
            assert exploit_pairs - normal_pairs, (
                f"{model.name}/{exploit.name} has no foreign adjacency"
            )

    def test_three_distinct_programs(self):
        names = {model.name for model in all_program_models()}
        assert names == {"sendmail", "lpr", "ftpd"}

    def test_models_share_the_global_vocabulary(self):
        for model in (sendmail_model(), lpr_model(), ftpd_model()):
            for path in model.paths + model.exploit_paths:
                assert all(call in SYSCALL_NAMES for call in path.calls)
