"""Tests for repro.syscalls.fleet — profile granularity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DetectorConfigurationError, EvaluationError
from repro.syscalls import build_dataset, ftpd_model, lpr_model, sendmail_model
from repro.syscalls.fleet import FleetMonitor
from repro.syscalls.generator import TraceGenerator

WINDOW = 4


@pytest.fixture(scope="module")
def fleet() -> FleetMonitor:
    datasets = [
        build_dataset(
            model,
            training_sessions=120,
            test_normal_sessions=5,
            test_intrusion_sessions=5,
        )
        for model in (sendmail_model(), lpr_model(), ftpd_model())
    ]
    return FleetMonitor(datasets, window_length=WINDOW)


class TestConstruction:
    def test_programs_registered(self, fleet):
        assert set(fleet.programs) == {"sendmail", "lpr", "ftpd"}

    def test_window_and_alphabet(self, fleet):
        assert fleet.window_length == WINDOW
        assert "execve" in fleet.alphabet

    def test_rejects_empty(self):
        with pytest.raises(DetectorConfigurationError, match="at least one"):
            FleetMonitor([], window_length=4)

    def test_rejects_duplicates(self):
        dataset = build_dataset(
            lpr_model(), training_sessions=5,
            test_normal_sessions=1, test_intrusion_sessions=1,
        )
        with pytest.raises(DetectorConfigurationError, match="duplicate"):
            FleetMonitor([dataset, dataset], window_length=4)

    def test_unknown_program_raises(self, fleet):
        with pytest.raises(EvaluationError, match="not monitored"):
            fleet.profile("httpd")


class TestGranularity:
    """Per-program profiles see cross-program misuse; pooled does not."""

    def test_own_behavior_is_normal_everywhere(self, fleet):
        rng = np.random.default_rng(0)
        session = TraceGenerator(sendmail_model()).normal_session(rng, 20)
        assert fleet.score("sendmail", session.stream).max() == 0.0
        assert fleet.score_pooled(session.stream).max() == 0.0

    def test_cross_program_behavior_flagged_by_owner_profile(self, fleet):
        """An lpr-style session inside sendmail's stream is anomalous
        for sendmail's profile..."""
        rng = np.random.default_rng(1)
        lpr_session = TraceGenerator(lpr_model()).normal_session(rng, 20)
        responses = fleet.score("sendmail", lpr_session.stream)
        assert responses.max() == 1.0

    def test_cross_program_behavior_invisible_to_pooled(self, fleet):
        """...but normal for the pooled profile (any program's behavior
        is 'self')."""
        rng = np.random.default_rng(1)
        lpr_session = TraceGenerator(lpr_model()).normal_session(rng, 20)
        responses = fleet.score_pooled(lpr_session.stream)
        # Interior windows of lpr paths are pooled-normal; only path
        # junction combinations unseen in pooled training may fire.
        lpr_interior_alarm_rate = (responses == 1.0).mean()
        owner = (fleet.score("sendmail", lpr_session.stream) == 1.0).mean()
        assert lpr_interior_alarm_rate < owner / 2

    def test_exploits_caught_by_both(self, fleet):
        rng = np.random.default_rng(2)
        intrusion = TraceGenerator(sendmail_model()).intrusion_session(rng, 20)
        assert fleet.score("sendmail", intrusion.stream).max() == 1.0
        assert fleet.score_pooled(intrusion.stream).max() == 1.0
