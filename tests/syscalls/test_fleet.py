"""Tests for repro.syscalls.fleet — profile granularity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DetectorConfigurationError, EvaluationError
from repro.syscalls import build_dataset, ftpd_model, lpr_model, sendmail_model
from repro.syscalls.fleet import FleetMonitor
from repro.syscalls.generator import TraceGenerator

WINDOW = 4


@pytest.fixture(scope="module")
def fleet() -> FleetMonitor:
    datasets = [
        build_dataset(
            model,
            training_sessions=120,
            test_normal_sessions=5,
            test_intrusion_sessions=5,
        )
        for model in (sendmail_model(), lpr_model(), ftpd_model())
    ]
    return FleetMonitor(datasets, window_length=WINDOW)


class TestConstruction:
    def test_programs_registered(self, fleet):
        assert set(fleet.programs) == {"sendmail", "lpr", "ftpd"}

    def test_window_and_alphabet(self, fleet):
        assert fleet.window_length == WINDOW
        assert "execve" in fleet.alphabet

    def test_rejects_empty(self):
        with pytest.raises(DetectorConfigurationError, match="at least one"):
            FleetMonitor([], window_length=4)

    def test_rejects_duplicates(self):
        dataset = build_dataset(
            lpr_model(), training_sessions=5,
            test_normal_sessions=1, test_intrusion_sessions=1,
        )
        with pytest.raises(DetectorConfigurationError, match="duplicate"):
            FleetMonitor([dataset, dataset], window_length=4)

    def test_unknown_program_raises(self, fleet):
        with pytest.raises(EvaluationError, match="not monitored"):
            fleet.profile("httpd")


class TestGranularity:
    """Per-program profiles see cross-program misuse; pooled does not."""

    def test_own_behavior_is_normal_everywhere(self, fleet):
        rng = np.random.default_rng(0)
        session = TraceGenerator(sendmail_model()).normal_session(rng, 20)
        assert fleet.score("sendmail", session.stream).max() == 0.0
        assert fleet.score_pooled(session.stream).max() == 0.0

    def test_cross_program_behavior_flagged_by_owner_profile(self, fleet):
        """An lpr-style session inside sendmail's stream is anomalous
        for sendmail's profile..."""
        rng = np.random.default_rng(1)
        lpr_session = TraceGenerator(lpr_model()).normal_session(rng, 20)
        responses = fleet.score("sendmail", lpr_session.stream)
        assert responses.max() == 1.0

    def test_cross_program_behavior_invisible_to_pooled(self, fleet):
        """...but normal for the pooled profile (any program's behavior
        is 'self')."""
        rng = np.random.default_rng(1)
        lpr_session = TraceGenerator(lpr_model()).normal_session(rng, 20)
        responses = fleet.score_pooled(lpr_session.stream)
        # Interior windows of lpr paths are pooled-normal; only path
        # junction combinations unseen in pooled training may fire.
        lpr_interior_alarm_rate = (responses == 1.0).mean()
        owner = (fleet.score("sendmail", lpr_session.stream) == 1.0).mean()
        assert lpr_interior_alarm_rate < owner / 2

    def test_exploits_caught_by_both(self, fleet):
        rng = np.random.default_rng(2)
        intrusion = TraceGenerator(sendmail_model()).intrusion_session(rng, 20)
        assert fleet.score("sendmail", intrusion.stream).max() == 1.0
        assert fleet.score_pooled(intrusion.stream).max() == 1.0


class TestSharedCache:
    def test_profiles_share_one_window_cache(self, fleet):
        cache = fleet.cache
        assert fleet.pooled_profile()._window_cache is cache
        for program in fleet.programs:
            assert fleet.profile(program)._window_cache is cache

    def test_pooled_fit_reuses_per_program_slides(self):
        datasets = [
            build_dataset(
                model,
                training_sessions=40,
                test_normal_sessions=1,
                test_intrusion_sessions=1,
            )
            for model in (sendmail_model(), lpr_model())
        ]
        monitor = FleetMonitor(datasets, window_length=WINDOW)
        # The pooled fit re-slides streams the per-program fits already
        # slid, so the shared cache must have served real hits.
        assert monitor.cache.stats.hits > 0


class TestSyntheticFleet:
    def _fleet(self, **kwargs):
        from repro.syscalls.fleet import FleetSpec, SyntheticFleet

        kwargs.setdefault("tenants", 500)
        kwargs.setdefault("seed", 11)
        return SyntheticFleet(FleetSpec(**kwargs))

    def test_streams_are_deterministic_and_order_free(self):
        one, two = self._fleet(), self._fleet()
        for tenant in (0, 7, 499):
            np.testing.assert_array_equal(
                one.training_stream(tenant), two.training_stream(tenant)
            )
            np.testing.assert_array_equal(
                one.batch(tenant, 3), two.batch(tenant, 3)
            )
        assert not np.array_equal(
            one.training_stream(1), one.training_stream(2)
        )
        assert not np.array_equal(one.batch(1, 0), one.batch(1, 1))

    def test_streams_respect_spec_shape(self):
        fleet = self._fleet(train_events=80, batch_events=16)
        stream = fleet.training_stream(42)
        assert stream.shape == (80,)
        assert stream.dtype == np.int64
        assert stream.min() >= 0 and stream.max() < 8
        assert fleet.batch(42, 0).shape == (16,)

    def test_program_mix_is_heterogeneous(self):
        fleet = self._fleet(train_events=400)
        assert fleet.program_of(0) != fleet.program_of(1)
        assert fleet.program_of(0) == fleet.program_of(3)
        # Different programs draw from different phrase books: their
        # window vocabularies differ.
        from repro.sequences.windows import pack_windows, windows_array

        def vocabulary(tenant):
            windows = windows_array(fleet.training_stream(tenant), 4)
            return set(pack_windows(windows, 8).tolist())

        assert vocabulary(0) != vocabulary(1)
        assert vocabulary(0) == vocabulary(0)

    def test_zipf_activity_is_skewed_and_normalized(self):
        fleet = self._fleet(tenants=10_000)
        weights = fleet.activity_weights
        assert weights.shape == (10_000,)
        assert weights.sum() == pytest.approx(1.0)
        top = np.sort(weights)[::-1]
        assert top[:100].sum() > 0.25  # 1% of tenants carry >25% traffic
        draws = fleet.sample_tenants(0, 2000)
        assert draws.shape == (2000,)
        np.testing.assert_array_equal(draws, fleet.sample_tenants(0, 2000))
        assert not np.array_equal(draws, fleet.sample_tenants(1, 2000))

    def test_spec_validation(self):
        from repro.syscalls.fleet import FleetSpec, SyntheticFleet

        with pytest.raises(ValueError, match="tenants"):
            SyntheticFleet(FleetSpec(tenants=0))
        with pytest.raises(ValueError, match="program mix"):
            SyntheticFleet(FleetSpec(tenants=5, programs=()))
        with pytest.raises(ValueError, match="zipf_exponent"):
            SyntheticFleet(FleetSpec(tenants=5, zipf_exponent=0.0))
