"""Tests for repro.analysis.report."""

from __future__ import annotations

import pytest

from repro.analysis.report import (
    combination_report,
    format_table,
    map_agreement_report,
)
from repro.ensemble.coverage import Coverage
from repro.evaluation.performance_map import build_performance_map
from repro.exceptions import EvaluationError

GRID = frozenset((a, w) for a in (2, 3) for w in (2, 3))


def cov(cells, label):
    return Coverage(cells=frozenset(cells), grid=GRID, label=label)


class TestFormatTable:
    def test_alignment(self):
        table = format_table(("name", "n"), [("stide", 84), ("markov", 112)])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "stide" in lines[2]
        # Columns align: the second column starts at the same offset
        # in the header and every data row.
        offset = lines[0].index("  n")
        assert lines[2].index("  84") == offset
        assert lines[3].index("  112") == offset

    def test_title(self):
        table = format_table(("a",), [("x",)], title="Caption")
        assert table.splitlines()[0] == "Caption"

    def test_empty_rows(self):
        table = format_table(("a", "b"), [])
        assert len(table.splitlines()) == 2

    def test_rejects_ragged_rows(self):
        with pytest.raises(EvaluationError, match="cells"):
            format_table(("a", "b"), [("only-one",)])


class TestCombinationReport:
    def test_subset_statement(self):
        stide = cov({(2, 2)}, "stide")
        markov = cov({(2, 2), (3, 3)}, "markov")
        text = combination_report(stide, markov)
        assert "subset" in text
        assert "adds 1 cells over stide" in text

    def test_no_gain_statement(self):
        stide = cov({(2, 2)}, "stide")
        lane_brodley = cov(set(), "lane-brodley")
        text = combination_report(stide, lane_brodley)
        assert "no improvement" in text

    def test_partial_overlap_statement(self):
        a = cov({(2, 2), (2, 3)}, "a")
        b = cov({(2, 3), (3, 3)}, "b")
        assert "partially overlap" in combination_report(a, b)

    def test_shared_blind_region_counted(self):
        a = cov({(2, 2)}, "a")
        b = cov({(2, 2)}, "b")
        assert "shared blind region: 3/4" in combination_report(a, b)


class TestMapAgreementReport:
    def test_requires_two_maps(self, suite):
        only = {"stide": build_performance_map("stide", suite)}
        with pytest.raises(EvaluationError, match="two maps"):
            map_agreement_report(only)

    def test_reports_paper_relations(self, suite):
        maps = {
            "stide": build_performance_map("stide", suite),
            "markov": build_performance_map("markov", suite),
        }
        text = map_agreement_report(maps)
        assert "stide subset of markov" in text
        assert "112" in text
