"""Tests for repro.analysis.export."""

from __future__ import annotations

import csv
import json

import pytest

from repro.analysis.export import (
    load_map_json,
    map_to_json,
    metrics_to_dict,
    performance_map_rows,
    write_map_csv,
    write_map_json,
)
from repro.evaluation.metrics import DetectionMetrics
from repro.evaluation.performance_map import build_performance_map
from repro.exceptions import EvaluationError


@pytest.fixture(scope="module")
def stide_map(suite):
    return build_performance_map("stide", suite)


class TestRows:
    def test_one_row_per_cell(self, stide_map):
        rows = performance_map_rows(stide_map)
        assert len(rows) == 112

    def test_row_schema(self, stide_map):
        row = performance_map_rows(stide_map)[0]
        assert set(row) == {
            "detector",
            "anomaly_size",
            "window_length",
            "response_class",
            "max_in_span",
            "max_outside_span",
            "spurious_alarms",
        }
        assert row["detector"] == "stide"


class TestCsv:
    def test_roundtrip_readable(self, tmp_path, stide_map):
        path = write_map_csv(tmp_path / "maps.csv", stide_map)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 112
        capable = [row for row in rows if row["response_class"] == "capable"]
        assert len(capable) == 84

    def test_multiple_maps_concatenate(self, tmp_path, suite, stide_map):
        lb_map = build_performance_map("lane-brodley", suite)
        path = write_map_csv(tmp_path / "maps.csv", stide_map, lb_map)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 224
        assert {row["detector"] for row in rows} == {"stide", "lane-brodley"}

    def test_requires_a_map(self, tmp_path):
        with pytest.raises(EvaluationError, match="at least one"):
            write_map_csv(tmp_path / "maps.csv")


class TestJson:
    def test_document_schema(self, stide_map):
        document = json.loads(map_to_json(stide_map))
        assert document["detector"] == "stide"
        assert document["anomaly_sizes"] == list(range(2, 10))
        assert document["detection_fraction"] == pytest.approx(0.75)
        assert len(document["cells"]) == 112

    def test_write_and_load(self, tmp_path, stide_map):
        path = write_map_json(tmp_path / "map.json", stide_map)
        loaded = load_map_json(path)
        assert loaded["detector"] == "stide"

    def test_load_missing(self, tmp_path):
        with pytest.raises(EvaluationError, match="not found"):
            load_map_json(tmp_path / "nope.json")

    def test_load_malformed(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(EvaluationError, match="malformed"):
            load_map_json(bad)


class TestMetrics:
    def test_metrics_to_dict(self):
        metrics = DetectionMetrics(
            traces=3,
            traces_with_truth=2,
            hits=2,
            misses=0,
            alarm_windows=5,
            false_alarm_windows=1,
            normal_windows=100,
        )
        record = metrics_to_dict(metrics)
        assert record["hit_rate"] == 1.0
        assert record["false_alarm_rate"] == pytest.approx(0.01)
        json.dumps(record)  # JSON-ready
