"""Tests for repro.analysis.census — the 'Why 6?' analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.census import MfsCensus, mfs_census
from repro.exceptions import EvaluationError
from repro.sequences.foreign import ForeignSequenceAnalyzer


class TestMfsCensus:
    def test_paper_corpus_has_mfs_at_every_size(self, training):
        census = mfs_census(training.analyzer)
        for length in range(2, 10):
            assert census.counts[length] > 0

    def test_recommendation_is_largest_length(self, training):
        census = mfs_census(training.analyzer)
        assert census.recommended_stide_window() == 9

    def test_total_sums_counts(self, training):
        census = mfs_census(training.analyzer, lengths=(2, 3))
        assert census.total == census.counts[2] + census.counts[3]

    def test_rows_sorted(self, training):
        census = mfs_census(training.analyzer, lengths=(4, 2, 3))
        assert [length for length, _count in census.rows()] == [2, 3, 4]

    def test_limit_caps_counts(self, training):
        capped = mfs_census(training.analyzer, lengths=(2,), limit=3)
        assert capped.counts[2] == 3
        assert capped.limit == 3

    def test_rare_parts_only_reduces_counts(self, training):
        unrestricted = mfs_census(training.analyzer, lengths=(4,))
        restricted = mfs_census(
            training.analyzer, lengths=(4,), rare_parts_only=True
        )
        assert restricted.counts[4] <= unrestricted.counts[4]

    def test_rejects_bad_lengths(self, training):
        with pytest.raises(EvaluationError, match=">= 2"):
            mfs_census(training.analyzer, lengths=(1, 2))
        with pytest.raises(EvaluationError, match="non-empty"):
            mfs_census(training.analyzer, lengths=())

    def test_training_length_recorded(self, training):
        census = mfs_census(training.analyzer, lengths=(2,))
        assert census.training_length == training.length


class TestNoMfsCase:
    def test_saturated_corpus_yields_empty_census(self):
        """A corpus containing every pair has no size-2 MFS."""
        # de Bruijn-ish: all 2-grams over {0,1} present.
        stream = np.asarray([0, 0, 1, 1, 0, 0, 1, 1, 0])
        analyzer = ForeignSequenceAnalyzer(stream)
        census = mfs_census(analyzer, lengths=(2,))
        assert census.counts[2] == 0
        assert census.max_length_present is None
        assert census.recommended_stide_window() is None

    def test_dataclass_is_frozen(self):
        census = MfsCensus(counts={2: 0}, limit=None, training_length=10)
        with pytest.raises(AttributeError):
            census.limit = 5  # type: ignore[misc]
