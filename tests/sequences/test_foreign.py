"""Tests for repro.sequences.foreign — the anomaly vocabulary."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import WindowError
from repro.sequences.foreign import (
    ForeignSequenceAnalyzer,
    is_foreign,
    is_minimal_foreign,
    is_rare,
    minimal_foreign_sequences,
    proper_subsequences,
)
from repro.sequences.ngram_store import NgramStore

# A stream where (0,1), (1,2), (2,0) are common and (1,3), (3,0) occur once.
STREAM = [0, 1, 2] * 20 + [0, 1, 3, 0, 1, 2]


class TestForeignness:
    @pytest.fixture()
    def store(self) -> NgramStore:
        return NgramStore.from_stream(STREAM, [1, 2, 3])

    def test_present_sequence_not_foreign(self, store: NgramStore):
        assert not is_foreign((0, 1), store)

    def test_absent_sequence_foreign(self, store: NgramStore):
        assert is_foreign((2, 2), store)

    def test_rare_requires_occurrence(self, store: NgramStore):
        assert is_rare((1, 3), store, threshold=0.05)
        assert not is_rare((2, 2), store, threshold=0.05)  # foreign, not rare
        assert not is_rare((0, 1), store, threshold=0.05)  # common


class TestMinimalForeign:
    @pytest.fixture()
    def store(self) -> NgramStore:
        return NgramStore.from_stream(STREAM, [1, 2, 3])

    def test_join_of_present_parts_is_mfs(self, store: NgramStore):
        # (2, 0, 1) has parts (2,0) and (0,1) present... it also occurs.
        assert store.contains((2, 0, 1))
        # (3, 0, 1) occurs; (1, 3, 0) occurs; (1,3,0,... build a length-3:
        # (2, 0, 2)? parts (2,0) present, (0,2) absent -> not MFS.
        assert not is_minimal_foreign((2, 0, 2), store)

    def test_mfs_detected(self):
        stream = [0, 1, 2, 3, 0, 1, 2, 3, 1, 2, 0]
        store = NgramStore.from_stream(stream, [2, 3])
        # (3, 1, 2) occurs? 3,1 at index 7-8; (3,1,2) occurs. Take (2,3,1):
        # parts (2,3) and (3,1) occur; full (2,3,1) occurs too -> not foreign.
        assert not is_minimal_foreign((2, 3, 1), store)
        # (1, 2, 1): parts (1,2) present, (2,1) absent -> not minimal.
        assert not is_minimal_foreign((1, 2, 1), store)

    def test_rejects_length_one(self):
        store = NgramStore.from_stream(STREAM, [1, 2])
        with pytest.raises(WindowError, match="length >= 2"):
            is_minimal_foreign((0,), store)

    def test_proper_subsequences_enumeration(self):
        subs = set(proper_subsequences((1, 2, 3)))
        assert subs == {(1,), (2,), (3,), (1, 2), (2, 3)}


class TestAnalyzer:
    @pytest.fixture()
    def analyzer(self) -> ForeignSequenceAnalyzer:
        return ForeignSequenceAnalyzer(STREAM, rare_threshold=0.05)

    def test_rejects_empty_stream(self):
        with pytest.raises(WindowError, match="non-empty"):
            ForeignSequenceAnalyzer([])

    def test_rejects_2d_stream(self):
        with pytest.raises(WindowError, match="one-dimensional"):
            ForeignSequenceAnalyzer(np.zeros((2, 2)))

    def test_rejects_bad_threshold(self):
        with pytest.raises(WindowError, match="rare_threshold"):
            ForeignSequenceAnalyzer(STREAM, rare_threshold=1.5)

    def test_lazily_extends_lengths(self, analyzer: ForeignSequenceAnalyzer):
        store = analyzer.store_for(5)
        assert 5 in store.lengths
        assert analyzer.store_for(5) is store  # cached

    def test_count_and_foreign(self, analyzer: ForeignSequenceAnalyzer):
        assert analyzer.count((0, 1)) > 0
        assert analyzer.is_foreign((2, 2))
        assert not analyzer.is_foreign((0, 1))

    def test_rare_and_common(self, analyzer: ForeignSequenceAnalyzer):
        assert analyzer.is_rare((1, 3))
        assert analyzer.is_common((0, 1))
        assert not analyzer.is_common((1, 3))

    def test_training_length(self, analyzer: ForeignSequenceAnalyzer):
        assert analyzer.training_length == len(STREAM)

    def test_verify_minimal_foreign_rejects_present(self, analyzer):
        with pytest.raises(WindowError, match="not foreign"):
            analyzer.verify_minimal_foreign((0, 1))

    def test_verify_minimal_foreign_rejects_non_minimal(self, analyzer):
        # (2, 2, 0): subsequence (2, 2) is itself foreign.
        assert analyzer.is_foreign((2, 2, 0))
        with pytest.raises(WindowError, match="not minimal"):
            analyzer.verify_minimal_foreign((2, 2, 0))

    def test_enumeration_requires_length_two(self, analyzer):
        with pytest.raises(WindowError, match=">= 2"):
            analyzer.minimal_foreign_sequences(1)

    def test_enumeration_respects_limit(self, analyzer):
        unlimited = analyzer.minimal_foreign_sequences(2)
        limited = analyzer.minimal_foreign_sequences(2, limit=1)
        assert len(limited) == 1
        assert limited[0] == unlimited[0]

    def test_enumerated_sequences_verify(self, analyzer):
        for candidate in analyzer.minimal_foreign_sequences(3):
            analyzer.verify_minimal_foreign(candidate)

    def test_convenience_wrapper_matches_analyzer(self, analyzer):
        direct = minimal_foreign_sequences(STREAM, 3, rare_threshold=0.05)
        assert direct == analyzer.minimal_foreign_sequences(3)


class TestAgainstPaperCorpus:
    """MFS machinery on the real training corpus (shared fixture)."""

    def test_paper_sizes_all_constructible(self, training):
        analyzer = training.analyzer
        for size in training.params.anomaly_sizes:
            rare_only = size >= 3
            found = analyzer.minimal_foreign_sequences(
                size, rare_parts_only=rare_only, limit=1
            )
            assert found, f"no MFS of size {size}"

    def test_shortcut_agrees_with_exhaustive_oracle(self, training):
        analyzer = training.analyzer
        for size in (3, 5, 7):
            for candidate in analyzer.minimal_foreign_sequences(
                size, rare_parts_only=True, limit=3
            ):
                assert analyzer.is_minimal_foreign(candidate)
                analyzer.verify_minimal_foreign(candidate)


@settings(max_examples=30)
@given(
    st.lists(st.integers(0, 3), min_size=10, max_size=100),
    st.integers(2, 4),
)
def test_mfs_shortcut_equals_definition(stream: list[int], length: int):
    """is_minimal_foreign agrees with the from-definition check everywhere."""
    store = NgramStore.from_stream(stream, list(range(1, length + 1)))
    if len(stream) < length:
        return
    # Enumerate every possible sequence of this length over the observed alphabet.
    alphabet = sorted(set(stream))
    import itertools

    for candidate in itertools.product(alphabet, repeat=length):
        by_definition = not store.contains(candidate) and all(
            store.contains(sub) for sub in proper_subsequences(candidate)
        )
        assert is_minimal_foreign(candidate, store) == by_definition
