"""Tests for repro.sequences.windows."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import WindowError
from repro.sequences.windows import (
    iter_windows,
    pack_window,
    pack_windows,
    window_count,
    windows_array,
)


class TestWindowCount:
    def test_exact_fit(self):
        assert window_count(5, 5) == 1

    def test_typical(self):
        assert window_count(10, 3) == 8

    def test_stream_shorter_than_window(self):
        assert window_count(2, 5) == 0

    def test_zero_length_stream(self):
        assert window_count(0, 3) == 0

    def test_rejects_nonpositive_window(self):
        with pytest.raises(WindowError, match="positive"):
            window_count(10, 0)

    def test_rejects_negative_stream(self):
        with pytest.raises(WindowError, match="non-negative"):
            window_count(-1, 2)


class TestIterWindows:
    def test_yields_all_windows_in_order(self):
        assert list(iter_windows([1, 2, 3, 4], 2)) == [(1, 2), (2, 3), (3, 4)]

    def test_window_equal_to_stream(self):
        assert list(iter_windows([1, 2], 2)) == [(1, 2)]

    def test_empty_when_stream_too_short(self):
        assert list(iter_windows([1], 2)) == []

    def test_rejects_nonpositive_window(self):
        with pytest.raises(WindowError, match="positive"):
            list(iter_windows([1, 2], 0))


class TestWindowsArray:
    def test_shape(self):
        view = windows_array(np.arange(10), 4)
        assert view.shape == (7, 4)

    def test_rows_are_consecutive_windows(self):
        view = windows_array(np.asarray([5, 6, 7, 8]), 2)
        assert view.tolist() == [[5, 6], [6, 7], [7, 8]]

    def test_accepts_plain_sequences(self):
        assert windows_array([1, 2, 3], 2).shape == (2, 2)

    def test_rejects_short_stream(self):
        with pytest.raises(WindowError, match="shorter"):
            windows_array([1], 2)

    def test_rejects_2d_input(self):
        with pytest.raises(WindowError, match="one-dimensional"):
            windows_array(np.zeros((2, 2)), 2)


class TestPacking:
    def test_pack_single_window(self):
        # (1, 2, 3) over alphabet 8 -> 1*64 + 2*8 + 3.
        assert pack_window((1, 2, 3), 8) == 83

    def test_pack_matches_manual_base_conversion(self):
        windows = np.asarray([[0, 0], [0, 1], [1, 0]])
        assert pack_windows(windows, 4).tolist() == [0, 1, 4]

    def test_pack_rejects_out_of_range_codes(self):
        with pytest.raises(WindowError, match="out of range"):
            pack_windows(np.asarray([[0, 9]]), 8)

    def test_pack_rejects_negative_codes(self):
        with pytest.raises(WindowError, match="out of range"):
            pack_windows(np.asarray([[-1, 0]]), 8)

    def test_pack_rejects_overflow(self):
        with pytest.raises(WindowError, match="overflow"):
            pack_windows(np.zeros((1, 40), dtype=np.int64), 64)

    def test_pack_rejects_tiny_alphabet(self):
        with pytest.raises(WindowError, match="alphabet_size"):
            pack_windows(np.zeros((1, 2), dtype=np.int64), 1)

    def test_pack_rejects_non_2d(self):
        with pytest.raises(WindowError, match="2-D"):
            pack_windows(np.zeros(3, dtype=np.int64), 8)


@given(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=1, max_value=8),
    st.data(),
)
def test_packing_is_injective(alphabet_size: int, length: int, data):
    """Distinct windows pack to distinct integers."""
    windows = data.draw(
        st.lists(
            st.tuples(
                *[st.integers(0, alphabet_size - 1) for _ in range(length)]
            ),
            min_size=1,
            max_size=30,
            unique=True,
        )
    )
    packed = pack_windows(np.asarray(windows, dtype=np.int64), alphabet_size)
    assert len(set(packed.tolist())) == len(windows)


@given(st.lists(st.integers(0, 7), min_size=1, max_size=60), st.integers(1, 10))
def test_iter_windows_agrees_with_array(stream: list[int], window_length: int):
    """The pure-Python and NumPy window iterators agree."""
    expected = list(iter_windows(stream, window_length))
    assert len(expected) == window_count(len(stream), window_length)
    if expected:
        view = windows_array(np.asarray(stream), window_length)
        assert [tuple(row) for row in view.tolist()] == expected
