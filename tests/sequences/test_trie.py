"""Tests for repro.sequences.trie."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import WindowError
from repro.sequences.trie import SequenceTrie


class TestInsertAndLookup:
    def test_exact_count(self):
        trie = SequenceTrie()
        trie.insert((1, 2, 3))
        trie.insert((1, 2, 3), count=2)
        assert trie.count((1, 2, 3)) == 3

    def test_absent_sequence_count_zero(self):
        trie = SequenceTrie()
        trie.insert((1, 2))
        assert trie.count((1, 3)) == 0

    def test_prefix_is_not_exact_match(self):
        trie = SequenceTrie()
        trie.insert((1, 2, 3))
        assert trie.count((1, 2)) == 0
        assert trie.contains((1, 2, 3))
        assert not trie.contains((1, 2))

    def test_rejects_empty_sequence(self):
        with pytest.raises(WindowError, match="empty"):
            SequenceTrie().insert(())

    def test_rejects_nonpositive_count(self):
        with pytest.raises(WindowError, match="positive"):
            SequenceTrie().insert((1,), count=0)


class TestPrefixQueries:
    @pytest.fixture()
    def trie(self) -> SequenceTrie:
        t = SequenceTrie()
        t.insert((1, 2, 3), count=2)
        t.insert((1, 2, 4))
        t.insert((5,))
        return t

    def test_prefix_count(self, trie: SequenceTrie):
        assert trie.prefix_count((1, 2)) == 3

    def test_prefix_count_root(self, trie: SequenceTrie):
        assert trie.prefix_count(()) == 4

    def test_has_prefix(self, trie: SequenceTrie):
        assert trie.has_prefix((1,))
        assert not trie.has_prefix((2,))

    def test_successors(self, trie: SequenceTrie):
        assert trie.successors((1, 2)) == {3: 2, 4: 1}

    def test_successors_of_unknown_prefix(self, trie: SequenceTrie):
        assert trie.successors((9,)) == {}

    def test_total_insertions(self, trie: SequenceTrie):
        assert trie.total_insertions == 4


class TestIteration:
    def test_iter_sequences_yields_end_counts(self):
        trie = SequenceTrie()
        trie.insert((2, 1))
        trie.insert((1,), count=3)
        assert dict(trie.iter_sequences()) == {(1,): 3, (2, 1): 1}

    def test_len_counts_distinct_sequences(self):
        trie = SequenceTrie()
        trie.insert((1, 2))
        trie.insert((1, 2))
        trie.insert((3,))
        assert len(trie) == 2

    def test_repr(self):
        trie = SequenceTrie()
        trie.insert((1,))
        assert "distinct=1" in repr(trie)


class TestFromStream:
    def test_counts_equal_ngram_multiplicity(self):
        trie = SequenceTrie.from_stream([0, 1, 0, 1, 0], 2)
        assert trie.count((0, 1)) == 2
        assert trie.count((1, 0)) == 2
        assert trie.total_insertions == 4


@given(st.lists(st.lists(st.integers(0, 3), min_size=1, max_size=6), max_size=30))
def test_trie_agrees_with_dict_counting(sequences: list[list[int]]):
    """Exact-match counts agree with a plain dictionary tally."""
    trie = SequenceTrie()
    tally: dict[tuple[int, ...], int] = {}
    for sequence in sequences:
        trie.insert(sequence)
        key = tuple(sequence)
        tally[key] = tally.get(key, 0) + 1
    for key, expected in tally.items():
        assert trie.count(key) == expected
    assert dict(trie.iter_sequences()) == tally


@given(st.lists(st.integers(0, 2), min_size=3, max_size=40))
def test_prefix_counts_are_monotone(stream: list[int]):
    """Extending a prefix can never increase its pass count."""
    trie = SequenceTrie.from_stream(stream, 3)
    for window in {tuple(stream[i : i + 3]) for i in range(len(stream) - 2)}:
        assert (
            trie.prefix_count(window[:1])
            >= trie.prefix_count(window[:2])
            >= trie.prefix_count(window)
        )
