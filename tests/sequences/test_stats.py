"""Tests for repro.sequences.stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import WindowError
from repro.sequences.ngram_store import NgramStore
from repro.sequences.stats import (
    conditional_entropy,
    frequency_spectrum,
    ngram_space_saturation,
    symbol_distribution,
)

# 80% (0,1) alternation + one rare excursion through 2.
STREAM = [0, 1] * 40 + [0, 2, 0, 1]


class TestFrequencySpectrum:
    @pytest.fixture()
    def store(self) -> NgramStore:
        return NgramStore.from_stream(STREAM, [2])

    def test_partition_is_exhaustive(self, store):
        spectrum = frequency_spectrum(store, 2, rare_threshold=0.05)
        assert spectrum.common + spectrum.rare == spectrum.distinct
        assert spectrum.common_mass + spectrum.rare_mass == pytest.approx(1.0)

    def test_dominant_pairs_are_common(self, store):
        spectrum = frequency_spectrum(store, 2, rare_threshold=0.05)
        assert spectrum.common == 2  # (0,1) and (1,0)
        assert spectrum.common_mass > 0.9

    def test_rare_pairs_counted(self, store):
        spectrum = frequency_spectrum(store, 2, rare_threshold=0.05)
        assert spectrum.rare == 2  # (0,2) and (2,0)

    def test_describe(self, store):
        text = frequency_spectrum(store, 2, 0.05).describe()
        assert "distinct" in text and "common" in text

    def test_empty_store(self):
        store = NgramStore([3])
        spectrum = frequency_spectrum(store, 3, 0.05)
        assert spectrum.total == 0
        assert spectrum.common_mass == 0.0

    def test_paper_corpus_structure(self, training):
        """The paper's ~98%/2% split shows up in the pair spectrum."""
        store = training.analyzer.store_for(2)
        spectrum = frequency_spectrum(
            store, 2, training.params.rare_threshold
        )
        assert spectrum.common == 8  # the cycle pairs
        assert spectrum.common_mass > 0.95
        assert spectrum.rare >= 7  # the jump pairs


class TestConditionalEntropy:
    def test_deterministic_stream_has_zero_entropy(self):
        store = NgramStore.from_stream([0, 1, 2, 3] * 30, [1, 2])
        assert conditional_entropy(store, 1) == pytest.approx(0.0, abs=1e-9)

    def test_uniform_stream_has_full_entropy(self):
        rng = np.random.default_rng(0)
        stream = rng.integers(0, 4, size=40_000)
        store = NgramStore.from_stream(stream, [1, 2])
        assert conditional_entropy(store, 1) == pytest.approx(2.0, abs=0.02)

    def test_paper_corpus_near_deterministic(self, training):
        store = training.analyzer.store_for(1, 2)
        entropy = conditional_entropy(store, 1)
        assert 0.0 < entropy < 0.3  # tiny nondeterminism only

    def test_rejects_bad_context_length(self):
        store = NgramStore.from_stream([0, 1], [1, 2])
        with pytest.raises(WindowError, match="context_length"):
            conditional_entropy(store, 0)

    def test_empty_store_zero(self):
        store = NgramStore([1, 2])
        assert conditional_entropy(store, 1) == 0.0


class TestSaturation:
    def test_full_saturation(self):
        # All 4 pairs over {0,1} present.
        store = NgramStore.from_stream([0, 0, 1, 1, 0, 1, 0, 0], [2])
        assert ngram_space_saturation(store, 2, 2) == 1.0

    def test_partial_saturation(self, training):
        store = training.analyzer.store_for(2)
        saturation = ngram_space_saturation(store, 2, 8)
        # 8 cycle pairs + 7 jump pairs of 64 possible.
        assert saturation == pytest.approx(15 / 64)

    def test_rejects_tiny_alphabet(self):
        store = NgramStore.from_stream([0, 0], [2])
        with pytest.raises(WindowError, match="alphabet_size"):
            ngram_space_saturation(store, 2, 1)


class TestSymbolDistribution:
    def test_sums_to_one(self):
        distribution = symbol_distribution(np.asarray([0, 1, 1, 2]), 4)
        assert distribution.sum() == pytest.approx(1.0)
        assert distribution.tolist() == [0.25, 0.5, 0.25, 0.0]

    def test_empty_stream(self):
        assert symbol_distribution(np.asarray([], dtype=int), 3).tolist() == [
            0.0,
            0.0,
            0.0,
        ]

    def test_rejects_2d(self):
        with pytest.raises(WindowError, match="1-D"):
            symbol_distribution(np.zeros((2, 2), dtype=int), 2)

    def test_rejects_out_of_alphabet(self):
        with pytest.raises(WindowError, match="outside"):
            symbol_distribution(np.asarray([0, 9]), 4)

    def test_paper_corpus_roughly_uniform(self, training):
        distribution = symbol_distribution(training.stream, 8)
        assert np.allclose(distribution, 1 / 8, atol=0.02)
