"""Tests for repro.sequences.ngram_store."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import WindowError
from repro.sequences.ngram_store import NgramStore

STREAM = [0, 1, 2, 0, 1, 2, 0, 1, 3]


class TestConstruction:
    def test_requires_a_length(self):
        with pytest.raises(WindowError, match="at least one"):
            NgramStore([])

    def test_rejects_nonpositive_lengths(self):
        with pytest.raises(WindowError, match="positive"):
            NgramStore([0, 2])

    def test_lengths_sorted_and_deduplicated(self):
        assert NgramStore([3, 2, 3]).lengths == (2, 3)

    def test_from_stream_counts(self):
        store = NgramStore.from_stream(STREAM, [2])
        assert store.count((0, 1)) == 3

    def test_update_rejects_2d(self):
        with pytest.raises(WindowError, match="one-dimensional"):
            NgramStore([2]).update(np.zeros((2, 2)))


class TestCounts:
    @pytest.fixture()
    def store(self) -> NgramStore:
        return NgramStore.from_stream(STREAM, [1, 2, 3])

    def test_total_is_window_count(self, store: NgramStore):
        assert store.total(2) == len(STREAM) - 1

    def test_total_unindexed_length_raises(self, store: NgramStore):
        with pytest.raises(WindowError, match="not indexed"):
            store.total(5)

    def test_distinct(self, store: NgramStore):
        assert store.distinct(1) == 4

    def test_count_absent_ngram_is_zero(self, store: NgramStore):
        assert store.count((3, 3)) == 0

    def test_counts_view_is_copy(self, store: NgramStore):
        view = store.counts(2)
        view[(9, 9)] = 1
        assert store.count((9, 9)) == 0

    def test_contains(self, store: NgramStore):
        assert store.contains((1, 2))
        assert not store.contains((2, 2))

    def test_dunder_contains(self, store: NgramStore):
        assert (1, 2) in store
        assert (9, 9, 9, 9) not in store  # unindexed length: False, not raise
        assert "xy" not in store

    def test_counts_sum_to_total(self, store: NgramStore):
        for length in store.lengths:
            assert sum(store.counts(length).values()) == store.total(length)

    def test_multiple_streams_do_not_count_junctions(self):
        store = NgramStore([2])
        store.update([0, 1])
        store.update([2, 3])
        assert store.count((1, 2)) == 0
        assert store.total(2) == 2

    def test_update_accumulates(self):
        store = NgramStore([2])
        store.update([0, 1])
        store.update([0, 1])
        assert store.count((0, 1)) == 2


class TestFrequencies:
    @pytest.fixture()
    def store(self) -> NgramStore:
        return NgramStore.from_stream(STREAM, [2])

    def test_relative_frequency(self, store: NgramStore):
        assert store.relative_frequency((0, 1)) == pytest.approx(3 / 8)

    def test_relative_frequency_absent(self, store: NgramStore):
        assert store.relative_frequency((3, 0)) == 0.0

    def test_relative_frequency_empty_store(self):
        store = NgramStore([2])
        assert store.relative_frequency((0, 1)) == 0.0

    def test_rare_ngrams(self, store: NgramStore):
        rare = store.rare_ngrams(2, threshold=0.2)
        assert (1, 3) in rare  # occurs once out of 8 windows
        assert (0, 1) not in rare

    def test_common_ngrams_complement_rare(self, store: NgramStore):
        threshold = 0.2
        rare = set(store.rare_ngrams(2, threshold))
        common = set(store.common_ngrams(2, threshold))
        assert rare | common == set(store.ngrams(2))
        assert not rare & common

    def test_rare_ngrams_empty_store(self):
        assert NgramStore([2]).rare_ngrams(2, 0.5) == []


class TestSuccessors:
    def test_successor_counts(self):
        store = NgramStore.from_stream(STREAM, [1, 2])
        assert store.successor_counts((0,)) == {1: 3}
        assert store.successor_counts((1,)) == {2: 2, 3: 1}

    def test_successor_counts_unknown_context(self):
        store = NgramStore.from_stream(STREAM, [2])
        assert store.successor_counts((7,)) == {}

    def test_successor_counts_requires_indexed_span(self):
        store = NgramStore.from_stream(STREAM, [2])
        with pytest.raises(WindowError, match="not indexed"):
            store.successor_counts((0, 1))


class TestMergeDisjoint:
    def test_merge_adds_new_lengths(self):
        base = NgramStore.from_stream(STREAM, [2])
        extension = NgramStore.from_stream(STREAM, [3])
        base.merge_disjoint(extension)
        assert base.lengths == (2, 3)
        assert base.count((0, 1, 2)) == 2

    def test_merge_rejects_shared_lengths(self):
        base = NgramStore.from_stream(STREAM, [2])
        with pytest.raises(WindowError, match="sharing"):
            base.merge_disjoint(NgramStore.from_stream(STREAM, [2, 4]))

    def test_repr_mentions_lengths(self):
        assert "2" in repr(NgramStore.from_stream(STREAM, [2]))


@given(
    st.lists(st.integers(0, 4), min_size=1, max_size=80),
    st.integers(1, 6),
)
def test_counts_sum_to_window_count_property(stream: list[int], length: int):
    """Sum of all n-gram counts equals the stream's window count."""
    store = NgramStore.from_stream(stream, [length])
    assert sum(store.counts(length).values()) == max(0, len(stream) - length + 1)


@given(st.lists(st.integers(0, 3), min_size=2, max_size=60))
def test_successors_consistent_with_counts(stream: list[int]):
    """Successor counts of a context sum to occurrences of extendable context."""
    store = NgramStore.from_stream(stream, [1, 2])
    for symbol in range(4):
        successors = store.successor_counts((symbol,))
        # Context occurrences that can extend = occurrences not at stream end.
        extendable = stream[:-1].count(symbol)
        assert sum(successors.values()) == extendable
