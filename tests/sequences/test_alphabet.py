"""Tests for repro.sequences.alphabet."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import AlphabetError
from repro.sequences.alphabet import Alphabet


class TestConstruction:
    def test_preserves_symbol_order(self):
        alphabet = Alphabet(["read", "write", "open"])
        assert alphabet.symbols == ("read", "write", "open")

    def test_size_counts_symbols(self):
        assert Alphabet("abc").size == 3

    def test_empty_alphabet_rejected(self):
        with pytest.raises(AlphabetError, match="at least one symbol"):
            Alphabet([])

    def test_duplicate_symbols_rejected(self):
        with pytest.raises(AlphabetError, match="duplicate"):
            Alphabet(["a", "b", "a"])

    def test_of_size_uses_paper_naming(self):
        alphabet = Alphabet.of_size(8)
        assert alphabet.symbols == (1, 2, 3, 4, 5, 6, 7, 8)

    def test_of_size_rejects_nonpositive(self):
        with pytest.raises(AlphabetError, match="positive"):
            Alphabet.of_size(0)

    def test_from_stream_orders_by_first_appearance(self):
        alphabet = Alphabet.from_stream(["b", "a", "b", "c", "a"])
        assert alphabet.symbols == ("b", "a", "c")


class TestEncoding:
    def test_encode_symbol_returns_position(self):
        alphabet = Alphabet("xyz")
        assert alphabet.encode_symbol("y") == 1

    def test_decode_code_inverts_encode(self):
        alphabet = Alphabet.of_size(8)
        assert alphabet.decode_code(alphabet.encode_symbol(5)) == 5

    def test_unknown_symbol_raises(self):
        with pytest.raises(AlphabetError, match="not in alphabet"):
            Alphabet("ab").encode_symbol("z")

    def test_unhashable_symbol_raises(self):
        with pytest.raises(AlphabetError, match="unhashable"):
            Alphabet("ab").encode_symbol([1, 2])

    def test_out_of_range_code_raises(self):
        with pytest.raises(AlphabetError, match="out of range"):
            Alphabet("ab").decode_code(2)

    def test_negative_code_raises(self):
        with pytest.raises(AlphabetError, match="out of range"):
            Alphabet("ab").decode_code(-1)

    def test_encode_stream(self):
        alphabet = Alphabet("abc")
        assert alphabet.encode("cab") == (2, 0, 1)

    def test_decode_stream(self):
        alphabet = Alphabet("abc")
        assert alphabet.decode([2, 0, 1]) == ("c", "a", "b")


class TestProtocols:
    def test_contains_member(self):
        assert "a" in Alphabet("ab")

    def test_contains_non_member(self):
        assert "z" not in Alphabet("ab")

    def test_contains_unhashable_is_false(self):
        assert [1] not in Alphabet("ab")

    def test_len(self):
        assert len(Alphabet("abcd")) == 4

    def test_iteration_yields_symbols_in_order(self):
        assert list(Alphabet("ab")) == ["a", "b"]

    def test_equality_by_symbols(self):
        assert Alphabet("ab") == Alphabet(["a", "b"])

    def test_inequality(self):
        assert Alphabet("ab") != Alphabet("ba")

    def test_equality_with_other_type(self):
        assert Alphabet("ab") != "ab"

    def test_hashable(self):
        assert len({Alphabet("ab"), Alphabet(["a", "b"])}) == 1

    def test_repr_small(self):
        assert "Alphabet" in repr(Alphabet("ab"))

    def test_repr_large_is_truncated(self):
        text = repr(Alphabet(range(50)))
        assert "50 symbols" in text


@given(st.lists(st.integers(), unique=True, min_size=1, max_size=30))
def test_roundtrip_property(symbols: list[int]):
    """encode then decode is the identity on any stream of members."""
    alphabet = Alphabet(symbols)
    stream = symbols * 2
    assert list(alphabet.decode(alphabet.encode(stream))) == stream


@given(st.lists(st.integers(), unique=True, min_size=1, max_size=30))
def test_codes_are_dense(symbols: list[int]):
    """Codes are exactly 0..size-1 with no gaps."""
    alphabet = Alphabet(symbols)
    codes = sorted(alphabet.encode_symbol(s) for s in symbols)
    assert codes == list(range(len(symbols)))
