"""Unit tests for the three-state circuit breaker."""

from __future__ import annotations

import pytest

from repro.exceptions import ScoreRefusal
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def breaker(clock: FakeClock) -> CircuitBreaker:
    return CircuitBreaker(
        failure_threshold=3, reset_timeout=2.0, clock=clock, name="t"
    )


class TestStateMachine:
    def test_starts_closed_and_admits(self, breaker):
        assert breaker.state == CLOSED
        breaker.admit()  # no raise

    def test_trips_after_threshold_consecutive_failures(self, breaker):
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_success_resets_the_failure_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert breaker.failures == 0
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_refuses_with_retry_after(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(0.5)
        with pytest.raises(ScoreRefusal) as excinfo:
            breaker.admit()
        refusal = excinfo.value
        assert refusal.status == 503
        assert refusal.reason == "breaker-open"
        assert refusal.retryable
        assert refusal.retry_after == pytest.approx(1.5, abs=0.01)

    def test_half_open_after_reset_timeout(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.1)
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.1)
        breaker.admit()  # the probe
        with pytest.raises(ScoreRefusal, match="half-open"):
            breaker.admit()  # concurrent request while probing

    def test_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.1)
        breaker.admit()
        breaker.record_success()
        assert breaker.state == CLOSED
        breaker.admit()

    def test_probe_failure_reopens_and_restarts_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.1)
        breaker.admit()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(1.9)  # not enough for the fresh cool-down
        with pytest.raises(ScoreRefusal):
            breaker.admit()
        clock.advance(0.2)
        breaker.admit()  # probe again

    def test_snapshot_reports_state(self, breaker, clock):
        snapshot = breaker.snapshot()
        assert snapshot == {"state": CLOSED, "failures": 0, "retry_after": 0.0}
        for _ in range(3):
            breaker.record_failure()
        snapshot = breaker.snapshot()
        assert snapshot["state"] == OPEN
        assert snapshot["retry_after"] == pytest.approx(2.0)


class TestValidation:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)

    def test_rejects_bad_reset_timeout(self):
        with pytest.raises(ValueError, match="reset_timeout"):
            CircuitBreaker(reset_timeout=0)
