"""Fleet model store integration: delta-fits, tiers, restart replay.

With a :class:`~repro.runtime.shardstore.ShardedStore` attached, the
tenant store must (a) fold ingested batches into hot detectors via
``update_batch`` instead of refitting, (b) revive evicted or restarted
models from the warm mmap tier and close the gap with one delta
replay, and (c) produce scores bit-identical to the original
invalidate-and-refit path throughout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.shardstore import ShardedStore
from repro.runtime.store import ArtifactStore
from repro.runtime.telemetry import (
    Telemetry,
    activated,
    check_trace_counters,
)
from repro.serve.tenants import TenantStateStore


def _models(tmp_path, **kwargs):
    kwargs.setdefault("shards", 4)
    kwargs.setdefault("cold", ArtifactStore(tmp_path / "cold"))
    return ShardedStore(tmp_path / "models", **kwargs)


def _drive(store, tenant_id="acme", batches=6, seed=3):
    """Create a tenant, ingest ``batches`` chunks, return the chunks."""
    rng = np.random.default_rng(seed)
    state = store.open(tenant_id, alphabet_size=8)
    chunks = [rng.integers(0, 8, size=24) for _ in range(batches)]
    for chunk in chunks:
        store.ingest(state, store.validate_events(chunk.tolist(), 8))
    return state, chunks


class TestDeltaServing:
    def test_ingest_delta_updates_instead_of_refitting(self, tmp_path):
        collector = Telemetry()
        store = TenantStateStore(
            tmp_path / "state", models=_models(tmp_path)
        )
        state, _ = _drive(store, batches=1)
        with activated(collector):
            detector = store.detector_for(state, "stide", 6)
            for _ in range(5):
                batch = np.random.default_rng(9).integers(0, 8, size=16)
                store.ingest(state, store.validate_events(batch.tolist(), 8))
            assert store.detector_for(state, "stide", 6) is detector
        counters = collector.metrics.snapshot()["counters"]
        assert counters.get("serve.fit", 0) == 1  # the initial fit only
        assert counters.get("serve.delta.update", 0) == 5

    @pytest.mark.parametrize("family", ["stide", "t-stide", "markov"])
    def test_scores_bit_identical_to_refit_path(self, tmp_path, family):
        fleet = TenantStateStore(
            tmp_path / "fleet", models=_models(tmp_path)
        )
        plain = TenantStateStore(tmp_path / "plain")
        for store in (fleet, plain):
            state, _ = _drive(store, batches=4)
            store.detector_for(state, family, 5)  # fit early, then delta
            extra = np.random.default_rng(17).integers(0, 8, size=40)
            store.ingest(state, store.validate_events(extra.tolist(), 8))
        probe = np.random.default_rng(21).integers(0, 8, size=30)
        fleet_state = fleet.get("acme")
        plain_state = plain.get("acme")
        np.testing.assert_array_equal(
            fleet.detector_for(fleet_state, family, 5).score_stream(probe),
            plain.detector_for(plain_state, family, 5).score_stream(probe),
        )

    def test_verify_hook_runs_and_never_diverges(self, tmp_path):
        collector = Telemetry()
        store = TenantStateStore(
            tmp_path / "state",
            models=_models(tmp_path),
            delta_verify_every=1,
        )
        state, _ = _drive(store, batches=1)
        with activated(collector):
            store.detector_for(state, "markov", 4)
            for i in range(4):
                batch = np.random.default_rng(i).integers(0, 8, size=12)
                store.ingest(state, store.validate_events(batch.tolist(), 8))
        counters = collector.metrics.snapshot()["counters"]
        assert counters.get("serve.delta.verify", 0) == 4
        assert counters.get("serve.delta.diverged", 0) == 0

    def test_non_delta_family_is_invalidated_and_refit(self, tmp_path):
        collector = Telemetry()
        store = TenantStateStore(
            tmp_path / "state", models=_models(tmp_path)
        )
        state, _ = _drive(store, batches=2)
        with activated(collector):
            store.detector_for(state, "lane-brodley", 4)
            batch = np.random.default_rng(2).integers(0, 8, size=12)
            store.ingest(state, store.validate_events(batch.tolist(), 8))
            store.detector_for(state, "lane-brodley", 4)
        assert collector.metrics.snapshot()["counters"].get("serve.fit", 0) == 2


class TestWarmRevival:
    def test_restart_replays_deltas_not_refits(self, tmp_path):
        models = _models(tmp_path)
        store = TenantStateStore(
            tmp_path / "state", models=models, snapshot_every=2
        )
        state, _ = _drive(store, batches=5)
        origin = store.detector_for(state, "stide", 6)
        extra = np.random.default_rng(31).integers(0, 8, size=20)
        store.ingest(store.get("acme"), store.validate_events(extra.tolist(), 8))
        models.compact_all()

        # A fresh process: new hot tier, same shard files + WAL.
        collector = Telemetry()
        reborn_models = ShardedStore(
            tmp_path / "models",
            shards=4,
            cold=ArtifactStore(tmp_path / "cold"),
        )
        reborn = TenantStateStore(
            tmp_path / "state", models=reborn_models, snapshot_every=2
        )
        reborn.recover_all()
        recovered = reborn.get("acme")
        assert recovered.digest() == store.get("acme").digest()
        with activated(collector):
            revived = reborn.detector_for(recovered, "stide", 6)
        counters = collector.metrics.snapshot()["counters"]
        assert counters.get("serve.fit", 0) == 0  # no cold refit
        probe = np.random.default_rng(5).integers(0, 8, size=40)
        np.testing.assert_array_equal(
            revived.score_stream(probe), origin.score_stream(probe)
        )

    def test_hot_eviction_falls_back_to_warm_with_replay(self, tmp_path):
        collector = Telemetry()
        models = _models(tmp_path, hot_cap_bytes=1)  # evict instantly
        store = TenantStateStore(tmp_path / "state", models=models)
        state, _ = _drive(store, batches=3)
        with activated(collector):
            first = store.detector_for(state, "stide", 5)
            # The 1-byte cap holds one entry: this put evicts `first`.
            store.detector_for(state, "t-stide", 5)
            batch = np.random.default_rng(7).integers(0, 8, size=16)
            store.ingest(state, store.validate_events(batch.tolist(), 8))
            again = store.detector_for(state, "stide", 5)
        assert again is not first  # revived, not cached
        counters = collector.metrics.snapshot()["counters"]
        assert counters.get("serve.fit", 0) == 2  # the two initial fits
        assert counters.get("serve.delta.replay", 0) >= 1
        probe = np.random.default_rng(8).integers(0, 8, size=25)
        twin = TenantStateStore(tmp_path / "twin")
        twin_state, _ = _drive(twin, batches=3)
        twin.ingest(twin_state, twin.validate_events(batch.tolist(), 8))
        np.testing.assert_array_equal(
            again.score_stream(probe),
            twin.detector_for(twin_state, "stide", 5).score_stream(probe),
        )

    def test_foreign_model_arrays_are_invalidated(self, tmp_path):
        """A recreated tenant must not adopt a previous life's models."""
        models = _models(tmp_path)
        store = TenantStateStore(tmp_path / "state", models=models)
        state, _ = _drive(store, batches=3, seed=1)
        store.detector_for(state, "stide", 5)
        key = store.model_key("acme", "stide", 5)
        assert models.get(key) is not None
        models.hot.remove(key)  # simulate a restart's cold hot tier

        # Same id, same event count and seq, different content.
        imposter = TenantStateStore(tmp_path / "state2", models=models)
        imposter_state, _ = _drive(imposter, batches=3, seed=2)
        collector = Telemetry()
        with activated(collector):
            imposter.detector_for(imposter_state, "stide", 5)
        assert collector.metrics.snapshot()["counters"].get("serve.fit", 0) == 1


class TestMemoryAccounting:
    def test_memory_stats_counter_matches_ground_truth(self, tmp_path):
        store = TenantStateStore(
            tmp_path / "state", models=_models(tmp_path)
        )
        _drive(store, tenant_id="a", batches=3)
        _drive(store, tenant_id="b", batches=2)
        store.detector_for(store.get("a"), "stide", 5)
        stats = store.memory_stats()
        assert stats["tenants"] == 2
        assert (
            stats["tenants_resident_bytes"]
            == stats["tenants_resident_bytes_counter"]
        )
        assert stats["hot_tier"]["resident_entries"] == 1
        assert stats["hot_tier"]["resident_bytes"] > 0

    def test_trace_counters_validate_clean(self, tmp_path):
        collector = Telemetry()
        with activated(collector):
            store = TenantStateStore(
                tmp_path / "state",
                models=_models(tmp_path, hot_cap_bytes=4096),
                delta_verify_every=2,
            )
            for tenant in ("a", "b", "c"):
                state, _ = _drive(store, tenant_id=tenant, batches=2)
                store.detector_for(state, "stide", 5)
                batch = np.random.default_rng(4).integers(0, 8, size=16)
                store.ingest(state, store.validate_events(batch.tolist(), 8))
        problems = check_trace_counters(collector.metrics.snapshot()["counters"])
        assert problems == []

    def test_trace_counters_flag_divergence_and_imbalance(self):
        assert any(
            "diverged" in problem
            for problem in check_trace_counters({"serve.delta.diverged": 1})
        )
        assert any(
            "hot-tier flow" in problem
            for problem in check_trace_counters(
                {"serve.hot.insert": 3, "serve.hot.resident_entries": 2}
            )
        )
        assert any(
            "negative" in problem
            for problem in check_trace_counters(
                {"serve.tenants.resident_bytes": -8}
            )
        )
