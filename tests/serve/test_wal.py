"""Tests for the tenant write-ahead log and snapshot recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TenantRecoveryError
from repro.runtime.store import ArtifactStore, stream_digest
from repro.runtime.telemetry import Telemetry, activated
from repro.serve.wal import TenantJournal, snapshot_key


def _journal_with(tmp_path, chunks):
    journal = TenantJournal(tmp_path / "tenant")
    journal.write_manifest(8)
    for seq, events in enumerate(chunks, 1):
        journal.append(seq, np.asarray(events, dtype=np.int64))
    return journal


class TestJournalBasics:
    def test_append_and_read_roundtrip(self, tmp_path):
        journal = _journal_with(tmp_path, [[1, 2, 3], [4, 5]])
        records = journal.read_records()
        assert [seq for seq, _ in records] == [1, 2]
        assert records[0][1].tolist() == [1, 2, 3]
        assert records[1][1].tolist() == [4, 5]

    def test_recover_without_snapshot_replays_full_log(self, tmp_path):
        journal = _journal_with(tmp_path, [[1, 2, 3], [4, 5]])
        state = journal.recover(store=None)
        assert state is not None
        assert state.events.tolist() == [1, 2, 3, 4, 5]
        assert state.seq == 2
        assert state.alphabet_size == 8
        assert not state.from_snapshot
        assert state.replayed_records == 2

    def test_recover_empty_directory_is_none(self, tmp_path):
        assert TenantJournal(tmp_path / "ghost").recover(store=None) is None

    def test_wal_without_manifest_refuses(self, tmp_path):
        journal = TenantJournal(tmp_path / "tenant")
        journal.append(1, np.asarray([1], dtype=np.int64))
        with pytest.raises(TenantRecoveryError, match="without a manifest"):
            journal.recover(store=None)

    def test_wrong_manifest_schema_refuses(self, tmp_path):
        journal = TenantJournal(tmp_path / "tenant")
        journal.write_manifest(8)
        journal.manifest_path.write_text('{"schema": 999}')
        with pytest.raises(TenantRecoveryError, match="schema"):
            journal.recover(store=None)


class TestTornTail:
    def test_torn_tail_is_skipped_and_counted(self, tmp_path):
        journal = _journal_with(tmp_path, [[1, 2], [3, 4]])
        with journal.wal_path.open("a") as handle:
            handle.write('{"seq": 3, "events": [5, 6')  # killed mid-append
        collector = Telemetry()
        with activated(collector):
            state = journal.recover(store=None)
        assert state is not None
        assert state.events.tolist() == [1, 2, 3, 4]
        assert state.seq == 2
        assert collector.metrics.counter("serve.wal.torn_tail") == 1

    def test_mid_file_damage_refuses(self, tmp_path):
        journal = _journal_with(tmp_path, [[1, 2], [3, 4]])
        lines = journal.wal_path.read_text().splitlines()
        lines[0] = lines[0][:-4]  # damage a NON-tail record
        journal.wal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TenantRecoveryError, match="damaged"):
            journal.recover(store=None)

    def test_sequence_gap_refuses(self, tmp_path):
        journal = TenantJournal(tmp_path / "tenant")
        journal.write_manifest(8)
        journal.append(1, np.asarray([1], dtype=np.int64))
        journal.append(3, np.asarray([2], dtype=np.int64))  # 2 missing
        with pytest.raises(TenantRecoveryError, match="sequence gap"):
            journal.recover(store=None)


class TestSnapshots:
    def test_snapshot_seeds_recovery(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        journal = _journal_with(tmp_path, [[1, 2], [3, 4]])
        events = np.asarray([1, 2, 3, 4], dtype=np.int64)
        key = journal.snapshot("t", 2, events, 8, store)
        assert key == snapshot_key("t", 2, stream_digest(events))
        journal.append(3, np.asarray([5], dtype=np.int64))
        state = journal.recover(store)
        assert state is not None
        assert state.from_snapshot
        assert state.replayed_records == 1
        assert state.events.tolist() == [1, 2, 3, 4, 5]
        assert state.seq == 3

    def test_faulty_store_falls_back_to_full_log(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        journal = _journal_with(tmp_path, [[1, 2], [3, 4]])
        journal.snapshot("t", 2, np.asarray([1, 2, 3, 4]), 8, store)
        state = journal.recover(store, store_faulty=True)
        assert state is not None
        assert not state.from_snapshot
        assert state.events.tolist() == [1, 2, 3, 4]
        assert state.seq == 2

    def test_compacted_log_with_lost_snapshot_refuses(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        journal = _journal_with(tmp_path, [[1, 2], [3, 4]])
        journal.snapshot("t", 2, np.asarray([1, 2, 3, 4]), 8, store)
        journal.append(3, np.asarray([5], dtype=np.int64))
        assert journal.compact(upto_seq=2) == 1
        with pytest.raises(TenantRecoveryError, match="guessed state"):
            journal.recover(store, store_faulty=True)

    def test_compacted_log_with_live_snapshot_recovers(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        journal = _journal_with(tmp_path, [[1, 2], [3, 4]])
        journal.snapshot("t", 2, np.asarray([1, 2, 3, 4]), 8, store)
        journal.append(3, np.asarray([5], dtype=np.int64))
        journal.compact(upto_seq=2)
        state = journal.recover(store)
        assert state is not None
        assert state.from_snapshot
        assert state.events.tolist() == [1, 2, 3, 4, 5]

    def test_recovery_is_bit_identical(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        rng = np.random.default_rng(5)
        chunks = [rng.integers(0, 8, size=50) for _ in range(7)]
        journal = _journal_with(tmp_path, chunks)
        journal.snapshot(
            "t", 4, np.concatenate(chunks[:4]).astype(np.int64), 8, store
        )
        expected = np.concatenate(chunks).astype(np.int64)
        state = journal.recover(store)
        assert state is not None
        assert stream_digest(state.events) == stream_digest(expected)


def _rotating_journal(tmp_path, chunks, segment_bytes=1):
    """A journal that rotates after every append (tiny segment size)."""
    journal = TenantJournal(tmp_path / "tenant", segment_bytes=segment_bytes)
    journal.write_manifest(8)
    for seq, events in enumerate(chunks, 1):
        journal.append(seq, np.asarray(events, dtype=np.int64))
    return journal


class TestSegments:
    def test_rotation_renames_active_log_and_counts(self, tmp_path):
        collector = Telemetry()
        with activated(collector):
            journal = _rotating_journal(tmp_path, [[1, 2], [3], [4, 5]])
        segments = journal.segment_paths()
        assert [path.name for path in segments] == [
            "wal-000000000001.jsonl",
            "wal-000000000002.jsonl",
            "wal-000000000003.jsonl",
        ]
        assert not journal.wal_path.exists()
        assert collector.metrics.counter("serve.wal.rotate") == 3

    def test_read_records_spans_segments_and_active(self, tmp_path):
        journal = _rotating_journal(tmp_path, [[1, 2], [3]])
        journal._segment_bytes = 0  # the next append stays active
        journal.append(3, np.asarray([4, 5], dtype=np.int64))
        records = journal.read_records()
        assert [seq for seq, _ in records] == [1, 2, 3]
        state = journal.recover(store=None)
        assert state is not None
        assert state.events.tolist() == [1, 2, 3, 4, 5]
        assert state.seq == 3

    def test_damage_inside_a_rotated_segment_refuses(self, tmp_path):
        journal = _rotating_journal(tmp_path, [[1, 2], [3]])
        segment = journal.segment_paths()[0]
        # Even a torn *tail* is damage in an immutable segment.
        segment.write_text(segment.read_text()[:-4])
        with pytest.raises(TenantRecoveryError, match="rotated WAL segment"):
            journal.recover(store=None)

    def test_lost_middle_segment_trips_contiguity(self, tmp_path):
        journal = _rotating_journal(tmp_path, [[1], [2], [3]])
        journal.segment_paths()[1].unlink()
        with pytest.raises(TenantRecoveryError, match="sequence gap"):
            journal.recover(store=None)

    def test_prune_removes_only_fully_covered_segments(self, tmp_path):
        collector = Telemetry()
        journal = _rotating_journal(tmp_path, [[1], [2], [3]])
        with activated(collector):
            assert journal.prune_segments(upto_seq=2) == 2
        assert [path.name for path in journal.segment_paths()] == [
            "wal-000000000003.jsonl"
        ]
        assert collector.metrics.counter("serve.wal.prune") == 2
        # A partially covered segment survives a lower-watermark prune.
        assert journal.prune_segments(upto_seq=2) == 0

    def test_recovery_after_prune_with_snapshot(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        journal = _rotating_journal(tmp_path, [[1, 2], [3, 4], [5]])
        journal.snapshot("t", 2, np.asarray([1, 2, 3, 4]), 8, store)
        journal.prune_segments(upto_seq=2)
        state = journal.recover(store)
        assert state is not None
        assert state.from_snapshot
        assert state.events.tolist() == [1, 2, 3, 4, 5]
        assert state.seq == 3

    def test_compact_prunes_segments_and_rewrites_active(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        journal = _rotating_journal(tmp_path, [[1, 2], [3, 4]])
        journal._segment_bytes = 0
        journal.append(3, np.asarray([5], dtype=np.int64))
        journal.append(4, np.asarray([6], dtype=np.int64))
        journal.snapshot("t", 3, np.asarray([1, 2, 3, 4, 5]), 8, store)
        kept = journal.compact(upto_seq=3)
        assert kept == 1  # only seq 4 remains in the active log
        assert journal.segment_paths() == []
        state = journal.recover(store)
        assert state is not None
        assert state.events.tolist() == [1, 2, 3, 4, 5, 6]
        assert state.seq == 4

    def test_segments_without_manifest_refuse(self, tmp_path):
        journal = TenantJournal(tmp_path / "tenant", segment_bytes=1)
        journal.append(1, np.asarray([1], dtype=np.int64))
        assert not journal.wal_path.exists()  # rotated away
        with pytest.raises(TenantRecoveryError, match="without a manifest"):
            journal.recover(store=None)
