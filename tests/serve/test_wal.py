"""Tests for the tenant write-ahead log and snapshot recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TenantRecoveryError
from repro.runtime.store import ArtifactStore, stream_digest
from repro.runtime.telemetry import Telemetry, activated
from repro.serve.wal import TenantJournal, snapshot_key


def _journal_with(tmp_path, chunks):
    journal = TenantJournal(tmp_path / "tenant")
    journal.write_manifest(8)
    for seq, events in enumerate(chunks, 1):
        journal.append(seq, np.asarray(events, dtype=np.int64))
    return journal


class TestJournalBasics:
    def test_append_and_read_roundtrip(self, tmp_path):
        journal = _journal_with(tmp_path, [[1, 2, 3], [4, 5]])
        records = journal.read_records()
        assert [seq for seq, _ in records] == [1, 2]
        assert records[0][1].tolist() == [1, 2, 3]
        assert records[1][1].tolist() == [4, 5]

    def test_recover_without_snapshot_replays_full_log(self, tmp_path):
        journal = _journal_with(tmp_path, [[1, 2, 3], [4, 5]])
        state = journal.recover(store=None)
        assert state is not None
        assert state.events.tolist() == [1, 2, 3, 4, 5]
        assert state.seq == 2
        assert state.alphabet_size == 8
        assert not state.from_snapshot
        assert state.replayed_records == 2

    def test_recover_empty_directory_is_none(self, tmp_path):
        assert TenantJournal(tmp_path / "ghost").recover(store=None) is None

    def test_wal_without_manifest_refuses(self, tmp_path):
        journal = TenantJournal(tmp_path / "tenant")
        journal.append(1, np.asarray([1], dtype=np.int64))
        with pytest.raises(TenantRecoveryError, match="without a manifest"):
            journal.recover(store=None)

    def test_wrong_manifest_schema_refuses(self, tmp_path):
        journal = TenantJournal(tmp_path / "tenant")
        journal.write_manifest(8)
        journal.manifest_path.write_text('{"schema": 999}')
        with pytest.raises(TenantRecoveryError, match="schema"):
            journal.recover(store=None)


class TestTornTail:
    def test_torn_tail_is_skipped_and_counted(self, tmp_path):
        journal = _journal_with(tmp_path, [[1, 2], [3, 4]])
        with journal.wal_path.open("a") as handle:
            handle.write('{"seq": 3, "events": [5, 6')  # killed mid-append
        collector = Telemetry()
        with activated(collector):
            state = journal.recover(store=None)
        assert state is not None
        assert state.events.tolist() == [1, 2, 3, 4]
        assert state.seq == 2
        assert collector.metrics.counter("serve.wal.torn_tail") == 1

    def test_mid_file_damage_refuses(self, tmp_path):
        journal = _journal_with(tmp_path, [[1, 2], [3, 4]])
        lines = journal.wal_path.read_text().splitlines()
        lines[0] = lines[0][:-4]  # damage a NON-tail record
        journal.wal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TenantRecoveryError, match="damaged"):
            journal.recover(store=None)

    def test_sequence_gap_refuses(self, tmp_path):
        journal = TenantJournal(tmp_path / "tenant")
        journal.write_manifest(8)
        journal.append(1, np.asarray([1], dtype=np.int64))
        journal.append(3, np.asarray([2], dtype=np.int64))  # 2 missing
        with pytest.raises(TenantRecoveryError, match="sequence gap"):
            journal.recover(store=None)


class TestSnapshots:
    def test_snapshot_seeds_recovery(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        journal = _journal_with(tmp_path, [[1, 2], [3, 4]])
        events = np.asarray([1, 2, 3, 4], dtype=np.int64)
        key = journal.snapshot("t", 2, events, 8, store)
        assert key == snapshot_key("t", 2, stream_digest(events))
        journal.append(3, np.asarray([5], dtype=np.int64))
        state = journal.recover(store)
        assert state is not None
        assert state.from_snapshot
        assert state.replayed_records == 1
        assert state.events.tolist() == [1, 2, 3, 4, 5]
        assert state.seq == 3

    def test_faulty_store_falls_back_to_full_log(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        journal = _journal_with(tmp_path, [[1, 2], [3, 4]])
        journal.snapshot("t", 2, np.asarray([1, 2, 3, 4]), 8, store)
        state = journal.recover(store, store_faulty=True)
        assert state is not None
        assert not state.from_snapshot
        assert state.events.tolist() == [1, 2, 3, 4]
        assert state.seq == 2

    def test_compacted_log_with_lost_snapshot_refuses(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        journal = _journal_with(tmp_path, [[1, 2], [3, 4]])
        journal.snapshot("t", 2, np.asarray([1, 2, 3, 4]), 8, store)
        journal.append(3, np.asarray([5], dtype=np.int64))
        assert journal.compact(upto_seq=2) == 1
        with pytest.raises(TenantRecoveryError, match="guessed state"):
            journal.recover(store, store_faulty=True)

    def test_compacted_log_with_live_snapshot_recovers(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        journal = _journal_with(tmp_path, [[1, 2], [3, 4]])
        journal.snapshot("t", 2, np.asarray([1, 2, 3, 4]), 8, store)
        journal.append(3, np.asarray([5], dtype=np.int64))
        journal.compact(upto_seq=2)
        state = journal.recover(store)
        assert state is not None
        assert state.from_snapshot
        assert state.events.tolist() == [1, 2, 3, 4, 5]

    def test_recovery_is_bit_identical(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        rng = np.random.default_rng(5)
        chunks = [rng.integers(0, 8, size=50) for _ in range(7)]
        journal = _journal_with(tmp_path, chunks)
        journal.snapshot(
            "t", 4, np.concatenate(chunks[:4]).astype(np.int64), 8, store
        )
        expected = np.concatenate(chunks).astype(np.int64)
        state = journal.recover(store)
        assert state is not None
        assert stream_digest(state.events) == stream_digest(expected)
