"""End-to-end tests of the asyncio scoring server (in-process)."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.detectors.registry import create_detector
from repro.serve import AdmissionPolicy, ScoringServer
from repro.serve.loadgen import request

ALPHABET = 8


def _events(seed: int, length: int = 160) -> list[int]:
    rng = np.random.default_rng(seed)
    return rng.integers(0, ALPHABET, size=length).tolist()


def run(coro):
    return asyncio.run(coro)


async def _with_server(scenario, **kwargs):
    import tempfile

    with tempfile.TemporaryDirectory() as root:
        server = ScoringServer(root, **kwargs)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.stop()


class TestEndpoints:
    def test_health_and_readiness(self):
        async def scenario(server):
            host, port = "127.0.0.1", server.port
            status, body = await request(host, port, "GET", "/healthz")
            assert (status, body) == (200, {"status": "ok"})
            status, body = await request(host, port, "GET", "/readyz")
            assert status == 200 and body["ready"]
            status, _ = await request(host, port, "POST", "/drain")
            assert status == 200
            status, body = await request(host, port, "GET", "/readyz")
            assert status == 503 and not body["ready"]
            # liveness stays green while draining
            status, _ = await request(host, port, "GET", "/healthz")
            assert status == 200

        run(_with_server(scenario))

    def test_unknown_route_404(self):
        async def scenario(server):
            status, _ = await request(
                "127.0.0.1", server.port, "GET", "/nope"
            )
            assert status == 404

        run(_with_server(scenario))

    def test_bad_json_400(self):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            payload = b"not json"
            writer.write(
                b"POST /v1/tenants/t/train HTTP/1.1\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(payload), payload)
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            assert b"400" in raw.split(b"\r\n", 1)[0]

        run(_with_server(scenario))


class TestTrainAndScore:
    def test_roundtrip_scores_match_local_reference(self):
        async def scenario(server):
            host, port = "127.0.0.1", server.port
            training = _events(1, 400)
            status, ack = await request(
                host,
                port,
                "POST",
                "/v1/tenants/alpha/train",
                {"events": training, "alphabet_size": ALPHABET},
            )
            assert status == 200
            assert ack["seq"] == 1
            test = _events(2, 120)
            status, body = await request(
                host,
                port,
                "POST",
                "/v1/tenants/alpha/score",
                {"family": "stide", "window": 4, "events": test},
            )
            assert status == 200
            detector = create_detector("stide", 4, ALPHABET)
            detector.fit(np.asarray(training, dtype=np.int64))
            expected = detector.score_stream(np.asarray(test, dtype=np.int64))
            assert np.array_equal(np.asarray(body["scores"]), expected)
            assert body["tier"] in ("fused", "automaton", "bisect")
            assert body["attempts"] == 1

        run(_with_server(scenario))

    def test_unknown_tenant_404(self):
        async def scenario(server):
            status, body = await request(
                "127.0.0.1",
                server.port,
                "POST",
                "/v1/tenants/ghost/score",
                {"family": "stide", "window": 4, "events": _events(3)},
            )
            assert status == 404
            assert body["reason"] == "unknown-tenant"
            assert not body["retryable"]

        run(_with_server(scenario))

    def test_out_of_alphabet_events_422(self):
        async def scenario(server):
            host, port = "127.0.0.1", server.port
            await request(
                host,
                port,
                "POST",
                "/v1/tenants/t/train",
                {"events": _events(1), "alphabet_size": ALPHABET},
            )
            status, body = await request(
                host,
                port,
                "POST",
                "/v1/tenants/t/train",
                {"events": [1, 2, ALPHABET + 3]},
            )
            assert status == 422
            assert body["reason"] == "invalid-events"
            # the poisoned chunk was never journaled
            status, info = await request(
                host, port, "GET", "/v1/tenants/t"
            )
            assert info["seq"] == 1

        run(_with_server(scenario))

    def test_short_stream_422(self):
        async def scenario(server):
            host, port = "127.0.0.1", server.port
            await request(
                host,
                port,
                "POST",
                "/v1/tenants/t/train",
                {"events": _events(1), "alphabet_size": ALPHABET},
            )
            status, body = await request(
                host,
                port,
                "POST",
                "/v1/tenants/t/score",
                {"family": "stide", "window": 6, "events": [1, 2, 3]},
            )
            assert status == 422
            assert body["reason"] == "stream-too-short"

        run(_with_server(scenario))

    def test_deadline_budget_504(self):
        async def scenario(server):
            host, port = "127.0.0.1", server.port
            await request(
                host,
                port,
                "POST",
                "/v1/tenants/t/train",
                {"events": _events(1), "alphabet_size": ALPHABET},
            )
            status, body = await request(
                host,
                port,
                "POST",
                "/v1/tenants/t/score",
                {
                    "family": "stide",
                    "window": 4,
                    "events": _events(2),
                    "budget": 1e-5,
                },
            )
            assert status == 504
            assert body["reason"] == "deadline-exceeded"
            assert body["retryable"]

        run(_with_server(scenario))

    def test_train_ack_carries_stream_digest(self):
        async def scenario(server):
            host, port = "127.0.0.1", server.port
            first, second = _events(1, 100), _events(2, 100)
            await request(
                host,
                port,
                "POST",
                "/v1/tenants/t/train",
                {"events": first, "alphabet_size": ALPHABET},
            )
            status, ack = await request(
                host, port, "POST", "/v1/tenants/t/train", {"events": second}
            )
            from repro.runtime.store import stream_digest

            expected = stream_digest(
                np.asarray(first + second, dtype=np.int64)
            )
            assert ack["digest"] == expected

        run(_with_server(scenario))


class TestStats:
    def test_stats_reflect_traffic(self):
        async def scenario(server):
            host, port = "127.0.0.1", server.port
            await request(
                host,
                port,
                "POST",
                "/v1/tenants/t/train",
                {"events": _events(1), "alphabet_size": ALPHABET},
            )
            status, stats = await request(host, port, "GET", "/v1/stats")
            assert status == 200
            assert stats["tenants"]["t"]["seq"] == 1
            assert stats["lanes"]["t"]["completed"] == 1
            assert stats["breakers"]["t"]["state"] == "closed"
            assert stats["recovery"]["tenants"] == 0
            memory = stats["memory"]
            assert memory["tenants"] == 1
            assert (
                memory["tenants_resident_bytes"]
                == memory["tenants_resident_bytes_counter"]
                == len(_events(1)) * 8
            )

        run(
            _with_server(
                scenario, policy=AdmissionPolicy(queue_depth=4)
            )
        )
