"""Micro-batch scheduler tests: bit-identity, isolation, degradation.

The load-bearing assertion lives in the seeded fuzz test: for every
detector family and both fused kernel shapes (packed keys for the
count families, fused sliding windows for the rest), a batched score
is **bit-identical** to the sequential pipeline's answer.  Everything
else checks the blast-radius properties — a quarantined or breaker-open
member fails alone, a broken executor rung degrades instead of failing
jobs, and the scheduler's counter ledger balances.
"""

from __future__ import annotations

import asyncio
import tempfile

import numpy as np
import pytest

from repro.exceptions import ScoreRefusal
from repro.runtime.telemetry import (
    Telemetry,
    activated,
    check_trace_counters,
)
from repro.serve import (
    BatchPolicy,
    BatchScheduler,
    ChaosDirector,
    LoadPlan,
    ScoreJob,
    ScoreWorkerPool,
    ScoringServer,
    run_load,
)
from repro.serve.admission import Deadline
from repro.serve.batching import FLUSH_REASONS
from repro.serve.pipeline import TIER_FUSED, ScorePipeline
from repro.serve.tenants import TenantStateStore

ALPHABET = 8

#: Every registered family the serving API exposes, exercising both
#: fused kernel shapes: packed keys (stide / t-stide / markov) and
#: fused sliding windows (the rest).
FAMILIES = (
    "stide",
    "t-stide",
    "markov",
    "lane-brodley",
    "hamming",
    "neural-network",
)

#: DW=4 resolves to the packed/automaton tier for AS=8; DW=24 exceeds
#: the 64-bit pack budget, forcing the bisect tier and the fused
#: window path even for the packed families.
WINDOWS = (4, 24)


def run(coro):
    return asyncio.run(coro)


def _train_stream(seed: int, length: int = 600) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, ALPHABET, size=length).astype(np.int64)


def _make_job(tenant_id, family, window, events, seq):
    loop = asyncio.get_running_loop()
    return ScoreJob(
        tenant_id=tenant_id,
        family=family,
        window=window,
        alphabet_size=ALPHABET,
        events=events,
        key=f"{tenant_id}|score|{seq}",
        attempt=1,
        deadline=Deadline.after(30.0),
        future=loop.create_future(),
        enqueued_at=loop.time(),
    )


async def _fitted_store(root: str, tenants: int = 3) -> TenantStateStore:
    store = TenantStateStore(root)
    for index in range(tenants):
        state = store.open(f"t{index:02d}", ALPHABET)
        store.ingest(state, _train_stream(100 + index))
    return store


class TestFuzzBitIdentity:
    def test_batched_equals_sequential_all_families_both_tiers(self):
        """Seeded fuzz: fused batch scores == sequential scores, bitwise."""

        async def scenario():
            rng = np.random.default_rng(2026)
            with tempfile.TemporaryDirectory() as root:
                store = await _fitted_store(root, tenants=3)
                pipeline = ScorePipeline(store)
                scheduler = BatchScheduler(
                    pipeline,
                    ChaosDirector(),
                    policy=BatchPolicy(max_batch=16, max_wait_us=2000.0),
                )
                try:
                    for family in FAMILIES:
                        for window in WINDOWS:
                            jobs = []
                            for k in range(5):
                                tenant = f"t{rng.integers(0, 3):02d}"
                                events = rng.integers(
                                    0, ALPHABET,
                                    size=int(rng.integers(window + 1, 90)),
                                ).astype(np.int64)
                                jobs.append(
                                    _make_job(tenant, family, window,
                                              events, k)
                                )
                            tasks = [
                                asyncio.ensure_future(scheduler.submit(job))
                                for job in jobs
                            ]
                            outcomes = await asyncio.gather(*tasks)
                            for job, outcome in zip(jobs, outcomes):
                                state = store.get(job.tenant_id)
                                expected = pipeline.score(
                                    state, family, window,
                                    job.events, Deadline.after(30.0),
                                )
                                assert outcome.scores == expected.scores, (
                                    family, window, job.tenant_id,
                                )
                finally:
                    await scheduler.close()
                snap = scheduler.snapshot()
                assert snap["jobs_in"] == snap["jobs_out"]
                assert snap["refused"] == 0

        run(scenario())

    def test_fused_tier_is_reported_for_grouped_jobs(self):
        async def scenario():
            with tempfile.TemporaryDirectory() as root:
                store = await _fitted_store(root, tenants=2)
                scheduler = BatchScheduler(
                    ScorePipeline(store),
                    ChaosDirector(),
                    policy=BatchPolicy(max_batch=4, max_wait_us=50000.0),
                )
                try:
                    jobs = [
                        _make_job(f"t{i:02d}", "stide", 4,
                                  _train_stream(7 + i, 60), i)
                        for i in range(2)
                    ]
                    tasks = [
                        asyncio.ensure_future(scheduler.submit(j))
                        for j in jobs
                    ]
                    outcomes = await asyncio.gather(*tasks)
                    assert all(o.tier == TIER_FUSED for o in outcomes)
                    assert all(o.attempts == 1 for o in outcomes)
                finally:
                    await scheduler.close()

        run(scenario())


class TestBlastRadius:
    def test_mid_batch_quarantine_fails_only_that_member(self):
        """A tenant quarantined between enqueue and flush refuses alone."""

        async def scenario():
            with tempfile.TemporaryDirectory() as root:
                store = await _fitted_store(root, tenants=3)
                scheduler = BatchScheduler(
                    ScorePipeline(store),
                    ChaosDirector(),
                    policy=BatchPolicy(max_batch=8, max_wait_us=20000.0),
                )
                try:
                    jobs = [
                        _make_job(f"t{i:02d}", "stide", 4,
                                  _train_stream(50 + i, 60), i)
                        for i in range(3)
                    ]
                    tasks = [
                        asyncio.ensure_future(scheduler.submit(j))
                        for j in jobs
                    ]
                    # The scheduler task has not run yet (no await since
                    # submission), so the jobs are still queued: this
                    # quarantine lands strictly after enqueue, strictly
                    # before the batch flushes.
                    store.tenants["t01"].quarantined = "poisoned WAL"
                    results = await asyncio.gather(
                        *tasks, return_exceptions=True
                    )
                finally:
                    await scheduler.close()
                assert isinstance(results[1], ScoreRefusal)
                assert results[1].reason == "quarantined"
                for healthy in (0, 2):
                    state = store.get(f"t{healthy:02d}")
                    expected = ScorePipeline(store).score(
                        state, "stide", 4,
                        jobs[healthy].events, Deadline.after(30.0),
                    )
                    assert results[healthy].scores == expected.scores
                snap = scheduler.snapshot()
                assert snap["jobs_out"] == 2
                assert snap["refused"] == 1

        run(scenario())

    def test_breaker_open_member_does_not_poison_the_batch(self):
        """An open breaker refuses its tenant pre-batch; peers score."""
        from repro.serve.loadgen import request

        async def scenario(server):
            host, port = "127.0.0.1", server.port
            training = _train_stream(1).tolist()
            for tenant in ("blocked", "healthy"):
                status, _ = await request(
                    host, port, "POST", f"/v1/tenants/{tenant}/train",
                    {"events": training, "alphabet_size": ALPHABET},
                )
                assert status == 200
            breaker = server._breaker("blocked")
            for _ in range(server.policy.breaker_failures):
                breaker.record_failure()
            test = _train_stream(2, 80).tolist()
            results = await asyncio.gather(
                *(
                    request(
                        host, port, "POST",
                        f"/v1/tenants/{tenant}/score",
                        {"family": "stide", "window": 4, "events": test},
                    )
                    for tenant in ("blocked", "healthy", "healthy")
                )
            )
            assert results[0][0] == 503
            assert results[0][1]["reason"] == "breaker-open"
            from repro.detectors.registry import create_detector

            detector = create_detector("stide", 4, ALPHABET)
            detector.fit(np.asarray(training, dtype=np.int64))
            expected = detector.score_stream(
                np.asarray(test, dtype=np.int64)
            )
            for status, body in results[1:]:
                assert status == 200
                assert np.array_equal(np.asarray(body["scores"]), expected)

        async def with_server():
            with tempfile.TemporaryDirectory() as root:
                server = ScoringServer(root)
                await server.start()
                try:
                    await scenario(server)
                finally:
                    await server.stop()

        run(with_server())


class TestWorkerPoolLadder:
    def test_thread_rung_degrades_to_serial_on_shutdown_pool(self):
        async def scenario():
            pool = ScoreWorkerPool(workers=2, kind="thread")
            pool._thread_pool().shutdown(wait=True)
            assert await pool.run(lambda: 7 * 6) == 42
            assert pool.kind == "serial"
            assert pool.degradations and "thread->serial" in (
                pool.degradations[0]
            )
            pool.shutdown()

        run(scenario())

    def test_failed_process_probe_degrades_to_thread(self, monkeypatch):
        monkeypatch.setattr(
            ScoreWorkerPool, "_start_process_pool", lambda self: False
        )
        pool = ScoreWorkerPool(workers=2, kind="process")
        assert pool.kind == "thread"
        assert pool.degradations and "process->thread" in (
            pool.degradations[0]
        )
        pool.shutdown()

    def test_process_rung_scores_bit_identically(self):
        """End-to-end on real child processes: zero violations."""

        async def scenario():
            with tempfile.TemporaryDirectory() as root:
                server = ScoringServer(
                    root,
                    batching=BatchPolicy(
                        max_batch=8, max_wait_us=500.0,
                        workers=2, executor="process",
                    ),
                )
                await server.start()
                try:
                    report = await run_load(
                        "127.0.0.1", server.port, LoadPlan.quick(seed=3)
                    )
                finally:
                    await server.stop()
                assert report.violations == []
                assert report.scores_ok > 0

        run(scenario())


class TestSchedulerLedger:
    def test_flush_reasons_and_job_ledger_balance(self):
        async def scenario(collector):
            with tempfile.TemporaryDirectory() as root:
                server = ScoringServer(root)
                await server.start()
                try:
                    with activated(collector):
                        report = await run_load(
                            "127.0.0.1", server.port,
                            LoadPlan.quick(seed=5),
                        )
                        snap = server.batcher.snapshot()
                finally:
                    await server.stop()
                return report, snap

        collector = Telemetry()
        report, snap = run(scenario(collector))
        assert report.violations == []
        assert snap["jobs_in"] == snap["jobs_out"] + snap["refused"]
        assert set(snap["flushes"]) == set(FLUSH_REASONS)
        assert sum(snap["flushes"].values()) >= 1
        counters = collector.metrics.snapshot()["counters"]
        assert counters["serve.batch.jobs_in"] == snap["jobs_in"]
        assert check_trace_counters(counters) == []

    def test_trace_validator_flags_an_unbalanced_ledger(self):
        problems = check_trace_counters(
            {"serve.batch.jobs_in": 5, "serve.batch.jobs_out": 3}
        )
        assert any("never resolved" in p for p in problems)

    def test_trace_validator_flags_unaccounted_flushes(self):
        problems = check_trace_counters(
            {
                "serve.batch.jobs_in": 2,
                "serve.batch.jobs_out": 2,
                "serve.batch.flush": 3,
                "serve.batch.flush.solo": 2,
            }
        )
        assert any("flush" in p for p in problems)

    def test_solo_bypass_is_tagged(self):
        async def scenario():
            with tempfile.TemporaryDirectory() as root:
                store = await _fitted_store(root, tenants=1)
                scheduler = BatchScheduler(
                    ScorePipeline(store),
                    ChaosDirector(),
                    policy=BatchPolicy(max_batch=8, max_wait_us=100000.0),
                )
                try:
                    outcome = await scheduler.submit(
                        _make_job("t00", "stide", 4,
                                  _train_stream(9, 60), 0)
                    )
                    assert outcome.tier == TIER_FUSED
                finally:
                    await scheduler.close()
                # A lone job with an empty queue behind it must flush
                # immediately, never waiting out the 100ms budget.
                assert scheduler.snapshot()["flushes"]["solo"] == 1

        run(scenario())


class TestPolicyAndEquivalence:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError, match="max_wait_us"):
            BatchPolicy(max_wait_us=-1.0)
        with pytest.raises(ValueError, match="workers"):
            BatchPolicy(workers=0)
        with pytest.raises(ValueError, match="executor"):
            BatchPolicy(executor="gpu")

    def test_batch_max_one_produces_identical_dumps(self, tmp_path):
        """The CI diff in miniature: batched vs unbatched, same bytes."""

        async def one_run(policy, dump):
            with tempfile.TemporaryDirectory() as root:
                server = ScoringServer(root, batching=policy)
                await server.start()
                try:
                    report = await run_load(
                        "127.0.0.1", server.port,
                        LoadPlan.quick(seed=13), dump_scores=dump,
                    )
                finally:
                    await server.stop()
                assert report.violations == []

        batched = tmp_path / "batched.jsonl"
        unbatched = tmp_path / "unbatched.jsonl"
        run(one_run(BatchPolicy(max_batch=16, max_wait_us=1000.0), batched))
        run(one_run(BatchPolicy(max_batch=1), unbatched))
        assert batched.read_bytes() == unbatched.read_bytes()
        assert batched.stat().st_size > 0


class TestLoadgenModes:
    def test_open_loop_reports_co_safe_latency_and_reuses(self):
        async def scenario():
            with tempfile.TemporaryDirectory() as root:
                server = ScoringServer(root)
                await server.start()
                try:
                    import dataclasses

                    plan = dataclasses.replace(
                        LoadPlan.quick(seed=21), arrival_rate=400.0
                    )
                    report = await run_load(
                        "127.0.0.1", server.port, plan
                    )
                finally:
                    await server.stop()
                return report

        report = run(scenario())
        assert report.violations == []
        assert report.mode == "open"
        assert report.target_rate == 400.0
        assert report.scores_ok > 0
        assert report.connections > 0
        # Persistent per-tenant connections: far fewer sockets than
        # requests, and reuses make up the difference.
        assert report.connections < report.requests
        assert report.keepalive_reuses > 0

    def test_closed_loop_remains_default(self):
        async def scenario():
            with tempfile.TemporaryDirectory() as root:
                server = ScoringServer(root)
                await server.start()
                try:
                    report = await run_load(
                        "127.0.0.1", server.port, LoadPlan.quick(seed=22)
                    )
                finally:
                    await server.stop()
                return report

        report = run(scenario())
        assert report.violations == []
        assert report.mode == "closed"
        assert report.target_rate is None
        assert report.keepalive_reuses > 0
