"""Tests for deadlines, admission policy, and bulkhead lanes."""

from __future__ import annotations

import asyncio

import pytest

from repro.exceptions import ScoreRefusal
from repro.serve.admission import AdmissionPolicy, Deadline, TenantLane


class TestDeadline:
    def test_after_and_remaining(self):
        clock = lambda: 10.0  # noqa: E731
        deadline = Deadline.after(2.0, clock)
        assert deadline.remaining(clock) == pytest.approx(2.0)
        deadline.check("start", clock)  # no raise

    def test_expired_refuses_with_stage(self):
        now = {"t": 0.0}
        clock = lambda: now["t"]  # noqa: E731
        deadline = Deadline.after(1.0, clock)
        now["t"] = 1.5
        with pytest.raises(ScoreRefusal) as excinfo:
            deadline.check("score:bisect", clock)
        assert excinfo.value.status == 504
        assert excinfo.value.reason == "deadline-exceeded"
        assert "score:bisect" in str(excinfo.value)

    def test_nonpositive_budget_refused(self):
        with pytest.raises(ScoreRefusal, match="budget"):
            Deadline.after(0.0)


class TestAdmissionPolicy:
    def test_budget_clamped_to_max(self):
        policy = AdmissionPolicy(default_budget=5.0, max_budget=10.0)
        assert policy.budget_for(None) == 5.0
        assert policy.budget_for(3.0) == 3.0
        assert policy.budget_for(99.0) == 10.0

    def test_invalid_requested_budget_refused(self):
        with pytest.raises(ScoreRefusal, match="budget"):
            AdmissionPolicy().budget_for(-1.0)

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError, match="queue_depth"):
            AdmissionPolicy(queue_depth=0)
        with pytest.raises(ValueError, match="default_budget"):
            AdmissionPolicy(default_budget=60.0, max_budget=30.0)


class TestTenantLane:
    def test_jobs_run_in_submission_order(self):
        async def scenario():
            lane = TenantLane("t", queue_depth=8)
            seen = []

            def job(i):
                async def run():
                    seen.append(i)
                    return i

                return run

            deadline = Deadline.after(5.0)
            results = await asyncio.gather(
                *(lane.submit(job(i), deadline) for i in range(5))
            )
            await lane.drain()
            return results, seen

        results, seen = asyncio.run(scenario())
        assert results == [0, 1, 2, 3, 4]
        assert seen == [0, 1, 2, 3, 4]

    def test_full_queue_refuses_429(self):
        async def scenario():
            lane = TenantLane("t", queue_depth=1)
            release = asyncio.Event()

            async def slow():
                await release.wait()
                return "slow"

            deadline = Deadline.after(5.0)
            first = asyncio.ensure_future(lane.submit(slow, deadline))
            await asyncio.sleep(0.01)  # worker picks up the slow job

            async def second():
                return "queued"

            queued = asyncio.ensure_future(lane.submit(second, deadline))
            await asyncio.sleep(0.01)  # fills the depth-1 queue
            with pytest.raises(ScoreRefusal) as excinfo:
                await lane.submit(second, deadline)
            release.set()
            assert await first == "slow"
            assert await queued == "queued"
            await lane.drain()
            return excinfo.value

        refusal = asyncio.run(scenario())
        assert refusal.status == 429
        assert refusal.reason == "queue-full"
        assert refusal.retry_after is not None

    def test_worker_crash_restarts_and_fails_job_retryably(self):
        async def scenario():
            lane = TenantLane("t", queue_depth=4)
            deadline = Deadline.after(5.0)

            async def bomb():
                raise RuntimeError("worker compromised")

            with pytest.raises(ScoreRefusal) as excinfo:
                await lane.submit(bomb, deadline)

            async def fine():
                return "recovered"

            result = await lane.submit(fine, deadline)
            await lane.drain()
            return excinfo.value, result, lane.restarts

        refusal, result, restarts = asyncio.run(scenario())
        assert refusal.status == 503
        assert refusal.reason == "worker-crash"
        assert refusal.retryable
        assert result == "recovered"
        assert restarts == 1

    def test_expired_job_refused_at_dequeue(self):
        async def scenario():
            lane = TenantLane("t", queue_depth=4)
            deadline = Deadline.after(0.01)
            await asyncio.sleep(0.05)

            async def never():  # pragma: no cover - must not run
                raise AssertionError("expired job must not execute")

            with pytest.raises(ScoreRefusal) as excinfo:
                await lane.submit(never, deadline)
            await lane.drain()
            return excinfo.value

        refusal = asyncio.run(scenario())
        assert refusal.status == 504

    def test_draining_lane_refuses(self):
        async def scenario():
            lane = TenantLane("t")

            async def fine():
                return 1

            await lane.submit(fine, Deadline.after(5.0))
            await lane.drain()
            with pytest.raises(ScoreRefusal) as excinfo:
                await lane.submit(fine, Deadline.after(5.0))
            return excinfo.value

        refusal = asyncio.run(scenario())
        assert refusal.status == 503
        assert refusal.reason == "draining"
