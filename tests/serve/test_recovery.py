"""Crash-recovery integration: SIGKILL the service, restart, compare bits.

Boots the real ``repro serve`` CLI in a subprocess, drives traffic at
it, kills it with SIGKILL mid-life, restarts it on the same state
directory, and asserts the recovered tenants are *bit-identical*:
same stream digests, same scores for the same requests.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import LoadPlan, run_load
from repro.serve.loadgen import request

pytestmark = pytest.mark.faults

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _spawn_server(state_dir: Path, ready_file: Path, *extra: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--state-dir",
            str(state_dir),
            "--ready-file",
            str(ready_file),
            *extra,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _await_port(ready_file: Path, timeout: float = 20.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if ready_file.exists():
            text = ready_file.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.05)
    raise TimeoutError(f"server never wrote {ready_file}")


def test_sigkill_then_restart_is_bit_identical(tmp_path):
    state_dir = tmp_path / "state"
    ready = tmp_path / "ready-1.txt"
    plan = LoadPlan.quick(seed=13)
    server = _spawn_server(state_dir, ready, "--snapshot-every", "2")
    try:
        port = _await_port(ready)

        async def before():
            report = await run_load("127.0.0.1", port, plan)
            assert report.violations == []
            tenants = {}
            scores = {}
            for index in range(plan.tenants):
                tid = f"tenant-{index:02d}"
                _, info = await request(
                    "127.0.0.1", port, "GET", f"/v1/tenants/{tid}"
                )
                tenants[tid] = info
                _, body = await request(
                    "127.0.0.1",
                    port,
                    "POST",
                    f"/v1/tenants/{tid}/score",
                    {
                        "family": "stide",
                        "window": 4,
                        "events": list(range(8)) * 10,
                    },
                )
                scores[tid] = body["scores"]
            return tenants, scores

        tenants_before, scores_before = asyncio.run(before())
        assert all(info["seq"] > 0 for info in tenants_before.values())
    finally:
        server.kill()  # SIGKILL: no flush, no atexit, no goodbye
        server.wait(timeout=10)
    assert server.returncode == -signal.SIGKILL

    ready2 = tmp_path / "ready-2.txt"
    revived = _spawn_server(state_dir, ready2)
    try:
        port = _await_port(ready2)

        async def after():
            tenants = {}
            scores = {}
            for tid in tenants_before:
                _, info = await request(
                    "127.0.0.1", port, "GET", f"/v1/tenants/{tid}"
                )
                tenants[tid] = info
                _, body = await request(
                    "127.0.0.1",
                    port,
                    "POST",
                    f"/v1/tenants/{tid}/score",
                    {
                        "family": "stide",
                        "window": 4,
                        "events": list(range(8)) * 10,
                    },
                )
                scores[tid] = body["scores"]
            return tenants, scores

        tenants_after, scores_after = asyncio.run(after())
    finally:
        revived.terminate()
        revived.wait(timeout=10)

    for tid, info in tenants_before.items():
        assert tenants_after[tid]["digest"] == info["digest"], tid
        assert tenants_after[tid]["seq"] == info["seq"], tid
        assert tenants_after[tid]["events"] == info["events"], tid
    assert scores_after == scores_before


def test_sigkill_mid_traffic_never_acknowledges_lost_writes(tmp_path):
    """Kill the server while a load run is in flight; every chunk the
    client saw acknowledged must survive the restart."""
    state_dir = tmp_path / "state"
    ready = tmp_path / "ready-1.txt"
    server = _spawn_server(state_dir, ready)
    acked: dict[str, str] = {}
    try:
        port = _await_port(ready)

        async def drive():
            # Acknowledge a few chunks, then the killer strikes.
            for index in range(3):
                status, ack = await request(
                    "127.0.0.1",
                    port,
                    "POST",
                    "/v1/tenants/victim/train",
                    {
                        "events": [index % 8] * 64,
                        "alphabet_size": 8,
                        "request_id": f"chunk-{index}",
                    },
                )
                assert status == 200
                acked[str(ack["seq"])] = ack["digest"]

        asyncio.run(drive())
    finally:
        server.kill()
        server.wait(timeout=10)

    ready2 = tmp_path / "ready-2.txt"
    revived = _spawn_server(state_dir, ready2)
    try:
        port = _await_port(ready2)

        async def inspect():
            _, info = await request(
                "127.0.0.1", port, "GET", "/v1/tenants/victim"
            )
            return info

        info = asyncio.run(inspect())
    finally:
        revived.terminate()
        revived.wait(timeout=10)

    last_seq = max(int(seq) for seq in acked)
    assert info["seq"] == last_seq
    assert info["digest"] == acked[str(last_seq)]
