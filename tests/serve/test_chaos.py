"""Chaos tests: every serving fault, zero wrong scores.

Marked ``faults`` so the dedicated CI fault-matrix job runs them; the
suite is small enough to also ride along in the default run.
"""

from __future__ import annotations

import asyncio
import tempfile

import numpy as np
import pytest

from repro.exceptions import DetectorConfigurationError
from repro.serve import (
    SERVE_FAULT_KINDS,
    ChaosDirector,
    LoadPlan,
    ScoringServer,
    ServeFaultSchedule,
    run_load,
)
from repro.serve.chaos import WorkerCrashFault

pytestmark = pytest.mark.faults


class TestServeFaultSchedule:
    def test_rejects_sweep_only_kinds(self):
        with pytest.raises(DetectorConfigurationError, match="unknown fault"):
            ServeFaultSchedule(rate=0.5, kinds=("raise",))

    def test_defaults_to_full_serving_vocabulary(self):
        schedule = ServeFaultSchedule(rate=0.5)
        assert schedule.kinds == SERVE_FAULT_KINDS

    def test_decisions_are_deterministic(self):
        a = ServeFaultSchedule(rate=0.5, seed=9)
        b = ServeFaultSchedule(rate=0.5, seed=9)
        keys = [f"t|score|{i}" for i in range(50)]
        assert [a.decide(k, 1) for k in keys] == [b.decide(k, 1) for k in keys]
        drawn = {a.decide(k, 1) for k in keys} - {None}
        assert drawn <= set(SERVE_FAULT_KINDS)
        assert drawn  # rate 0.5 over 50 keys draws something

    def test_retry_attempts_are_fault_free_by_default(self):
        schedule = ServeFaultSchedule(rate=1.0, seed=9)
        assert schedule.decide("k", 1) is not None
        assert schedule.decide("k", 2) is None


class TestChaosDirector:
    def test_inactive_director_is_a_no_op(self):
        director = ChaosDirector()
        events = np.asarray([1, 2, 3], dtype=np.int64)
        assert director.maybe_corrupt_events(events, 8, "k") is events
        assert not director.store_read_faulty("k")
        director.maybe_worker_crash("k")  # no raise
        assert not director.active

    def test_corruption_pushes_a_code_out_of_the_alphabet(self):
        schedule = ServeFaultSchedule(
            rate=1.0, seed=3, kinds=("corrupt-event",)
        )
        director = ChaosDirector(schedule)
        events = np.asarray([1, 2, 3, 4], dtype=np.int64)
        poisoned = director.maybe_corrupt_events(events, 8, "k")
        assert poisoned is not events
        assert events.tolist() == [1, 2, 3, 4]  # original untouched
        assert poisoned.max() >= 8  # detectable by validation
        assert (poisoned != events).sum() == 1

    def test_worker_crash_raises_base_exception(self):
        schedule = ServeFaultSchedule(
            rate=1.0, seed=3, kinds=("worker-crash",)
        )
        director = ChaosDirector(schedule)
        with pytest.raises(WorkerCrashFault):
            director.maybe_worker_crash("k")
        assert not isinstance(WorkerCrashFault("x"), Exception)

    def test_injections_are_counted(self):
        schedule = ServeFaultSchedule(rate=1.0, seed=3, kinds=("store-read",))
        director = ChaosDirector(schedule)
        assert director.store_read_faulty("k")
        assert director.injected == {"store-read": 1}


async def _chaos_run(kinds, rate=0.5, seed=11, plan_seed=5):
    with tempfile.TemporaryDirectory() as root:
        schedule = ServeFaultSchedule(rate=rate, seed=seed, kinds=kinds)
        chaos = ChaosDirector(schedule)
        server = ScoringServer(root, chaos=chaos, retries=1)
        await server.start()
        try:
            report = await run_load(
                "127.0.0.1", server.port, LoadPlan.quick(seed=plan_seed)
            )
        finally:
            await server.stop()
        return report, chaos, server


class TestNoWrongScoreUnderChaos:
    """The invariant: faults produce refusals/retries, never bad bytes."""

    @pytest.mark.parametrize("kind", SERVE_FAULT_KINDS)
    def test_single_fault_kind(self, kind):
        report, chaos, _ = asyncio.run(_chaos_run((kind,)))
        assert report.violations == []
        if kind != "store-read":  # store-read only fires at recovery
            assert chaos.injected.get(kind, 0) > 0

    def test_all_fault_kinds_together(self):
        report, chaos, server = asyncio.run(
            _chaos_run(SERVE_FAULT_KINDS, rate=0.4)
        )
        assert report.violations == []
        assert sum(chaos.injected.values()) > 0
        # chaos or not, every tenant converged to full training
        assert report.trains_ok == 6

    def test_worker_crashes_restart_lanes(self):
        report, chaos, server = asyncio.run(
            _chaos_run(("worker-crash",), rate=0.6)
        )
        assert report.violations == []
        restarts = sum(
            lane.restarts for lane in server._lanes.values()
        )
        assert restarts == chaos.injected.get("worker-crash", 0)
        assert restarts > 0

    def test_store_read_fault_forces_full_log_recovery(self):
        async def scenario():
            with tempfile.TemporaryDirectory() as root:
                server = ScoringServer(root, snapshot_every=1)
                await server.start()
                report = await run_load(
                    "127.0.0.1", server.port, LoadPlan.quick(seed=2)
                )
                digests = {
                    tid: state.digest()
                    for tid, state in server.tenants.tenants.items()
                }
                await server.stop()
                assert report.violations == []

                # restart with snapshot reads failing: recovery must
                # fall back to the full WAL, bit-identically
                chaos = ChaosDirector(
                    ServeFaultSchedule(
                        rate=1.0, seed=1, kinds=("store-read",)
                    )
                )
                revived = ScoringServer(root, chaos=chaos)
                await revived.start()
                try:
                    assert revived.recovery is not None
                    assert revived.recovery.from_snapshot == 0
                    assert revived.recovery.tenants == len(digests)
                    for tid, digest in digests.items():
                        assert (
                            revived.tenants.tenants[tid].digest() == digest
                        )
                finally:
                    await revived.stop()

        asyncio.run(scenario())
