"""Tests for repro.io — trace and dataset serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.io import (
    TraceIOError,
    load_dataset,
    read_trace_text,
    save_dataset,
    write_trace_text,
)
from repro.sequences.alphabet import Alphabet
from repro.syscalls import build_dataset, lpr_model


class TestTextTraces:
    def test_roundtrip_syscall_names(self, tmp_path):
        alphabet = Alphabet(["open", "read", "close"])
        stream = np.asarray([0, 1, 1, 2])
        path = tmp_path / "trace.txt"
        write_trace_text(path, stream, alphabet)
        assert path.read_text() == "open\nread\nread\nclose\n"
        assert np.array_equal(read_trace_text(path, alphabet), stream)

    def test_roundtrip_integer_symbols(self, tmp_path):
        alphabet = Alphabet.of_size(8)
        stream = np.arange(8)
        path = tmp_path / "paper.txt"
        write_trace_text(path, stream, alphabet)
        assert np.array_equal(read_trace_text(path, alphabet), stream)

    def test_blank_lines_skipped(self, tmp_path):
        alphabet = Alphabet(["a", "b"])
        path = tmp_path / "trace.txt"
        path.write_text("a\n\nb\n  \na\n")
        assert read_trace_text(path, alphabet).tolist() == [0, 1, 0]

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceIOError, match="not found"):
            read_trace_text(tmp_path / "nope.txt", Alphabet("ab"))

    def test_unknown_symbol_reports_line(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("a\nz\n")
        with pytest.raises(TraceIOError, match=":2"):
            read_trace_text(path, Alphabet("ab"))


class TestDatasetArchive:
    @pytest.fixture(scope="class")
    def dataset(self):
        return build_dataset(
            lpr_model(),
            training_sessions=8,
            test_normal_sessions=3,
            test_intrusion_sessions=2,
            paths_per_session=6,
        )

    def test_roundtrip_preserves_everything(self, tmp_path, dataset):
        path = tmp_path / "lpr.npz"
        save_dataset(path, dataset)
        loaded = load_dataset(path)
        assert loaded.program_name == dataset.program_name
        assert loaded.alphabet.symbols == tuple(
            str(s) for s in dataset.alphabet.symbols
        )
        assert len(loaded.training) == len(dataset.training)
        assert len(loaded.test_intrusions) == len(dataset.test_intrusions)
        for original, restored in zip(dataset.training, loaded.training):
            assert np.array_equal(original.stream, restored.stream)
        for original, restored in zip(
            dataset.test_intrusions, loaded.test_intrusions
        ):
            assert restored.intrusion_region == original.intrusion_region
            assert restored.exploit_name == original.exploit_name

    def test_loaded_dataset_is_usable(self, tmp_path, dataset):
        from repro.detectors import StideDetector

        path = tmp_path / "lpr.npz"
        save_dataset(path, dataset)
        loaded = load_dataset(path)
        detector = StideDetector(3, loaded.alphabet.size)
        detector.fit_many(loaded.training_streams())
        trace = loaded.test_intrusions[0]
        responses = detector.score_stream(trace.stream)
        start, stop = trace.intrusion_region
        assert responses[max(0, start - 2) : stop].max() == 1.0

    def test_missing_archive(self, tmp_path):
        with pytest.raises(TraceIOError, match="not found"):
            load_dataset(tmp_path / "nope.npz")

    def test_malformed_archive(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, alphabet=np.asarray(["a"]))
        with pytest.raises(TraceIOError, match="malformed"):
            load_dataset(path)


class TestReadJsonlTolerant:
    """The shared torn-tail guard under checkpoints and the serve WAL."""

    def test_parses_numbered_records(self, tmp_path):
        from repro.io import read_jsonl_tolerant

        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        records = read_jsonl_tolerant(path)
        assert records == [(1, {"a": 1}), (3, {"b": 2})]

    def test_missing_file_raises(self, tmp_path):
        from repro.exceptions import CheckpointError
        from repro.io import read_jsonl_tolerant

        with pytest.raises(CheckpointError, match="not found"):
            read_jsonl_tolerant(tmp_path / "absent.jsonl")

    def test_torn_tail_skipped_and_counted(self, tmp_path):
        from repro.io import read_jsonl_tolerant
        from repro.runtime.telemetry import Telemetry, activated

        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\n{"b": 2')  # killed mid-append
        collector = Telemetry()
        with activated(collector):
            records = read_jsonl_tolerant(path, torn_tail_counter="wal.torn")
        assert records == [(1, {"a": 1})]
        assert collector.metrics.counter("wal.torn") == 1

    def test_non_object_tail_counts_as_torn(self, tmp_path):
        from repro.io import read_jsonl_tolerant

        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\n[1, 2]\n')
        assert read_jsonl_tolerant(path) == [(1, {"a": 1})]

    def test_mid_file_damage_honors_strict(self, tmp_path):
        from repro.exceptions import CheckpointError
        from repro.io import read_jsonl_tolerant

        path = tmp_path / "log.jsonl"
        path.write_text('not json\n{"a": 1}\n')
        with pytest.raises(CheckpointError, match=":1"):
            read_jsonl_tolerant(path, strict=True)
        assert read_jsonl_tolerant(path, strict=False) == [(2, {"a": 1})]
