"""Shared fixtures: a reduced-scale corpus with the paper's structure.

The fixtures are session-scoped — the corpus is deterministic under
its seed, and most tests only read from it.  Tests that need to
mutate or mis-configure build their own objects.
"""

from __future__ import annotations

import pytest

from repro.datagen.suite import EvaluationSuite, build_suite
from repro.datagen.training import TrainingData, generate_training_data
from repro.params import PaperParams, scaled_params
from repro.syscalls import SyscallDataset, build_dataset, sendmail_model

#: Stream length used by the shared corpus; large enough that every
#: rare jump pair appears well over 50 times yet stays rare.
TEST_STREAM_LENGTH = 60_000


@pytest.fixture(scope="session")
def params() -> PaperParams:
    """Reduced-scale parameters with the paper's structure."""
    return scaled_params(TEST_STREAM_LENGTH)


@pytest.fixture(scope="session")
def training(params: PaperParams) -> TrainingData:
    """The shared training corpus (validated on construction)."""
    return generate_training_data(params)


@pytest.fixture(scope="session")
def suite(training: TrainingData) -> EvaluationSuite:
    """The shared evaluation suite (8 anomaly sizes x 14 windows)."""
    return build_suite(training=training)


@pytest.fixture(scope="session")
def syscall_dataset() -> SyscallDataset:
    """A small sendmail-like syscall dataset."""
    return build_dataset(
        sendmail_model(),
        training_sessions=150,
        test_normal_sessions=20,
        test_intrusion_sessions=15,
    )
