"""PlanRunner: exactly-once semantics, payload identity, kill/resume."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.evaluation.experiment import run_paper_experiment
from repro.io import cell_to_record
from repro.params import scaled_params
from repro.plans import (
    EnsembleStage,
    ExperimentPlan,
    PlanRunner,
    RenderStage,
    SweepStage,
)
from repro.plans.runner import (
    load_journal,
    maps_from_payload,
    payload_digest,
    read_done_marker,
    sweep_payload,
)

QUICK = dict(
    stream_len=12000,
    detectors=("stide",),
    anomaly_sizes=(2, 3),
    window_sizes=(2, 3, 4),
)


def quick_plan() -> ExperimentPlan:
    return ExperimentPlan(
        name="quick",
        stages=(
            SweepStage(name="maps", **QUICK),
            RenderStage(name="charts", needs=("maps",)),
        ),
    )


class TestExactlyOnce:
    def test_rerun_computes_nothing(self, tmp_path: Path) -> None:
        run_dir = tmp_path / "run"
        first = PlanRunner(quick_plan(), run_dir=run_dir).run()
        assert first.executed == 2 and first.cached == 0
        second = PlanRunner(quick_plan(), run_dir=run_dir).run()
        assert second.executed == 0 and second.cached == 2
        assert [o.digest for o in first.outcomes] == [
            o.digest for o in second.outcomes
        ]
        # One journal completion per stage, ever.
        events = [
            e for e in load_journal(run_dir) if e["event"] == "completed"
        ]
        assert sorted(e["stage"] for e in events) == ["charts", "maps"]

    def test_cached_run_repairs_deleted_outputs(self, tmp_path: Path) -> None:
        run_dir = tmp_path / "run"
        PlanRunner(quick_plan(), run_dir=run_dir).run()
        payload_path = run_dir / "outputs" / "maps.json"
        original = payload_path.read_bytes()
        payload_path.unlink()
        (run_dir / "done" / "maps.json").unlink()
        report = PlanRunner(quick_plan(), run_dir=run_dir).run()
        assert report.executed == 0
        assert payload_path.read_bytes() == original
        assert read_done_marker(run_dir, "maps") is not None

    def test_config_change_invalidates_cache(self, tmp_path: Path) -> None:
        run_dir = tmp_path / "run"
        PlanRunner(quick_plan(), run_dir=run_dir).run()
        changed = ExperimentPlan(
            name="quick",
            stages=(
                SweepStage(name="maps", **{**QUICK, "seed": 5}),
                RenderStage(name="charts", needs=("maps",)),
            ),
        )
        report = PlanRunner(changed, run_dir=run_dir).run()
        assert report.executed == 2  # sweep changed; render invalidated too


class TestPayloadIdentity:
    def test_plan_outputs_match_run_paper_experiment(
        self, tmp_path: Path
    ) -> None:
        """The identity behind plans/paper.toml at test scale: the plan
        pipeline produces bit-identical maps to the imperative API."""
        from dataclasses import replace

        report = PlanRunner(quick_plan(), run_dir=tmp_path / "run").run()
        params = replace(
            scaled_params(12000), anomaly_sizes=(2, 3), window_sizes=(2, 3, 4)
        )
        reference = run_paper_experiment(params=params, detectors=["stide"])
        assert payload_digest(sweep_payload(reference.maps)) == next(
            o.digest for o in report.outcomes if o.name == "maps"
        )

    def test_sweep_payload_round_trip_is_bit_identical(self) -> None:
        from dataclasses import replace

        params = replace(
            scaled_params(12000), anomaly_sizes=(2, 3), window_sizes=(2, 3, 4)
        )
        maps = run_paper_experiment(params=params, detectors=["stide"]).maps
        rebuilt = maps_from_payload(sweep_payload(maps))
        for name, original in maps.items():
            assert [
                cell_to_record(name, cell) for cell in original
            ] == [cell_to_record(name, cell) for cell in rebuilt[name]]

    def test_ensemble_stage_payload_fields(self, tmp_path: Path) -> None:
        plan = ExperimentPlan(
            name="picky",
            stages=(
                SweepStage(name="maps", **{**QUICK, "detectors": ("stide", "markov")}),
                EnsembleStage(name="pick", needs=("maps",), size=2, max_window=4),
            ),
        )
        report = PlanRunner(plan, run_dir=tmp_path / "run").run()
        payload = json.loads(
            (tmp_path / "run" / "outputs" / "pick.json").read_text()
        )
        assert payload["kind"] == "ensemble"
        assert "recommendation" in payload and "agreement" in payload
        assert report.executed == 2


@pytest.mark.faults
class TestKillResume:
    def test_resume_after_kill_is_bit_identical(self, tmp_path: Path) -> None:
        """SIGKILL mid-sweep, resume, compare against an uninterrupted
        run: outputs byte-identical, completed stages not recomputed."""
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(quick_plan().to_dict()))
        clean_dir = tmp_path / "clean"
        killed_dir = tmp_path / "killed"
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src)

        def run_cli(run_dir: Path) -> subprocess.Popen:
            return subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "plan",
                    "run",
                    str(plan_path),
                    "--run-dir",
                    str(run_dir),
                ],
                env=env,
                stdout=subprocess.PIPE,
                text=True,
            )

        clean = run_cli(clean_dir)
        assert clean.wait(timeout=300) == 0

        victim = run_cli(killed_dir)
        cells = killed_dir / "cells" / "maps.cells.jsonl"
        deadline = time.monotonic() + 120
        while not cells.exists() and time.monotonic() < deadline:
            if victim.poll() is not None:
                break
            time.sleep(0.01)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)

        resumed = run_cli(killed_dir)
        stdout, _ = resumed.communicate(timeout=300)
        assert resumed.returncode == 0

        for name in ("maps", "charts"):
            clean_bytes = (clean_dir / "outputs" / f"{name}.json").read_bytes()
            killed_bytes = (
                killed_dir / "outputs" / f"{name}.json"
            ).read_bytes()
            assert clean_bytes == killed_bytes

        # And a further re-run adopts everything from the store.
        final = run_cli(killed_dir)
        stdout, _ = final.communicate(timeout=300)
        assert final.returncode == 0
        assert "0 executed / 2 cached / 2 total" in stdout
