"""File-queue dispatch: leases, takeover, exactly-once completion."""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.exceptions import PlanError
from repro.plans import (
    ExperimentPlan,
    RenderStage,
    SweepStage,
    Worker,
    load_plan,
    prepare_run,
    run_dispatch,
    run_status,
)
from repro.plans.dispatch import _Heartbeat
from repro.plans.runner import load_journal


def quick_plan() -> ExperimentPlan:
    return ExperimentPlan(
        name="quick",
        stages=(
            SweepStage(
                name="maps",
                stream_len=12000,
                detectors=("stide",),
                anomaly_sizes=(2, 3),
                window_sizes=(2, 3, 4),
            ),
            RenderStage(name="charts", needs=("maps",)),
        ),
    )


class TestLeases:
    def test_claim_is_exclusive(self, tmp_path: Path) -> None:
        run_dir = prepare_run(quick_plan(), tmp_path / "run")
        first = Worker(run_dir, worker_id="a")
        second = Worker(run_dir, worker_id="b")
        assert first._claim("maps") is True
        assert second._claim("maps") is False
        first._release("maps")
        assert second._claim("maps") is True

    def test_fresh_lease_not_taken_over(self, tmp_path: Path) -> None:
        run_dir = prepare_run(quick_plan(), tmp_path / "run")
        holder = Worker(run_dir, worker_id="a", lease_ttl=30.0)
        contender = Worker(run_dir, worker_id="b", lease_ttl=30.0)
        assert holder._claim("maps")
        assert contender._try_takeover("maps") is False

    def test_stale_lease_single_takeover_winner(self, tmp_path: Path) -> None:
        run_dir = prepare_run(quick_plan(), tmp_path / "run")
        holder = Worker(run_dir, worker_id="dead", lease_ttl=0.05)
        assert holder._claim("maps")
        lock = run_dir / "leases" / "maps.lock"
        stale = time.time() - 60
        os.utime(lock, (stale, stale))
        contender_b = Worker(run_dir, worker_id="b", lease_ttl=0.05)
        contender_c = Worker(run_dir, worker_id="c", lease_ttl=0.05)
        wins = [
            contender_b._try_takeover("maps"),
            contender_c._try_takeover("maps"),
        ]
        assert sorted(wins) == [False, True]

    def test_heartbeat_survives_transient_utime_error(
        self, tmp_path: Path, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        """An EIO-style hiccup must not silence the heartbeat: a live
        worker whose lease stopped refreshing would look abandoned, be
        taken over, and have its stage run concurrently twice."""
        lock = tmp_path / "maps.lock"
        lock.write_text("{}")
        real_utime = os.utime
        calls = {"count": 0}

        def flaky_utime(path: object, *args: object, **kwargs: object) -> None:
            calls["count"] += 1
            if calls["count"] <= 2:
                raise PermissionError("transient refresh failure")
            real_utime(path, *args, **kwargs)  # type: ignore[arg-type]

        monkeypatch.setattr("repro.plans.dispatch.os.utime", flaky_utime)
        with _Heartbeat(lock, 0.01):
            deadline = time.monotonic() + 5.0
            while calls["count"] < 5 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert calls["count"] >= 5

    def test_heartbeat_stops_once_the_lock_is_gone(self, tmp_path: Path) -> None:
        """A vanished lock means released or taken over — the refresher
        must exit rather than resurrect the path."""
        heartbeat = _Heartbeat(tmp_path / "gone.lock", 0.01)
        with heartbeat:
            deadline = time.monotonic() + 5.0
            while heartbeat._thread.is_alive() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not heartbeat._thread.is_alive()

    def test_status_reports_leased_stage(self, tmp_path: Path) -> None:
        run_dir = prepare_run(quick_plan(), tmp_path / "run")
        Worker(run_dir, worker_id="a")._claim("maps")
        status = run_status(run_dir)
        assert "stage maps: leased" in status
        assert "duplicates: 0" in status

    def test_worker_requires_run_directory(self, tmp_path: Path) -> None:
        with pytest.raises(PlanError, match="not a plan run directory"):
            Worker(tmp_path / "nowhere")


@pytest.mark.faults
class TestTakeoverEndToEnd:
    def test_crashed_worker_lease_is_taken_over(self, tmp_path: Path) -> None:
        """Two workers, one crashes holding a lease (os._exit, as a
        SIGKILL would): the survivor takes over after the TTL, every
        stage completes exactly once, and the survivor's trace holds
        the takeover counter."""
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        procs = run_dispatch(
            quick_plan(),
            tmp_path / "run",
            workers=2,
            lease_ttl=2.0,
            trace_dir=trace_dir,
            crash_worker=0,
            crash_after_claims=1,
            max_seconds=240,
            stagger=2.0,
        )
        codes = sorted(proc.returncode for proc in procs)
        assert codes == [0, 137]  # one clean drain, one injected crash

        status = run_status(tmp_path / "run")
        assert "done: 2/2" in status
        assert "duplicates: 0" in status

        events = [
            e
            for e in load_journal(tmp_path / "run")
            if e["event"] == "completed"
        ]
        assert sorted(e["stage"] for e in events) == ["charts", "maps"]

        survivor_trace = trace_dir / "trace-w1.jsonl"
        counters = {}
        for line in survivor_trace.read_text().splitlines():
            record = json.loads(line)
            if record.get("type") == "counter":
                counters[record["name"]] = record["value"]
        assert counters.get("plan.lease.takeover", 0) >= 1
        assert counters.get("plan.lease.claim", 0) >= counters.get(
            "plan.lease.released", 0
        )

        from repro.runtime.telemetry import check_trace_counters, read_trace

        _headers, spans, trace_counters, _hists = read_trace(survivor_trace)
        assert check_trace_counters(trace_counters, spans) == []

    def test_two_workers_share_the_queue(self, tmp_path: Path) -> None:
        pytest.importorskip("tomllib")
        plan = load_plan(
            Path(__file__).resolve().parents[2] / "plans" / "smoke.toml"
        )
        procs = run_dispatch(
            plan,
            tmp_path / "run",
            workers=2,
            lease_ttl=10.0,
            max_seconds=240,
        )
        assert [proc.returncode for proc in procs] == [0, 0]
        assert "duplicates: 0" in run_status(tmp_path / "run")
