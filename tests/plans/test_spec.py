"""Plan spec: round-trips, validation failure modes, fingerprints."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exceptions import PlanError
from repro.params import STREAM_LEN_ENV_VAR
from repro.plans import (
    EnsembleStage,
    ExperimentPlan,
    RenderStage,
    RobustnessStage,
    SweepStage,
    load_plan,
    paper_plan,
    plan_from_dict,
    stage_from_dict,
    stage_key,
)

SMOKE_PLAN = ExperimentPlan(
    name="smoke",
    stages=(
        SweepStage(
            name="maps",
            stream_len=12000,
            detectors=("stide", "markov"),
            anomaly_sizes=(2, 3),
            window_sizes=(2, 3, 4),
        ),
        RobustnessStage(
            name="robust",
            seeds=(1,),
            stream_len=12000,
            test_stream_len=500,
            detectors=("stide",),
        ),
        EnsembleStage(name="pick", needs=("maps",), size=2, max_window=4),
        RenderStage(name="charts", needs=("maps",)),
    ),
)


class TestRoundTrip:
    def test_dict_round_trip_preserves_fingerprints(self) -> None:
        rebuilt = plan_from_dict(SMOKE_PLAN.to_dict())
        assert rebuilt == SMOKE_PLAN
        assert rebuilt.fingerprints() == SMOKE_PLAN.fingerprints()

    def test_json_file_round_trip(self, tmp_path: Path) -> None:
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(SMOKE_PLAN.to_dict()))
        assert load_plan(path).fingerprints() == SMOKE_PLAN.fingerprints()

    def test_toml_file_round_trip(self, tmp_path: Path) -> None:
        pytest.importorskip("tomllib")
        lines = ['name = "smoke"']
        for stage in SMOKE_PLAN.to_dict()["stages"]:
            lines.append("[[stages]]")
            for key, value in stage.items():
                lines.append(f"{key} = {json.dumps(value)}")
        path = tmp_path / "plan.toml"
        path.write_text("\n".join(lines))
        assert load_plan(path).fingerprints() == SMOKE_PLAN.fingerprints()

    def test_committed_plan_files_are_valid(self) -> None:
        pytest.importorskip("tomllib")
        plans_dir = Path(__file__).resolve().parents[2] / "plans"
        names = sorted(path.name for path in plans_dir.glob("*.toml"))
        assert names == ["nightly.toml", "paper.toml", "smoke.toml"]
        for name in names:
            plan = load_plan(plans_dir / name)
            assert plan.validate()

    def test_committed_paper_plan_matches_paper_plan_helper(self) -> None:
        """plans/paper.toml compiles to the same fingerprints as the
        programmatic plan behind the CLI — the identity that makes the
        plan file reproduce ``run_paper_experiment`` exactly."""
        pytest.importorskip("tomllib")
        path = Path(__file__).resolve().parents[2] / "plans" / "paper.toml"
        assert load_plan(path).fingerprints() == paper_plan().fingerprints()


class TestFingerprints:
    def test_stable_across_processes(self, tmp_path: Path) -> None:
        """The fingerprint is a pure function of plan content — equal
        when recomputed by a fresh interpreter."""
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(SMOKE_PLAN.to_dict()))
        script = (
            "import json, sys\n"
            "from repro.plans import load_plan\n"
            f"print(json.dumps(load_plan({str(path)!r}).fingerprints()))\n"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src)
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        assert json.loads(out.stdout) == SMOKE_PLAN.fingerprints()

    def test_rename_keeps_fingerprint(self) -> None:
        renamed = ExperimentPlan(
            name="smoke",
            stages=(
                SweepStage(
                    name="other",
                    stream_len=12000,
                    detectors=("stide", "markov"),
                    anomaly_sizes=(2, 3),
                    window_sizes=(2, 3, 4),
                ),
            ),
        )
        assert (
            renamed.fingerprints()["other"]
            == SMOKE_PLAN.fingerprints()["maps"]
        )

    def test_config_change_changes_fingerprint_downstream(self) -> None:
        changed = ExperimentPlan(
            name="smoke",
            stages=(
                SweepStage(
                    name="maps",
                    stream_len=13000,
                    detectors=("stide", "markov"),
                    anomaly_sizes=(2, 3),
                    window_sizes=(2, 3, 4),
                ),
                RenderStage(name="charts", needs=("maps",)),
            ),
        )
        base = SMOKE_PLAN.fingerprints()
        assert changed.fingerprints()["maps"] != base["maps"]
        assert changed.fingerprints()["charts"] != base["charts"]

    def test_stage_key_differs_from_fingerprint(self) -> None:
        fingerprint = SMOKE_PLAN.fingerprints()["maps"]
        assert stage_key(fingerprint) != fingerprint
        assert len(stage_key(fingerprint)) == 64

    def test_env_default_stream_len_is_in_the_fingerprint(
        self, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        """A stage with ``stream_len`` unset trains at the length
        REPRO_STREAM_LEN resolves to, so the effective length is part
        of the fingerprint — runs under different environments must
        not adopt each other's cached payloads."""
        plan = ExperimentPlan(
            name="envy",
            stages=(SweepStage(name="maps", detectors=("stide",)),),
        )
        monkeypatch.setenv(STREAM_LEN_ENV_VAR, "30000")
        small = plan.fingerprints()["maps"]
        monkeypatch.setenv(STREAM_LEN_ENV_VAR, "60000")
        large = plan.fingerprints()["maps"]
        assert small != large
        explicit = ExperimentPlan(
            name="envy",
            stages=(
                SweepStage(name="maps", stream_len=60000, detectors=("stide",)),
            ),
        )
        assert explicit.fingerprints()["maps"] == large

    def test_explicit_stream_len_ignores_the_environment(
        self, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        base = SMOKE_PLAN.fingerprints()
        monkeypatch.setenv(STREAM_LEN_ENV_VAR, "99999")
        assert SMOKE_PLAN.fingerprints() == base


class TestValidation:
    def test_cycle_is_named_stage_error(self) -> None:
        plan = ExperimentPlan(
            name="loop",
            stages=(
                SweepStage(name="a", detectors=("stide",), needs=("b",)),
                SweepStage(name="b", detectors=("stide",), needs=("a",)),
            ),
        )
        with pytest.raises(PlanError, match="dependency cycle.*a -> b"):
            plan.toposort()

    def test_unknown_reference_is_named_stage_error(self) -> None:
        plan = ExperimentPlan(
            name="dangling",
            stages=(SweepStage(name="a", detectors=("stide",), needs=("ghost",)),),
        )
        with pytest.raises(PlanError, match="'a' needs unknown stage 'ghost'"):
            plan.toposort()

    def test_self_dependency_is_rejected(self) -> None:
        plan = ExperimentPlan(
            name="selfish",
            stages=(SweepStage(name="a", detectors=("stide",), needs=("a",)),),
        )
        with pytest.raises(PlanError, match="'a' depends on itself"):
            plan.toposort()

    def test_render_needs_a_sweep(self) -> None:
        plan = ExperimentPlan(
            name="mistyped",
            stages=(
                RobustnessStage(name="robust", seeds=(1,)),
                RenderStage(name="charts", needs=("robust",)),
            ),
        )
        with pytest.raises(PlanError, match="'charts' needs a sweep stage"):
            plan.validate()

    def test_unknown_kind_rejected(self) -> None:
        with pytest.raises(PlanError, match="unknown kind 'mystery'"):
            stage_from_dict({"name": "x", "kind": "mystery"})

    def test_unknown_key_rejected(self) -> None:
        with pytest.raises(PlanError, match="stage 'x': unknown key"):
            stage_from_dict({"name": "x", "kind": "render", "dpi": 300})

    def test_unknown_detector_rejected(self) -> None:
        with pytest.raises(PlanError, match="unknown detectors: warp-drive"):
            SweepStage(name="x", detectors=("warp-drive",))

    def test_duplicate_stage_names_rejected(self) -> None:
        with pytest.raises(PlanError, match="duplicate stage name 'a'"):
            ExperimentPlan(
                name="dupe",
                stages=(
                    SweepStage(name="a", detectors=("stide",)),
                    RenderStage(name="a", needs=("a",)),
                ),
            )

    def test_explicit_empty_detectors_rejected_for_robustness(self) -> None:
        """detectors = [] would check nothing (vacuous pass) and its
        payload would collide with the all-detectors default."""
        with pytest.raises(PlanError, match="'x': detectors must not be empty"):
            stage_from_dict({"name": "x", "kind": "robustness", "detectors": []})

    def test_explicit_empty_seeds_rejected(self) -> None:
        with pytest.raises(PlanError, match="at least one seed"):
            stage_from_dict({"name": "x", "kind": "robustness", "seeds": []})

    def test_explicit_zero_test_stream_len_rejected(self) -> None:
        with pytest.raises(PlanError, match="test_stream_len must be positive"):
            stage_from_dict(
                {"name": "x", "kind": "robustness", "test_stream_len": 0}
            )

    def test_explicit_zero_stream_len_rejected(self) -> None:
        with pytest.raises(PlanError, match="stream_len must be positive"):
            stage_from_dict(
                {
                    "name": "x",
                    "kind": "sweep",
                    "stream_len": 0,
                    "detectors": ["stide"],
                }
            )

    def test_explicit_zero_max_window_rejected(self) -> None:
        with pytest.raises(PlanError, match="max_window must be >= 2"):
            stage_from_dict(
                {"name": "x", "kind": "ensemble", "needs": ["maps"], "max_window": 0}
            )

    def test_absent_robustness_keys_still_default(self) -> None:
        stage = stage_from_dict({"name": "x", "kind": "robustness"})
        assert stage.seeds == (1, 2, 3)
        assert stage.test_stream_len == 1000
        assert stage.detectors is None

    def test_toposort_is_deterministic(self) -> None:
        assert SMOKE_PLAN.toposort() == ("maps", "robust", "charts", "pick")

    def test_unsupported_extension(self, tmp_path: Path) -> None:
        path = tmp_path / "plan.yaml"
        path.write_text("name: nope")
        with pytest.raises(PlanError, match="unsupported plan extension"):
            load_plan(path)

    def test_missing_file(self, tmp_path: Path) -> None:
        with pytest.raises(PlanError, match="plan file not found"):
            load_plan(tmp_path / "absent.json")
