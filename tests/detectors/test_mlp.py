"""Tests for repro.detectors.mlp — the NumPy feed-forward network."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.mlp import MlpConfig, NextSymbolMlp
from repro.exceptions import DetectorConfigurationError


class TestConfig:
    def test_rejects_no_hidden_units(self):
        with pytest.raises(DetectorConfigurationError, match="hidden_units"):
            MlpConfig(hidden_units=0)

    def test_rejects_nonpositive_learning_rate(self):
        with pytest.raises(DetectorConfigurationError, match="learning_rate"):
            MlpConfig(learning_rate=0.0)

    def test_rejects_momentum_of_one(self):
        with pytest.raises(DetectorConfigurationError, match="momentum"):
            MlpConfig(momentum=1.0)

    def test_rejects_zero_epochs(self):
        with pytest.raises(DetectorConfigurationError, match="epochs"):
            MlpConfig(epochs=0)


class TestNetwork:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(DetectorConfigurationError, match="dimensions"):
            NextSymbolMlp(0, 4, MlpConfig())
        with pytest.raises(DetectorConfigurationError, match="dimensions"):
            NextSymbolMlp(4, 1, MlpConfig())

    def test_predict_proba_is_distribution(self):
        network = NextSymbolMlp(6, 4, MlpConfig(epochs=1))
        inputs = np.eye(6)[:3]
        probabilities = network.predict_proba(inputs)
        assert probabilities.shape == (3, 4)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert (probabilities >= 0).all()

    def test_train_validates_lengths(self):
        network = NextSymbolMlp(4, 3, MlpConfig(epochs=1))
        with pytest.raises(DetectorConfigurationError, match="equal length"):
            network.train(np.eye(4), np.zeros(3, dtype=int), np.ones(4))

    def test_train_validates_weights(self):
        network = NextSymbolMlp(4, 3, MlpConfig(epochs=1))
        with pytest.raises(DetectorConfigurationError, match="sum"):
            network.train(np.eye(4), np.zeros(4, dtype=int), np.zeros(4))

    def test_learns_deterministic_mapping(self):
        """One-hot input i -> target i % 3, learnable exactly."""
        config = MlpConfig(hidden_units=16, epochs=600, learning_rate=0.8, seed=0)
        network = NextSymbolMlp(6, 3, config)
        inputs = np.eye(6)
        targets = np.arange(6) % 3
        loss = network.train(inputs, targets, np.ones(6))
        predictions = network.predict_proba(inputs).argmax(axis=1)
        assert predictions.tolist() == targets.tolist()
        assert loss < 0.1

    def test_learns_weighted_conditional(self):
        """Sample weights shape the learned conditional distribution."""
        config = MlpConfig(hidden_units=12, epochs=800, learning_rate=0.6, seed=1)
        network = NextSymbolMlp(2, 2, config)
        # Context 0 -> target 0 with weight 95, target 1 with weight 5.
        inputs = np.asarray([[1.0, 0.0], [1.0, 0.0]])
        targets = np.asarray([0, 1])
        network.train(inputs, targets, np.asarray([95.0, 5.0]))
        probabilities = network.predict_proba(inputs[:1])[0]
        assert probabilities[0] == pytest.approx(0.95, abs=0.05)

    def test_seeded_initialization_reproducible(self):
        a = NextSymbolMlp(4, 3, MlpConfig(seed=5, epochs=1))
        b = NextSymbolMlp(4, 3, MlpConfig(seed=5, epochs=1))
        x = np.eye(4)
        assert np.allclose(a.predict_proba(x), b.predict_proba(x))

    def test_different_seeds_differ(self):
        a = NextSymbolMlp(4, 3, MlpConfig(seed=5, epochs=1))
        b = NextSymbolMlp(4, 3, MlpConfig(seed=6, epochs=1))
        x = np.eye(4)
        assert not np.allclose(a.predict_proba(x), b.predict_proba(x))

    def test_training_reduces_loss(self):
        inputs = np.eye(5)
        targets = np.asarray([0, 1, 2, 3, 0])
        weights = np.ones(5)
        short = NextSymbolMlp(5, 4, MlpConfig(seed=2, epochs=5))
        long = NextSymbolMlp(5, 4, MlpConfig(seed=2, epochs=400))
        assert long.train(inputs, targets, weights) < short.train(
            inputs, targets, weights
        )
