"""Tests for repro.detectors.tstide."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.stide import StideDetector
from repro.detectors.tstide import TStideDetector
from repro.exceptions import DetectorConfigurationError

# (0,1) dominates; (2,3) occurs once in 40 windows (rare below 5%).
TRAIN = [0, 1] * 20 + [2, 3]


class TestConfiguration:
    def test_rejects_bad_threshold(self):
        with pytest.raises(DetectorConfigurationError, match="rare_threshold"):
            TStideDetector(2, 8, rare_threshold=0.0)

    def test_threshold_property(self):
        assert TStideDetector(2, 8, rare_threshold=0.01).rare_threshold == 0.01


class TestResponses:
    @pytest.fixture()
    def tstide(self) -> TStideDetector:
        return TStideDetector(2, 8, rare_threshold=0.05).fit(TRAIN)

    def test_common_window_scores_zero(self, tstide):
        assert tstide.score_window((0, 1)) == 0.0

    def test_rare_window_scores_one(self, tstide):
        assert tstide.score_window((2, 3)) == 1.0

    def test_foreign_window_scores_one(self, tstide):
        assert tstide.score_window((3, 2)) == 1.0

    def test_responses_binary(self, tstide):
        responses = tstide.score_stream([0, 1, 0, 1, 2, 3, 2])
        assert set(np.unique(responses)) <= {0.0, 1.0}


class TestRelationToStide:
    def test_tstide_alarm_set_contains_stide_alarms(self, training):
        """t-stide adds rare windows on top of Stide's foreign windows."""
        test = training.stream[:3000]
        stide = StideDetector(6, 8).fit(training.stream)
        tstide = TStideDetector(
            6, 8, rare_threshold=training.params.rare_threshold
        ).fit(training.stream)
        stide_alarms = stide.score_stream(test) == 1.0
        tstide_alarms = tstide.score_stream(test) == 1.0
        assert (tstide_alarms | stide_alarms).tolist() == tstide_alarms.tolist()

    def test_tstide_flags_the_rare_jump_windows(self, training):
        """Training's own jump contexts are rare and must alarm."""
        tstide = TStideDetector(
            2, 8, rare_threshold=training.params.rare_threshold
        ).fit(training.stream)
        jump_pair = training.source.jump_pairs()[0]
        assert tstide.score_window(jump_pair) == 1.0

    def test_mfs_detected_even_below_anomaly_size(self, training, suite):
        """Unlike Stide, t-stide sees the rare construction of the MFS."""
        injected = suite.stream(8)
        tstide = TStideDetector(
            3, 8, rare_threshold=training.params.rare_threshold
        ).fit(training.stream)
        span = injected.incident_span(3)
        responses = tstide.score_stream(injected.stream)
        assert responses[span.start : span.stop].max() == 1.0


class TestFallbackPath:
    def test_wide_alphabet_uses_tuple_storage(self):
        rng = np.random.default_rng(1)
        train = rng.integers(0, 40, size=400)
        detector = TStideDetector(13, 40, rare_threshold=0.01).fit(train)
        assert detector._common_packed is None
        responses = detector.score_stream(train[:50])
        assert set(np.unique(responses)) <= {0.0, 1.0}
