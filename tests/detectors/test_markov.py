"""Tests for repro.detectors.markov."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.markov import MarkovDetector
from repro.exceptions import DetectorConfigurationError

# Deterministic cycle: P(next | current) = 1 along the cycle.
CYCLE = [0, 1, 2, 3] * 25


class TestConfiguration:
    def test_rejects_bad_floor(self):
        with pytest.raises(DetectorConfigurationError, match="rare_floor"):
            MarkovDetector(2, 8, rare_floor=1.0)

    def test_rejects_bad_unseen_response(self):
        with pytest.raises(DetectorConfigurationError, match="unseen_context"):
            MarkovDetector(2, 8, unseen_context_response=1.5)

    def test_floor_property(self):
        assert MarkovDetector(2, 8, rare_floor=0.01).rare_floor == 0.01


class TestProbabilities:
    def test_deterministic_transition_probability_one(self):
        detector = MarkovDetector(2, 8, rare_floor=0.0).fit(CYCLE)
        assert detector.transition_probability((0, 1)) == pytest.approx(1.0)

    def test_foreign_transition_probability_zero(self):
        detector = MarkovDetector(2, 8, rare_floor=0.0).fit(CYCLE)
        assert detector.transition_probability((0, 2)) == 0.0

    def test_split_transition_probabilities(self):
        # From 0: goes to 1 three times, to 2 once.
        stream = [0, 1, 0, 1, 0, 1, 0, 2]
        detector = MarkovDetector(2, 8, rare_floor=0.0).fit(stream)
        assert detector.transition_probability((0, 1)) == pytest.approx(3 / 4)
        assert detector.transition_probability((0, 2)) == pytest.approx(1 / 4)

    def test_floor_zeroes_rare_transitions(self):
        stream = [0, 1] * 100 + [0, 2] + [0, 1] * 100
        detector = MarkovDetector(2, 8, rare_floor=0.01).fit(stream)
        assert detector.transition_probability((0, 2)) == 0.0
        no_floor = MarkovDetector(2, 8, rare_floor=0.0).fit(stream)
        assert no_floor.transition_probability((0, 2)) > 0.0


class TestResponses:
    def test_normal_transition_response_zero(self):
        detector = MarkovDetector(2, 8).fit(CYCLE)
        assert detector.score_window((1, 2)) == 0.0

    def test_foreign_transition_response_one(self):
        detector = MarkovDetector(2, 8).fit(CYCLE)
        assert detector.score_window((1, 3)) == 1.0

    def test_unseen_context_response_default_maximal(self):
        detector = MarkovDetector(3, 8).fit(CYCLE)
        assert detector.score_window((7, 7, 7)) == 1.0

    def test_unseen_context_response_configurable(self):
        detector = MarkovDetector(3, 8, unseen_context_response=0.4).fit(CYCLE)
        assert detector.score_window((7, 7, 7)) == 0.4

    def test_graded_response(self):
        stream = [0, 1, 0, 1, 0, 1, 0, 2] * 20
        detector = MarkovDetector(2, 8, rare_floor=0.0).fit(stream)
        response = detector.score_window((0, 2))
        assert 0.0 < response < 1.0

    def test_responses_in_unit_interval(self, training):
        detector = MarkovDetector(5, 8).fit(training.stream)
        responses = detector.score_stream(training.stream[:5000])
        assert responses.min() >= 0.0 and responses.max() <= 1.0


class TestPaperBehavior:
    """Figure 4: capable over the whole grid, including DW < AS."""

    def test_detects_mfs_at_every_window_length(self, training, suite):
        for anomaly_size in (3, 6, 9):
            injected = suite.stream(anomaly_size)
            for window_length in (2, 5, 9, 15):
                detector = MarkovDetector(window_length, 8).fit(training.stream)
                span = injected.incident_span(window_length)
                responses = detector.score_stream(injected.stream)
                assert responses[span.start : span.stop].max() == 1.0, (
                    f"AS={anomaly_size} DW={window_length}"
                )

    def test_no_maximal_responses_outside_span(self, training, suite):
        detector = MarkovDetector(4, 8).fit(training.stream)
        injected = suite.stream(6)
        responses = detector.score_stream(injected.stream)
        span = injected.incident_span(4)
        outside = np.delete(responses, np.arange(span.start, span.stop))
        assert outside.max() < 1.0

    def test_unfloored_detector_collapses_to_stide_region(self, training, suite):
        """Ablation E11: rare_floor=0 loses the DW < AS region."""
        injected = suite.stream(8)
        window_length = 4  # below the anomaly size
        unfloored = MarkovDetector(window_length, 8, rare_floor=0.0).fit(
            training.stream
        )
        span = injected.incident_span(window_length)
        responses = unfloored.score_stream(injected.stream)
        assert responses[span.start : span.stop].max() < 1.0

    def test_rare_training_sequences_also_flagged(self, training):
        """The false-alarm proneness the paper attributes to Markov."""
        detector = MarkovDetector(2, 8).fit(training.stream)
        jump_pair = training.source.jump_pairs()[0]
        assert detector.score_window(jump_pair) == 1.0
