"""Tests for repro.detectors.registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.base import AnomalyDetector
from repro.detectors.registry import (
    PAPER_DETECTORS,
    available_detectors,
    create_detector,
    detector_class,
    register_detector,
)
from repro.exceptions import DetectorConfigurationError


class TestLookup:
    def test_all_paper_detectors_registered(self):
        names = available_detectors()
        for name in PAPER_DETECTORS:
            assert name in names

    def test_available_is_sorted(self):
        names = available_detectors()
        assert list(names) == sorted(names)

    def test_detector_class_lookup(self):
        assert detector_class("stide").name == "stide"

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(DetectorConfigurationError, match="available"):
            detector_class("nonexistent")

    def test_create_detector(self):
        detector = create_detector("stide", 5, 8)
        assert detector.window_length == 5
        assert not detector.is_fitted

    def test_create_forwards_kwargs(self):
        detector = create_detector("markov", 3, 8, rare_floor=0.02)
        assert detector.rare_floor == 0.02

    def test_create_every_registered_detector(self):
        stream = np.arange(40) % 8
        for name in available_detectors():
            detector = create_detector(name, 3, 8)
            if name == "neural-network":
                continue  # training cost; covered in its own tests
            detector.fit(stream)
            assert detector.is_fitted


class TestRegistration:
    def test_register_and_use_custom_detector(self):
        class EchoDetector(AnomalyDetector):
            name = "echo-test-detector"

            def _fit(self, training_streams):
                pass

            def _score(self, test_stream):
                count = len(test_stream) - self.window_length + 1
                return np.zeros(count)

        try:
            register_detector(EchoDetector)
            assert "echo-test-detector" in available_detectors()
            detector = create_detector("echo-test-detector", 2, 8)
            assert isinstance(detector, EchoDetector)
        finally:
            from repro.detectors import registry

            registry._REGISTRY.pop("echo-test-detector", None)

    def test_rejects_duplicate_name(self):
        class Impostor(AnomalyDetector):
            name = "stide"

            def _fit(self, training_streams):
                pass

            def _score(self, test_stream):
                return np.zeros(0)

        with pytest.raises(DetectorConfigurationError, match="already"):
            register_detector(Impostor)

    def test_rejects_default_name(self):
        class Nameless(AnomalyDetector):
            def _fit(self, training_streams):
                pass

            def _score(self, test_stream):
                return np.zeros(0)

        with pytest.raises(DetectorConfigurationError, match="name"):
            register_detector(Nameless)
