"""Tests for repro.detectors.base — the shared detector protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.base import AnomalyDetector, FittedState
from repro.exceptions import (
    DetectorConfigurationError,
    NotFittedError,
    WindowError,
)


class ConstantDetector(AnomalyDetector):
    """Minimal concrete detector for protocol tests."""

    name = "constant"

    def __init__(self, window_length: int, alphabet_size: int, value: float = 0.0):
        super().__init__(window_length, alphabet_size)
        self._value = value
        self.fitted_streams: list[np.ndarray] = []

    def _fit(self, training_streams):
        self.fitted_streams = training_streams

    def _score(self, test_stream):
        count = len(test_stream) - self.window_length + 1
        return np.full(count, self._value)


class MisbehavingDetector(ConstantDetector):
    """Returns the wrong number of responses."""

    name = "misbehaving"

    def _score(self, test_stream):
        return np.zeros(1)


class TestConfiguration:
    def test_rejects_window_below_two(self):
        with pytest.raises(DetectorConfigurationError, match="window_length"):
            ConstantDetector(1, 8)

    def test_rejects_tiny_alphabet(self):
        with pytest.raises(DetectorConfigurationError, match="alphabet_size"):
            ConstantDetector(3, 1)

    def test_rejects_bad_tolerance(self):
        class Bad(ConstantDetector):
            def __init__(self):
                AnomalyDetector.__init__(self, 3, 8, response_tolerance=1.0)

        with pytest.raises(DetectorConfigurationError, match="tolerance"):
            Bad()

    def test_properties(self):
        detector = ConstantDetector(4, 8)
        assert detector.window_length == 4
        assert detector.alphabet_size == 8
        assert detector.response_tolerance == 0.0
        assert "DW=4" in detector.describe()


class TestLifecycle:
    def test_starts_unfitted(self):
        assert not ConstantDetector(3, 8).is_fitted

    def test_fit_returns_self(self):
        detector = ConstantDetector(3, 8)
        assert detector.fit([0, 1, 2, 3]) is detector
        assert detector.is_fitted

    def test_score_before_fit_raises(self):
        with pytest.raises(NotFittedError, match="fitted"):
            ConstantDetector(3, 8).score_stream([0, 1, 2, 3])

    def test_fitted_state_enum(self):
        assert FittedState.UNFITTED.value == "unfitted"
        assert FittedState.FITTED.value == "fitted"

    def test_repr_mentions_state(self):
        detector = ConstantDetector(3, 8)
        assert "unfitted" in repr(detector)
        detector.fit([0, 1, 2])
        assert "fitted" in repr(detector)


class TestFitValidation:
    def test_rejects_streams_all_too_short(self):
        with pytest.raises(WindowError, match="no training stream"):
            ConstantDetector(5, 8).fit_many([[0, 1], [2]])

    def test_short_streams_dropped_long_kept(self):
        detector = ConstantDetector(3, 8)
        detector.fit_many([[0, 1], [0, 1, 2, 3]])
        assert len(detector.fitted_streams) == 1

    def test_rejects_out_of_alphabet_codes(self):
        with pytest.raises(WindowError, match="outside the alphabet"):
            ConstantDetector(2, 8).fit([0, 8])

    def test_rejects_negative_codes(self):
        with pytest.raises(WindowError, match="outside the alphabet"):
            ConstantDetector(2, 8).fit([0, -1])

    def test_rejects_2d_streams(self):
        with pytest.raises(WindowError, match="one-dimensional"):
            ConstantDetector(2, 8).fit(np.zeros((3, 3)))


class TestScoring:
    def test_response_count(self):
        detector = ConstantDetector(3, 8).fit([0, 1, 2, 3])
        assert len(detector.score_stream([0, 1, 2, 3, 4])) == 3

    def test_score_window_scalar(self):
        detector = ConstantDetector(3, 8, value=0.5).fit([0, 1, 2])
        assert detector.score_window((0, 1, 2)) == 0.5

    def test_score_window_shape_checked(self):
        detector = ConstantDetector(3, 8).fit([0, 1, 2])
        with pytest.raises(WindowError, match="length 3"):
            detector.score_window((0, 1))

    def test_rejects_short_test_stream(self):
        detector = ConstantDetector(4, 8).fit([0, 1, 2, 3])
        with pytest.raises(WindowError, match="shorter than the"):
            detector.score_stream([0, 1])

    def test_response_shape_enforced(self):
        detector = MisbehavingDetector(3, 8).fit([0, 1, 2, 3])
        with pytest.raises(WindowError, match="responses"):
            detector.score_stream([0, 1, 2, 3, 4])


class TestDecisionStream:
    def test_binary_detector_decisions(self):
        detector = ConstantDetector(3, 8, value=1.0).fit([0, 1, 2])
        assert detector.decision_stream([0, 1, 2, 3]).tolist() == [True, True]

    def test_tolerance_honored(self):
        class Graded(ConstantDetector):
            name = "graded"

            def __init__(self):
                AnomalyDetector.__init__(self, 3, 8, response_tolerance=0.1)
                self._value = 0.92

        detector = Graded().fit([0, 1, 2])
        assert detector.decision_stream([0, 1, 2, 3]).all()

    def test_sub_threshold_stays_quiet(self):
        detector = ConstantDetector(3, 8, value=0.8).fit([0, 1, 2])
        assert not detector.decision_stream([0, 1, 2, 3]).any()

    def test_matches_paper_threshold_on_stide(self, training):
        from repro.detectors import StideDetector

        stide = StideDetector(4, 8).fit(training.stream[:5000])
        test = training.stream[5000:8000]
        decisions = stide.decision_stream(test)
        assert decisions.tolist() == (stide.score_stream(test) == 1.0).tolist()
