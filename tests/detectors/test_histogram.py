"""Tests for repro.detectors.histogram."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.histogram import HistogramDetector
from repro.detectors.registry import available_detectors, create_detector

TRAIN = [0, 1, 2, 3] * 30


class TestBasics:
    @pytest.fixture()
    def detector(self) -> HistogramDetector:
        return HistogramDetector(4, 8).fit(TRAIN)

    def test_registered(self):
        assert "histogram" in available_detectors()
        assert isinstance(create_detector("histogram", 3, 8), HistogramDetector)

    def test_cycle_windows_share_one_histogram(self, detector):
        # Every window of the pure cycle holds each symbol once.
        assert detector.profile_size == 1

    def test_normal_window_distance_zero(self, detector):
        assert detector.distance_to_normal((0, 1, 2, 3)) == 0
        assert detector.score_window((2, 3, 0, 1)) == 0.0

    def test_order_blindness(self, detector):
        """Any permutation of a normal histogram scores 0."""
        assert detector.score_window((3, 1, 0, 2)) == 0.0

    def test_frequency_anomaly_scores(self, detector):
        # Four copies of one symbol: histogram distance 6 of max 8.
        assert detector.distance_to_normal((0, 0, 0, 0)) == 6
        assert detector.score_window((0, 0, 0, 0)) == pytest.approx(6 / 8)

    def test_responses_in_unit_interval(self, detector):
        responses = detector.score_stream([0, 0, 1, 1, 2, 2, 3, 3])
        assert responses.min() >= 0.0 and responses.max() <= 1.0

    def test_maximal_requires_disjoint_symbols(self):
        # Train on symbols {0,1}; a window of {2,3} is maximally far.
        detector = HistogramDetector(2, 4).fit([0, 1] * 20)
        assert detector.score_window((2, 3)) == 1.0

    def test_deduplicated_scoring_matches_scalar(self, detector):
        test = [0, 1, 2, 3, 3, 2, 1, 0]
        responses = detector.score_stream(test)
        for i in range(len(test) - 3):
            assert responses[i] == pytest.approx(
                detector.score_window(tuple(test[i : i + 4]))
            )


class TestAnomalyTypeAxis:
    """The detector-diversity punchline: different anomaly *types*."""

    def test_blind_to_order_only_mfs(self, training, suite):
        """The paper's MFSs reorder common symbols; the histogram
        detector cannot see them anywhere on the grid."""
        for window_length in (3, 6, 10):
            detector = HistogramDetector(window_length, 8).fit(training.stream)
            for anomaly_size in (3, 6, 9):
                injected = suite.stream(anomaly_size)
                span = injected.incident_span(window_length)
                responses = detector.score_stream(injected.stream)
                # Windows inside the incident span reorder cycle symbols
                # and at most swap a couple of counts.
                assert responses[span.start : span.stop].max() < 1.0

    def test_catches_frequency_burst_stide_misses(self):
        """A burst assembled from windows that each exist in training:
        Stide sees nothing, the histogram detector fires."""
        from repro.detectors import StideDetector

        # Training: alternation plus an isolated 0-run of 2 and 1-run
        # of 2, so all 2-windows exist.
        train = [0, 1] * 50 + [0, 0, 1, 1] + [0, 1] * 50
        burst = [0, 1, 0, 0, 0, 0, 0, 0, 1, 0]  # heavy zero burst
        stide = StideDetector(2, 2).fit(train)
        histogram = HistogramDetector(6, 2).fit(train)
        assert stide.score_stream(burst).max() == 0.0  # every pair known
        assert histogram.score_stream(burst).max() > 0.3
