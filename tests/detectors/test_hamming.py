"""Tests for repro.detectors.hamming."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.hamming import HammingDetector
from repro.detectors.lane_brodley import LaneBrodleyDetector
from repro.detectors.registry import available_detectors, create_detector

TRAIN = [0, 1, 2, 3] * 30


class TestBasics:
    @pytest.fixture()
    def detector(self) -> HammingDetector:
        return HammingDetector(4, 8).fit(TRAIN)

    def test_registered(self):
        assert "hamming" in available_detectors()
        assert isinstance(create_detector("hamming", 3, 8), HammingDetector)

    def test_training_window_zero_distance(self, detector):
        assert detector.distance_to_normal((0, 1, 2, 3)) == 0
        assert detector.score_window((0, 1, 2, 3)) == 0.0

    def test_single_mismatch_distance_one(self, detector):
        assert detector.distance_to_normal((0, 1, 2, 0)) == 1
        assert detector.score_window((0, 1, 2, 0)) == pytest.approx(1 / 4)

    def test_database_size(self, detector):
        assert detector.database_size == 4

    def test_chunked_scoring_consistent(self):
        tiny = HammingDetector(4, 8, chunk_elements=8).fit(TRAIN)
        big = HammingDetector(4, 8).fit(TRAIN)
        test = np.asarray([0, 1, 2, 3, 3, 2, 1, 0, 1, 2])
        assert np.allclose(tiny.score_stream(test), big.score_stream(test))

    def test_responses_in_unit_interval(self, detector):
        responses = detector.score_stream([3, 3, 3, 3, 0, 1, 2, 3])
        assert responses.min() >= 0.0 and responses.max() <= 1.0


class TestEdgeBiasComparison:
    """The Section-7 contrast: L&B is positional-biased, Hamming is not."""

    @pytest.fixture()
    def detectors(self):
        hamming = HammingDetector(5, 8).fit(TRAIN)
        lane_brodley = LaneBrodleyDetector(5, 8).fit(TRAIN)
        return hamming, lane_brodley

    def test_hamming_is_position_invariant(self, detectors):
        hamming, _lb = detectors
        edge = hamming.score_window((0, 1, 2, 3, 1))  # mismatch at the end
        center = hamming.score_window((0, 1, 0, 3, 0))  # mismatch mid-window
        assert edge == pytest.approx(1 / 5)
        assert center == pytest.approx(1 / 5)

    def test_lane_brodley_is_position_biased(self, detectors):
        _hamming, lane_brodley = detectors
        edge = lane_brodley.score_window((0, 1, 2, 3, 1))
        center = lane_brodley.score_window((0, 1, 0, 3, 0))
        assert center > edge  # a mid-window mismatch costs L&B more

    def test_but_coverage_class_is_unchanged(self, training, suite):
        """Fixing the bias does not make the detector capable: Hamming
        remains blind to MFSs under the strict threshold, like L&B."""
        for window_length in (3, 6, 10):
            detector = HammingDetector(window_length, 8).fit(training.stream)
            for anomaly_size in (2, 6, 9):
                injected = suite.stream(anomaly_size)
                span = injected.incident_span(window_length)
                responses = detector.score_stream(injected.stream)
                assert responses[span.start : span.stop].max() < 1.0
