"""Tests for repro.detectors.lane_brodley, including Figure 7 exactly."""

from __future__ import annotations

from typing import ClassVar

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors.lane_brodley import (
    LaneBrodleyDetector,
    lb_max_similarity,
    lb_similarity,
)


class TestSimilarityMetric:
    def test_identical_sequences_score_maximum(self):
        assert lb_similarity([1, 2, 3, 4, 5], [1, 2, 3, 4, 5]) == 15

    def test_figure7_identical_size5(self):
        # Left diagram: cd <1> ls laf tar vs itself -> 15.
        sequence = ["cd", "<1>", "ls", "laf", "tar"]
        codes = [0, 1, 2, 3, 4]
        assert lb_similarity(codes, codes) == 15
        assert len(sequence) == 5  # the paper's example is size 5

    def test_figure7_final_mismatch_scores_ten(self):
        # Right diagram: mismatch only at the last element -> 10.
        normal = [0, 1, 2, 3, 4]
        foreign = [0, 1, 2, 3, 0]
        assert lb_similarity(normal, foreign) == 10

    def test_total_mismatch_scores_zero(self):
        assert lb_similarity([0, 0, 0], [1, 1, 1]) == 0

    def test_adjacency_weighting_rewards_runs(self):
        # Two matches adjacent (1+2=3) beat two matches apart (1+1=2).
        adjacent = lb_similarity([5, 5, 0], [5, 5, 9])
        apart = lb_similarity([5, 0, 5], [5, 9, 5])
        assert adjacent == 3
        assert apart == 2

    def test_first_element_mismatch(self):
        # Mismatch at the first position: runs restart, 0+1+2+3+4 = 10.
        assert lb_similarity([9, 1, 2, 3, 4], [0, 1, 2, 3, 4]) == 10

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            lb_similarity([1, 2], [1, 2, 3])

    def test_max_similarity_closed_form(self):
        assert lb_max_similarity(5) == 15
        assert lb_max_similarity(2) == 3
        assert lb_max_similarity(15) == 120

    def test_figure7_worked_examples_run_as_doctests(self):
        # The paper's two worked examples live in the lb_similarity
        # docstring; keep them executable.
        import doctest

        import repro.detectors.lane_brodley as module

        results = doctest.testmod(module)
        assert results.attempted >= 2
        assert results.failed == 0

    def test_vectorized_similarity_matches_recurrence(self):
        # The numpy cumulative-run formulation against the definitional
        # element loop, over exhaustive small cases.
        rng = np.random.default_rng(1997)
        for _ in range(200):
            length = int(rng.integers(1, 20))
            x = rng.integers(0, 4, size=length)
            y = rng.integers(0, 4, size=length)
            weight = similarity = 0
            for a, b in zip(x, y):
                weight = weight + 1 if a == b else 0
                similarity += weight
            assert lb_similarity(x, y) == similarity


@settings(max_examples=60)
@given(
    st.integers(2, 8).flatmap(
        lambda n: st.tuples(
            st.lists(st.integers(0, 4), min_size=n, max_size=n),
            st.lists(st.integers(0, 4), min_size=n, max_size=n),
        )
    )
)
def test_similarity_bounds_property(pair):
    """0 <= Sim <= DW(DW+1)/2, with equality iff total mismatch/identity."""
    first, second = pair
    similarity = lb_similarity(first, second)
    assert 0 <= similarity <= lb_max_similarity(len(first))
    if first == second:
        assert similarity == lb_max_similarity(len(first))
    if all(a != b for a, b in zip(first, second)):
        assert similarity == 0


@settings(max_examples=60)
@given(
    st.integers(2, 8).flatmap(
        lambda n: st.tuples(
            st.lists(st.integers(0, 4), min_size=n, max_size=n),
            st.lists(st.integers(0, 4), min_size=n, max_size=n),
        )
    )
)
def test_similarity_symmetry(pair):
    first, second = pair
    assert lb_similarity(first, second) == lb_similarity(second, first)


class TestDetector:
    TRAIN: ClassVar[list[int]] = [0, 1, 2, 3] * 30

    @pytest.fixture()
    def detector(self) -> LaneBrodleyDetector:
        return LaneBrodleyDetector(4, 8).fit(self.TRAIN)

    def test_training_window_response_zero(self, detector):
        assert detector.score_window((0, 1, 2, 3)) == 0.0

    def test_database_size(self, detector):
        assert detector.database_size == 4  # the four cycle phases

    def test_similarity_to_normal(self, detector):
        assert detector.similarity_to_normal((0, 1, 2, 3)) == 10
        assert detector.similarity_to_normal((0, 1, 2, 0)) == 6

    def test_response_is_one_minus_normalized_best(self, detector):
        response = detector.score_window((0, 1, 2, 0))
        assert response == pytest.approx(1.0 - 6 / 10)

    def test_vectorized_scoring_matches_scalar(self, detector):
        test = [0, 1, 2, 3, 0, 1, 2, 0, 1, 2, 3]
        responses = detector.score_stream(test)
        for i in range(len(test) - 3):
            assert responses[i] == pytest.approx(
                detector.score_window(tuple(test[i : i + 4]))
            )

    def test_chunked_scoring_consistent(self):
        tiny_chunks = LaneBrodleyDetector(4, 8, chunk_elements=8).fit(self.TRAIN)
        big_chunks = LaneBrodleyDetector(4, 8).fit(self.TRAIN)
        test = np.asarray([0, 1, 2, 3, 3, 2, 1, 0, 1, 2, 3, 0])
        assert np.allclose(
            tiny_chunks.score_stream(test), big_chunks.score_stream(test)
        )


class TestPaperBehavior:
    """Figure 3: never a maximal response on any MFS case, and the
    Section 7 close-to-normal bias."""

    def test_never_maximal_on_the_suite(self, training, suite):
        for window_length in (2, 6, 12):
            detector = LaneBrodleyDetector(window_length, 8).fit(training.stream)
            for anomaly_size in (2, 6, 9):
                injected = suite.stream(anomaly_size)
                span = injected.incident_span(window_length)
                responses = detector.score_stream(injected.stream)
                assert responses[span.start : span.stop].max() < 1.0

    def test_edge_mismatch_bias(self, training):
        """A foreign window differing only at its edge looks near-normal."""
        detector = LaneBrodleyDetector(5, 8).fit(training.stream)
        # (0,1,2,3,4) is a normal cycle run; corrupt only the last element.
        response = detector.score_window((0, 1, 2, 3, 0))
        assert response <= 1.0 - 10 / 15  # at most the Figure-7 dip
