"""Tests for repro.detectors.lfc."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.detectors.lfc import (
    lfc_alarms,
    locality_frame_counts,
    trailing_mean_smoothing,
)
from repro.exceptions import EvaluationError


class TestLocalityFrameCounts:
    def test_counts_trailing_maximal_responses(self):
        responses = np.asarray([1.0, 0.0, 1.0, 1.0, 0.0])
        counts = locality_frame_counts(responses, frame_size=2)
        assert counts.tolist() == [1, 1, 1, 2, 1]

    def test_frame_of_one_is_identity_on_hits(self):
        responses = np.asarray([1.0, 0.5, 1.0])
        assert locality_frame_counts(responses, 1).tolist() == [1, 0, 1]

    def test_only_maximal_responses_count(self):
        responses = np.asarray([0.99, 0.5, 0.0])
        assert locality_frame_counts(responses, 3).tolist() == [0, 0, 0]

    def test_frame_larger_than_stream(self):
        responses = np.asarray([1.0, 1.0])
        assert locality_frame_counts(responses, 100).tolist() == [1, 2]

    def test_rejects_2d(self):
        with pytest.raises(EvaluationError, match="1-D"):
            locality_frame_counts(np.zeros((2, 2)), 2)

    def test_rejects_bad_frame(self):
        with pytest.raises(EvaluationError, match="frame_size"):
            locality_frame_counts(np.zeros(3), 0)


class TestLfcAlarms:
    def test_threshold_suppresses_isolated_hits(self):
        responses = np.asarray([1.0, 0.0, 0.0, 1.0, 1.0])
        alarms = lfc_alarms(responses, frame_size=2, count_threshold=2)
        assert alarms.tolist() == [False, False, False, False, True]

    def test_threshold_one_matches_raw_frames(self):
        responses = np.asarray([1.0, 0.0, 1.0])
        alarms = lfc_alarms(responses, frame_size=1, count_threshold=1)
        assert alarms.tolist() == [True, False, True]

    def test_rejects_bad_threshold(self):
        with pytest.raises(EvaluationError, match="count_threshold"):
            lfc_alarms(np.zeros(3), 2, 0)


class TestTrailingMeanSmoothing:
    def test_isolated_spike_damped(self):
        responses = np.asarray([0.0, 0.0, 1.0, 0.0, 0.0])
        smoothed = trailing_mean_smoothing(responses, width=4)
        assert smoothed.max() < 0.5
        assert smoothed[2] == pytest.approx(1 / 3)

    def test_sustained_signal_survives(self):
        responses = np.asarray([1.0] * 10)
        smoothed = trailing_mean_smoothing(responses, width=4)
        assert smoothed.min() == pytest.approx(1.0)

    def test_width_one_is_identity(self):
        responses = np.asarray([0.2, 0.9, 0.4])
        assert np.allclose(trailing_mean_smoothing(responses, 1), responses)

    def test_short_prefix_averages_available(self):
        responses = np.asarray([1.0, 0.0])
        smoothed = trailing_mean_smoothing(responses, width=10)
        assert smoothed[0] == 1.0
        assert smoothed[1] == pytest.approx(0.5)

    def test_rejects_2d(self):
        with pytest.raises(EvaluationError, match="1-D"):
            trailing_mean_smoothing(np.zeros((2, 2)), 3)

    def test_rejects_bad_width(self):
        with pytest.raises(EvaluationError, match="width"):
            trailing_mean_smoothing(np.zeros(3), 0)


@given(
    st.lists(st.floats(0.0, 1.0), min_size=1, max_size=50),
    st.integers(1, 12),
)
def test_smoothing_matches_naive_mean(responses: list[float], width: int):
    data = np.asarray(responses)
    smoothed = trailing_mean_smoothing(data, width)
    for i in range(len(data)):
        lo = max(0, i - width + 1)
        assert smoothed[i] == pytest.approx(data[lo : i + 1].mean())


@given(
    st.lists(st.sampled_from([0.0, 0.5, 1.0]), min_size=1, max_size=60),
    st.integers(1, 10),
)
def test_counts_match_naive_window_sum(responses: list[float], frame: int):
    """The cumulative-sum implementation agrees with the direct sum."""
    data = np.asarray(responses)
    counts = locality_frame_counts(data, frame)
    for i in range(len(data)):
        lo = max(0, i - frame + 1)
        assert counts[i] == int((data[lo : i + 1] >= 1.0).sum())
