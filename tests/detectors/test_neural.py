"""Tests for repro.detectors.neural."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.mlp import MlpConfig
from repro.detectors.neural import NeuralDetector

CYCLE = [0, 1, 2, 3] * 50

FAST = MlpConfig(hidden_units=16, epochs=250, learning_rate=0.6, seed=3)


class TestBasics:
    @pytest.fixture(scope="class")
    def detector(self) -> NeuralDetector:
        return NeuralDetector(2, 4, config=FAST).fit(CYCLE)

    def test_default_tolerance(self):
        assert NeuralDetector(2, 8).response_tolerance == 0.1

    def test_config_exposed(self, detector):
        assert detector.config is FAST

    def test_final_loss_recorded(self, detector):
        assert detector.final_training_loss < 0.5

    def test_normal_transition_low_response(self, detector):
        assert detector.score_window((0, 1)) < 0.2

    def test_foreign_transition_high_response(self, detector):
        assert detector.score_window((0, 2)) > 0.9

    def test_responses_in_unit_interval(self, detector):
        responses = detector.score_stream([0, 1, 2, 3, 0, 2, 1, 3])
        assert responses.min() >= 0.0 and responses.max() <= 1.0

    def test_deduplicated_scoring_matches_per_window(self, detector):
        test = [0, 1, 2, 3, 0, 1]
        responses = detector.score_stream(test)
        for i in range(len(test) - 1):
            assert responses[i] == pytest.approx(
                detector.score_window(tuple(test[i : i + 2]))
            )

    def test_deterministic_under_seed(self):
        a = NeuralDetector(2, 4, config=FAST).fit(CYCLE)
        b = NeuralDetector(2, 4, config=FAST).fit(CYCLE)
        test = [0, 1, 2, 0]
        assert np.allclose(a.score_stream(test), b.score_stream(test))


class TestPaperBehavior:
    """Figure 6: the NN mimics the Markov detector when well tuned,
    and degrades when mistuned (the Section 7 caveat)."""

    def test_detects_mfs_across_grid_when_tuned(self, training, suite):
        for anomaly_size, window_length in ((3, 2), (6, 4), (9, 5), (4, 9)):
            detector = NeuralDetector(window_length, 8).fit(training.stream)
            injected = suite.stream(anomaly_size)
            span = injected.incident_span(window_length)
            responses = detector.score_stream(injected.stream)
            threshold = 1.0 - detector.response_tolerance
            assert responses[span.start : span.stop].max() >= threshold, (
                f"AS={anomaly_size} DW={window_length}"
            )

    def test_mistuned_network_weakens_the_signal(self, training, suite):
        """Ablation E10: starving the network opens weak/blind cells."""
        crippled = MlpConfig(
            hidden_units=1, epochs=3, learning_rate=0.01, momentum=0.0, seed=0
        )
        detector = NeuralDetector(4, 8, config=crippled).fit(training.stream)
        injected = suite.stream(6)
        span = injected.incident_span(4)
        responses = detector.score_stream(injected.stream)
        threshold = 1.0 - detector.response_tolerance
        assert responses[span.start : span.stop].max() < threshold

    def test_no_spurious_maximal_responses_on_background(self, training, suite):
        detector = NeuralDetector(3, 8).fit(training.stream)
        injected = suite.stream(5)
        span = injected.incident_span(3)
        responses = detector.score_stream(injected.stream)
        outside = np.delete(responses, np.arange(span.start, span.stop))
        assert outside.max() < 1.0 - detector.response_tolerance
