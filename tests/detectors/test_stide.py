"""Tests for repro.detectors.stide."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors.stide import StideDetector
from repro.sequences.windows import iter_windows

TRAIN = [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]


class TestResponses:
    @pytest.fixture()
    def stide(self) -> StideDetector:
        return StideDetector(3, 8).fit(TRAIN)

    def test_known_window_scores_zero(self, stide):
        assert stide.score_window((0, 1, 2)) == 0.0

    def test_foreign_window_scores_one(self, stide):
        assert stide.score_window((2, 1, 0)) == 1.0

    def test_responses_are_binary(self, stide):
        responses = stide.score_stream([0, 1, 2, 3, 3, 2, 1, 0])
        assert set(np.unique(responses)) <= {0.0, 1.0}

    def test_contains_helper(self, stide):
        assert stide.contains((1, 2, 3))
        assert not stide.contains((3, 3, 3))

    def test_database_size(self, stide):
        expected = len(set(iter_windows(TRAIN, 3)))
        assert stide.database_size == expected

    def test_training_data_scores_all_zero(self, stide):
        assert stide.score_stream(TRAIN).max() == 0.0


class TestMultiStreamTraining:
    def test_junction_windows_not_learned(self):
        stide = StideDetector(2, 8).fit_many([[0, 1], [2, 3]])
        assert stide.score_window((1, 2)) == 1.0
        assert stide.score_window((0, 1)) == 0.0


class TestFallbackPath:
    """Large alphabets exceed 63-bit packing; tuple storage kicks in."""

    def test_unpackable_configuration_matches_packable_semantics(self):
        rng = np.random.default_rng(0)
        train = rng.integers(0, 40, size=500)
        test = rng.integers(0, 40, size=100)
        wide = StideDetector(13, 40).fit(train)  # 13*log2(40) > 63
        assert wide._packed_db is None  # fallback active
        responses = wide.score_stream(test)
        known = set(iter_windows(train.tolist(), 13))
        expected = [
            0.0 if window in known else 1.0
            for window in iter_windows(test.tolist(), 13)
        ]
        assert responses.tolist() == expected


class TestPaperBehavior:
    """Figure 5: capable iff DW >= AS, blind otherwise."""

    def test_detects_mfs_only_with_window_at_least_anomaly_size(
        self, training, suite
    ):
        for anomaly_size in (3, 6, 9):
            injected = suite.stream(anomaly_size)
            for window_length in (2, anomaly_size - 1, anomaly_size, 14):
                if window_length < 2:
                    continue
                stide = StideDetector(window_length, 8).fit(training.stream)
                responses = stide.score_stream(injected.stream)
                span = injected.incident_span(window_length)
                detected = responses[span.start : span.stop].max() == 1.0
                assert detected == (window_length >= anomaly_size)

    def test_no_alarms_outside_span(self, training, suite):
        stide = StideDetector(10, 8).fit(training.stream)
        injected = suite.stream(5)
        responses = stide.score_stream(injected.stream)
        span = injected.incident_span(10)
        outside = np.delete(responses, np.arange(span.start, span.stop))
        assert outside.max() == 0.0


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 5), min_size=8, max_size=80),
    st.lists(st.integers(0, 5), min_size=8, max_size=80),
    st.integers(2, 6),
)
def test_stide_is_exact_membership(train, test, window_length):
    """Stide's response equals foreignness with respect to training."""
    stide = StideDetector(window_length, 6).fit(train)
    known = set(iter_windows(train, window_length))
    responses = stide.score_stream(test)
    for response, window in zip(responses, iter_windows(test, window_length)):
        assert response == (0.0 if window in known else 1.0)
