"""Tests for repro.detectors.threshold."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.neural import NeuralDetector
from repro.detectors.stide import StideDetector
from repro.detectors.threshold import FixedThreshold, MaximalResponseThreshold
from repro.exceptions import DetectorConfigurationError


class TestFixedThreshold:
    def test_alarm_at_level(self):
        threshold = FixedThreshold(0.5)
        alarms = threshold.alarms(np.asarray([0.4, 0.5, 0.6]))
        assert alarms.tolist() == [False, True, True]

    def test_rejects_zero_level(self):
        with pytest.raises(DetectorConfigurationError, match="level"):
            FixedThreshold(0.0)

    def test_rejects_above_one(self):
        with pytest.raises(DetectorConfigurationError, match="level"):
            FixedThreshold(1.1)

    def test_level_one_keeps_only_maximal(self):
        threshold = FixedThreshold(1.0)
        alarms = threshold.alarms(np.asarray([0.999, 1.0]))
        assert alarms.tolist() == [False, True]


class TestMaximalResponseThreshold:
    def test_default_is_exact_one(self):
        threshold = MaximalResponseThreshold()
        assert threshold.level == 1.0

    def test_tolerance_lowers_level(self):
        assert MaximalResponseThreshold(0.1).level == pytest.approx(0.9)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(DetectorConfigurationError, match="tolerance"):
            MaximalResponseThreshold(1.0)

    def test_alarms_honor_tolerance(self):
        threshold = MaximalResponseThreshold(0.1)
        alarms = threshold.alarms(np.asarray([0.89, 0.9, 1.0]))
        assert alarms.tolist() == [False, True, True]

    def test_for_detector_binary(self):
        stide = StideDetector(3, 8)
        assert MaximalResponseThreshold.for_detector(stide).level == 1.0

    def test_for_detector_graded(self):
        neural = NeuralDetector(3, 8)
        level = MaximalResponseThreshold.for_detector(neural).level
        assert level == pytest.approx(0.9)

    def test_for_detector_without_attribute(self):
        level = MaximalResponseThreshold.for_detector(object()).level
        assert level == 1.0

    def test_paper_footnote_maximal_always_alarms(self):
        """A maximal response alarms regardless of the level chosen."""
        responses = np.asarray([1.0])
        for level in (0.1, 0.5, 0.9, 1.0):
            assert FixedThreshold(level).alarms(responses)[0]
