"""Tests for repro.detectors.markov_chain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.markov_chain import MarkovChainDetector
from repro.detectors.registry import available_detectors, create_detector

CYCLE = [0, 1, 2, 3] * 50


class TestFitting:
    @pytest.fixture()
    def detector(self) -> MarkovChainDetector:
        return MarkovChainDetector(4, 4).fit(CYCLE)

    def test_registered(self):
        assert "markov-chain" in available_detectors()
        assert isinstance(
            create_detector("markov-chain", 3, 8), MarkovChainDetector
        )

    def test_transition_matrix_row_stochastic(self, detector):
        matrix = detector.transition_matrix
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_deterministic_cycle_learned_exactly(self, detector):
        matrix = detector.transition_matrix
        for state in range(4):
            assert matrix[state, (state + 1) % 4] == pytest.approx(1.0)

    def test_matrix_is_copy(self, detector):
        detector.transition_matrix[0, 0] = 9.0
        assert detector.transition_matrix[0, 0] != 9.0


class TestLikelihood:
    @pytest.fixture()
    def detector(self) -> MarkovChainDetector:
        return MarkovChainDetector(4, 4).fit(CYCLE)

    def test_normal_window_high_likelihood(self, detector):
        likelihood = detector.window_likelihood((0, 1, 2, 3))
        assert likelihood == pytest.approx(0.25, rel=0.05)  # initial * 1*1*1

    def test_foreign_transition_zero_likelihood(self, detector):
        assert detector.window_likelihood((0, 2, 3, 0)) == 0.0


class TestResponses:
    @pytest.fixture()
    def detector(self) -> MarkovChainDetector:
        return MarkovChainDetector(4, 4).fit(CYCLE)

    def test_normal_window_response_zero(self, detector):
        assert detector.score_window((0, 1, 2, 3)) == pytest.approx(0.0)

    def test_foreign_transition_response_maximal(self, detector):
        assert detector.score_window((0, 2, 3, 0)) == 1.0

    def test_graded_response_on_mixed_window(self):
        # From 0: to 1 (80%), to 2 (20%) — a window through the rare arc
        # has a graded, sub-maximal response.
        stream = ([0, 1] * 4 + [0, 2]) * 30
        detector = MarkovChainDetector(3, 4).fit(stream)
        response = detector.score_window((1, 0, 2))
        assert 0.0 < response < 1.0

    def test_unseen_start_symbol_maximal(self):
        detector = MarkovChainDetector(3, 5).fit(CYCLE)  # symbol 4 unseen
        assert detector.score_window((4, 0, 1)) == 1.0

    def test_responses_within_unit_interval(self, training):
        detector = MarkovChainDetector(6, 8).fit(training.stream)
        responses = detector.score_stream(training.stream[:4000])
        assert responses.min() >= 0.0 and responses.max() <= 1.0

    def test_geometric_mean_comparable_across_windows(self):
        """The same anomalous arc yields similar responses at different
        window lengths (the reason for the geometric mean)."""
        stream = ([0, 1] * 6 + [0, 2, 0, 1]) * 40
        short = MarkovChainDetector(3, 4).fit(stream)
        long = MarkovChainDetector(6, 4).fit(stream)
        short_normal = short.score_window((0, 1, 0))
        long_normal = long.score_window((0, 1, 0, 1, 0, 1))
        assert abs(short_normal - long_normal) < 0.2


class TestOnPaperCorpus:
    def test_first_order_chain_sees_mfs_only_weakly(self, training, suite):
        """A first-order chain models *pairs*, and every pair of an MFS
        of size >= 3 exists in training (minimality), so the chain
        detector's response in the incident span is high — the window
        crosses rare arcs — but never maximal.  The detector is blind
        to higher-order foreignness under the strict threshold, an
        independent illustration of the paper's point that detector
        internals, not intentions, determine coverage."""
        injected = suite.stream(4)
        detector = MarkovChainDetector(6, 8).fit(training.stream)
        span = injected.incident_span(6)
        responses = detector.score_stream(injected.stream)
        in_span = responses[span.start : span.stop].max()
        outside = max(
            responses[: span.start].max(initial=0.0),
            responses[span.stop :].max(initial=0.0),
        )
        assert 0.5 < in_span < 1.0  # strong graded response...
        assert in_span > outside + 0.3  # ...standing far above background

    def test_size_two_mfs_is_maximal(self, training, suite):
        """A size-2 MFS *is* a foreign pair, which a first-order chain
        does see maximally."""
        injected = suite.stream(2)
        detector = MarkovChainDetector(2, 8).fit(training.stream)
        span = injected.incident_span(2)
        responses = detector.score_stream(injected.stream)
        assert responses[span.start : span.stop].max() == 1.0

    def test_rare_windows_graded_not_maximal(self, training):
        """Unlike the floored transition detector, the chain detector
        reports rare-but-seen behavior as high-but-graded."""
        detector = MarkovChainDetector(3, 8).fit(training.stream)
        jump = training.source.jump_pairs()[0]
        window = (jump[0], jump[1], (jump[1] + 1) % 8)
        response = detector.score_window(window)
        assert 0.0 < response < 1.0
