"""Integration test of the paper's false-alarm suppression scheme (E9).

Section 7: "the Markov-based detector can be used to detect the
manifestation of the attack itself while Stide can be used as a
suppressive mechanism to reduce false alarms."  We verify the full
ordering on UNM-style syscall traces:

* Markov's false-alarm rate exceeds Stide's (it also fires on rare but
  benign sequences);
* gating Markov's alarms with Stide's recovers Stide's false-alarm
  rate while preserving the hits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors import MarkovDetector, StideDetector
from repro.detectors.threshold import MaximalResponseThreshold
from repro.ensemble import CombinedAlarms, gated_alarms
from repro.evaluation.metrics import evaluate_alarms
from repro.syscalls import truth_window_regions

WINDOW_LENGTH = 4


@pytest.fixture(scope="module")
def fitted(syscall_dataset):
    streams = syscall_dataset.training_streams()
    alphabet_size = syscall_dataset.alphabet.size
    stide = StideDetector(WINDOW_LENGTH, alphabet_size).fit_many(streams)
    markov = MarkovDetector(WINDOW_LENGTH, alphabet_size).fit_many(streams)
    return stide, markov


@pytest.fixture(scope="module")
def scored(fitted, syscall_dataset):
    stide, markov = fitted
    traces = list(syscall_dataset.test_normal) + list(
        syscall_dataset.test_intrusions
    )
    stide_threshold = MaximalResponseThreshold.for_detector(stide)
    markov_threshold = MaximalResponseThreshold.for_detector(markov)
    stide_alarms, markov_alarms, truths = [], [], []
    for trace in traces:
        stide_alarms.append(stide_threshold.alarms(stide.score_stream(trace.stream)))
        markov_alarms.append(
            markov_threshold.alarms(markov.score_stream(trace.stream))
        )
        truths.append(truth_window_regions(trace, WINDOW_LENGTH))
    return stide_alarms, markov_alarms, truths


class TestSuppressionOrdering:
    def test_both_detect_every_exploit(self, scored):
        stide_alarms, markov_alarms, truths = scored
        assert evaluate_alarms(stide_alarms, truths).hit_rate == 1.0
        assert evaluate_alarms(markov_alarms, truths).hit_rate == 1.0

    def test_markov_false_alarm_rate_exceeds_stide(self, scored):
        stide_alarms, markov_alarms, truths = scored
        stide_metrics = evaluate_alarms(stide_alarms, truths)
        markov_metrics = evaluate_alarms(markov_alarms, truths)
        # Markov fires on rare-but-benign sequences; Stide's residual
        # false alarms come only from never-seen path junctions and are
        # at least an order of magnitude rarer.
        assert markov_metrics.false_alarm_rate > 10 * stide_metrics.false_alarm_rate
        assert stide_metrics.false_alarm_rate < 0.005

    def test_gating_suppresses_false_alarms_and_keeps_hits(self, scored):
        stide_alarms, markov_alarms, truths = scored
        gated = [
            gated_alarms(markov, stide)
            for markov, stide in zip(markov_alarms, stide_alarms)
        ]
        gated_metrics = evaluate_alarms(gated, truths)
        stide_metrics = evaluate_alarms(stide_alarms, truths)
        assert gated_metrics.hit_rate == 1.0
        assert gated_metrics.false_alarm_rate <= stide_metrics.false_alarm_rate

    def test_stide_alarms_subset_of_markov_alarms(self, scored):
        """Section 7: any alarm raised by Stide is also raised by the
        Markov detector (Stide's coverage is contained)."""
        stide_alarms, markov_alarms, _truths = scored
        for stide, markov in zip(stide_alarms, markov_alarms):
            assert not (stide & ~markov).any()

    def test_combined_alarms_accounting(self, scored):
        stide_alarms, markov_alarms, _truths = scored
        trace_index = int(
            np.argmax([alarms.sum() for alarms in markov_alarms])
        )
        combined = CombinedAlarms.combine(
            [
                ("markov", markov_alarms[trace_index]),
                ("stide", stide_alarms[trace_index]),
            ],
            rule="gated",
        )
        markov_only = int(
            (markov_alarms[trace_index] & ~stide_alarms[trace_index]).sum()
        )
        assert combined.suppressed == markov_only
