"""End-to-end reproduction of the paper's headline results.

These tests run the full experiment (Figures 3-6 plus the Sections 7-8
coverage analysis) on the reduced-scale corpus and assert the *shapes*
the paper reports.  They are the repository's ground truth: if one of
these fails, the reproduction is broken regardless of unit-test status.
"""

from __future__ import annotations

import pytest

from repro.ensemble.coverage import Coverage, coverage_gain
from repro.evaluation.experiment import run_paper_experiment
from repro.evaluation.scoring import ResponseClass


@pytest.fixture(scope="module")
def result(suite):
    """The full four-detector experiment (cached for the module)."""
    return run_paper_experiment(suite=suite)


class TestFigure3LaneBrodley:
    def test_blind_across_the_entire_space(self, result):
        """The L&B detector registers no maximal response anywhere."""
        lane_brodley = result.map_for("lane-brodley")
        assert len(lane_brodley.capable_cells()) == 0

    def test_close_to_normal_but_not_silent(self, result):
        """Section 7: L&B sees the MFS as *close to normal* — nonzero
        weak responses where the window reaches the anomaly."""
        lane_brodley = result.map_for("lane-brodley")
        assert len(lane_brodley.weak_cells()) > 0


class TestFigure4Markov:
    def test_capable_over_the_whole_grid(self, result):
        markov = result.map_for("markov")
        assert markov.detection_fraction() == 1.0

    def test_no_spurious_alarms(self, result):
        assert result.map_for("markov").spurious_alarm_total() == 0


class TestFigure5Stide:
    def test_capable_exactly_when_window_reaches_anomaly(self, result, suite):
        stide = result.map_for("stide")
        for anomaly_size in suite.anomaly_sizes:
            for window_length in suite.window_lengths:
                expected = (
                    ResponseClass.CAPABLE
                    if window_length >= anomaly_size
                    else ResponseClass.BLIND
                )
                assert (
                    stide.response_class(anomaly_size, window_length) is expected
                ), f"AS={anomaly_size}, DW={window_length}"

    def test_capable_cell_count(self, result):
        # For AS in 2..9 and DW in 2..15: sum(16 - AS) = 84 cells.
        assert len(result.map_for("stide").capable_cells()) == 84

    def test_no_spurious_alarms(self, result):
        assert result.map_for("stide").spurious_alarm_total() == 0


class TestFigure6NeuralNetwork:
    def test_mimics_the_markov_detector(self, result):
        neural = result.map_for("neural-network")
        markov = result.map_for("markov")
        assert neural.capable_cells() == markov.capable_cells()


class TestDiversityConclusions:
    """Sections 7-8: the combination lessons."""

    def test_stide_coverage_strict_subset_of_markov(self, result):
        stide = Coverage.from_performance_map(result.map_for("stide"))
        markov = Coverage.from_performance_map(result.map_for("markov"))
        assert stide.is_strict_subset_of(markov)

    def test_stide_plus_lane_brodley_gains_nothing(self, result):
        stide = Coverage.from_performance_map(result.map_for("stide"))
        lane_brodley = Coverage.from_performance_map(
            result.map_for("lane-brodley")
        )
        assert coverage_gain(stide, lane_brodley) == frozenset()
        assert (stide | lane_brodley).cells == stide.cells

    def test_shared_blind_region_of_stide_and_lane_brodley(self, result):
        """Both are blind when DW < AS — the same region (Section 8)."""
        stide = Coverage.from_performance_map(result.map_for("stide"))
        lane_brodley = Coverage.from_performance_map(
            result.map_for("lane-brodley")
        )
        shared = stide.blind_region() & lane_brodley.blind_region()
        assert shared == stide.blind_region()

    def test_markov_plus_stide_gains_nothing_in_coverage(self, result):
        """The gain of that combination is false-alarm reduction, not
        coverage (Section 7) — Stide adds no cells to Markov."""
        stide = Coverage.from_performance_map(result.map_for("stide"))
        markov = Coverage.from_performance_map(result.map_for("markov"))
        assert coverage_gain(markov, stide) == frozenset()


class TestHypothesisRejected:
    def test_detectors_are_not_equally_capable(self, result):
        """The paper's hypothesis — all detectors equally capable — must
        fail: coverages differ across detector families."""
        fractions = {
            name: result.maps[name].detection_fraction() for name in result.maps
        }
        assert len(set(fractions.values())) > 1
