"""Extension detectors placed on the paper's grid (mirrors bench E25)."""

from __future__ import annotations

import pytest

from repro.ensemble.coverage import Coverage
from repro.evaluation.performance_map import build_performance_map


@pytest.fixture(scope="module")
def atlas(suite):
    names = ("stide", "t-stide", "markov-chain", "hamming", "histogram")
    return {name: build_performance_map(name, suite) for name in names}


class TestTStide:
    def test_full_coverage(self, atlas):
        """Rare-window sensitivity buys the whole grid, like Markov."""
        assert atlas["t-stide"].detection_fraction() == 1.0

    def test_contains_stide(self, atlas):
        stide = Coverage.from_performance_map(atlas["stide"])
        tstide = Coverage.from_performance_map(atlas["t-stide"])
        assert stide.is_strict_subset_of(tstide)


class TestMarkovChain:
    def test_capable_only_at_the_edges(self, atlas, suite):
        """The size-2 column and the DW=2 row — where one anomalous arc
        dominates the geometric mean."""
        cells = atlas["markov-chain"].capable_cells()
        for window_length in suite.window_lengths:
            assert (2, window_length) in cells
        for anomaly_size in suite.anomaly_sizes:
            assert (anomaly_size, 2) in cells
        assert all(
            anomaly_size == 2
            or window_length == 2
            or (anomaly_size <= 3 and window_length <= 3)
            for anomaly_size, window_length in cells
        )

    def test_interior_is_weak_not_blind(self, atlas):
        """Inside the grid the chain detector responds strongly but
        never maximally — graded evidence, no detection."""
        assert len(atlas["markov-chain"].blind_cells()) == 0
        assert len(atlas["markov-chain"].weak_cells()) > 0


class TestPositionalAndFrequencyFamilies:
    def test_hamming_blind_like_lane_brodley(self, atlas):
        assert len(atlas["hamming"].capable_cells()) == 0

    def test_histogram_blind_on_order_anomalies(self, atlas):
        assert len(atlas["histogram"].capable_cells()) == 0

    def test_every_extension_is_subset_of_tstide(self, atlas):
        tstide = Coverage.from_performance_map(atlas["t-stide"])
        for name in ("stide", "markov-chain", "hamming", "histogram"):
            extension = Coverage.from_performance_map(atlas[name])
            assert extension.is_subset_of(tstide)
