"""Failure injection: malformed inputs must fail loudly and typed.

Every failure surfaces as a subclass of
:class:`~repro.exceptions.ReproError` — never a bare ``KeyError`` or a
silently wrong result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.injection import InjectionPolicy, inject_anomaly
from repro.detectors import (
    LaneBrodleyDetector,
    MarkovDetector,
    NeuralDetector,
    StideDetector,
    TStideDetector,
)
from repro.exceptions import (
    AlphabetError,
    DataGenerationError,
    NotFittedError,
    ReproError,
    WindowError,
)
from repro.params import PaperParams
from repro.sequences.alphabet import Alphabet
from repro.sequences.foreign import ForeignSequenceAnalyzer

ALL_DETECTOR_CLASSES = (
    StideDetector,
    TStideDetector,
    MarkovDetector,
    LaneBrodleyDetector,
    NeuralDetector,
)


class TestExceptionHierarchy:
    def test_all_library_errors_are_repro_errors(self):
        for error_type in (
            AlphabetError,
            DataGenerationError,
            NotFittedError,
            WindowError,
        ):
            assert issubclass(error_type, ReproError)

    def test_single_except_clause_suffices(self):
        with pytest.raises(ReproError):
            Alphabet([])
        with pytest.raises(ReproError):
            PaperParams(alphabet_size=1)


@pytest.mark.parametrize("detector_class", ALL_DETECTOR_CLASSES)
class TestDetectorFailureModes:
    def test_score_unfitted(self, detector_class):
        with pytest.raises(NotFittedError):
            detector_class(3, 8).score_stream([0, 1, 2, 3])

    def test_corrupted_training_codes(self, detector_class):
        stream = np.asarray([0, 1, 2, 99, 3])
        with pytest.raises(WindowError, match="alphabet"):
            detector_class(3, 8).fit(stream)

    def test_corrupted_test_codes(self, detector_class, training):
        detector = detector_class(3, 8)
        detector.fit(training.stream[:2000])
        with pytest.raises(WindowError, match="alphabet"):
            detector.score_stream([0, 1, -5])

    def test_empty_training(self, detector_class):
        with pytest.raises(WindowError):
            detector_class(3, 8).fit([])

    def test_test_stream_shorter_than_window(self, detector_class, training):
        detector = detector_class(5, 8)
        detector.fit(training.stream[:2000])
        with pytest.raises(WindowError, match="shorter"):
            detector.score_stream([0, 1])


class TestDataGenerationFailureModes:
    def test_injection_policy_requires_margin(self, training):
        policy = InjectionPolicy(window_lengths=(15,), rare_threshold=0.005)
        with pytest.raises(ReproError, match="background on a side"):
            inject_anomaly((0, 0), training, policy, stream_length=20)

    def test_params_reject_inconsistent_ranges(self):
        with pytest.raises(DataGenerationError):
            PaperParams(anomaly_sizes=())
        with pytest.raises(DataGenerationError):
            PaperParams(window_sizes=(1,))
        with pytest.raises(DataGenerationError):
            PaperParams(common_fraction=1.5)
        with pytest.raises(DataGenerationError):
            PaperParams(rare_threshold=0.0)

    def test_analyzer_rejects_garbage(self):
        with pytest.raises(WindowError):
            ForeignSequenceAnalyzer(np.zeros((3, 3)))


class TestDetectorsRejectNaNFreeContract:
    """Scores must always be finite and within [0, 1]."""

    @pytest.mark.parametrize("detector_class", ALL_DETECTOR_CLASSES)
    def test_scores_finite_unit_interval(self, detector_class, training):
        detector = detector_class(3, 8)
        detector.fit(training.stream[:3000])
        rng = np.random.default_rng(0)
        hostile = rng.integers(0, 8, size=300)  # arbitrary, mostly foreign
        responses = detector.score_stream(hostile)
        assert np.isfinite(responses).all()
        assert responses.min() >= 0.0
        assert responses.max() <= 1.0
