"""Optional full-paper-scale verification.

Skipped by default (the 1,000,000-element corpus takes minutes); set
``REPRO_FULL_SCALE=1`` to run the headline shapes at the paper's exact
scale.  CI-scale equivalents live in ``test_paper_reproduction.py``.
"""

from __future__ import annotations

import os

import pytest

from repro.datagen.suite import build_suite
from repro.datagen.training import generate_training_data
from repro.evaluation.performance_map import build_performance_map
from repro.evaluation.robustness import blind_shape, full_coverage_shape, stide_shape
from repro.params import paper_params

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_FULL_SCALE", "") != "1",
    reason="set REPRO_FULL_SCALE=1 to run the 1M-element corpus",
)


@pytest.fixture(scope="module")
def full_suite():
    training = generate_training_data(paper_params())
    return build_suite(training=training)


def test_corpus_matches_paper_statistics(full_suite):
    training = full_suite.training
    assert training.length == 1_000_000
    assert training.cycle_run_fraction() > 0.95
    training.validate()


def test_stide_shape_at_full_scale(full_suite):
    assert stide_shape(build_performance_map("stide", full_suite))


def test_markov_shape_at_full_scale(full_suite):
    assert full_coverage_shape(build_performance_map("markov", full_suite))


def test_lane_brodley_shape_at_full_scale(full_suite):
    assert blind_shape(build_performance_map("lane-brodley", full_suite))
