"""Cross-module property-based tests (hypothesis).

These pin the structural invariants that hold for *any* corpus, not
just the shared fixture: detector/response definitions, incident-span
arithmetic, and the MFS join construction.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.injection import InjectedStream
from repro.detectors import MarkovDetector, StideDetector, TStideDetector
from repro.sequences.foreign import is_minimal_foreign
from repro.sequences.ngram_store import NgramStore
from repro.sequences.windows import iter_windows

streams = st.lists(st.integers(0, 4), min_size=12, max_size=120)


@settings(max_examples=40, deadline=None)
@given(streams, streams, st.integers(2, 5))
def test_stide_response_is_foreignness(train, test, window_length):
    """Stide's definition, end to end: response 1 iff window unseen."""
    detector = StideDetector(window_length, 5).fit(train)
    known = set(iter_windows(train, window_length))
    for response, window in zip(
        detector.score_stream(test), iter_windows(test, window_length)
    ):
        assert response == (0.0 if window in known else 1.0)


@settings(max_examples=40, deadline=None)
@given(streams, streams, st.integers(2, 4))
def test_tstide_alarms_superset_of_stide(train, test, window_length):
    """t-stide alarms wherever Stide does (and possibly more)."""
    stide = StideDetector(window_length, 5).fit(train)
    tstide = TStideDetector(window_length, 5, rare_threshold=0.1).fit(train)
    stide_alarms = stide.score_stream(test) == 1.0
    tstide_alarms = tstide.score_stream(test) == 1.0
    assert not (stide_alarms & ~tstide_alarms).any()


@settings(max_examples=40, deadline=None)
@given(streams, st.integers(2, 4))
def test_unfloored_markov_matches_conditional_probability(train, window_length):
    """With no floor, the response is exactly 1 - count(w)/count(ctx)."""
    detector = MarkovDetector(
        window_length, 5, rare_floor=0.0, unseen_context_response=1.0
    ).fit(train)
    window_counts: dict[tuple[int, ...], int] = {}
    for window in iter_windows(train, window_length):
        window_counts[window] = window_counts.get(window, 0) + 1
    context_counts: dict[tuple[int, ...], int] = {}
    for context in iter_windows(train, window_length - 1):
        context_counts[context] = context_counts.get(context, 0) + 1
    for window in set(iter_windows(train, window_length)):
        expected = 1.0 - window_counts[window] / context_counts[window[:-1]]
        assert detector.score_window(window) == pytest.approx(expected)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(2, 9),  # anomaly size
    st.integers(2, 15),  # window length
    st.integers(40, 200),  # stream length
)
def test_incident_span_arithmetic(anomaly_size, window_length, stream_length):
    """Away from edges, |span| = DW + AS - 1 (Figure 2's accounting)."""
    position = stream_length // 2
    stream = np.zeros(stream_length, dtype=np.int64)
    anomaly = tuple([1] * anomaly_size)
    stream[position : position + anomaly_size] = 1
    injected = InjectedStream(
        stream=stream,
        anomaly=anomaly,
        position=position,
        left_phase=0,
        right_phase=0,
    )
    if window_length > stream_length:
        return
    span = injected.incident_span(window_length)
    expected = window_length + anomaly_size - 1
    # Edge clipping can only shrink the span.
    assert 1 <= len(span) <= expected
    if (
        position - window_length + 1 >= 0
        and position + anomaly_size - 1 <= stream_length - window_length
    ):
        assert len(span) == expected
    # Every span window overlaps the anomaly; neighbors do not.
    for start in span:
        assert injected.window_overlap(start, window_length) > 0
    if span.start > 0:
        assert injected.window_overlap(span.start - 1, window_length) == 0


@settings(max_examples=40, deadline=None)
@given(streams, st.integers(2, 5))
def test_mfs_join_construction_sound(stream, length):
    """Any unseen join of two seen (n-1)-grams is a verified MFS."""
    if len(stream) < length:
        return
    store = NgramStore.from_stream(stream, [length - 1, length])
    parts = set(store.ngrams(length - 1)) if length > 1 else set()
    found = 0
    for left in parts:
        for symbol in range(5):
            right = left[1:] + (symbol,)
            if right not in parts:
                continue
            candidate = left + (symbol,)
            if store.contains(candidate):
                continue
            assert is_minimal_foreign(candidate, store)
            found += 1
            if found > 10:
                return
