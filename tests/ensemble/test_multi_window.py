"""Tests for repro.ensemble.multi_window."""

from __future__ import annotations

from typing import ClassVar

import numpy as np
import pytest

from repro.ensemble.multi_window import MultiWindowBank
from repro.exceptions import DetectorConfigurationError, NotFittedError


class TestConfiguration:
    def test_rejects_empty_lengths(self):
        with pytest.raises(DetectorConfigurationError, match="at least one"):
            MultiWindowBank((), 8)

    def test_rejects_window_below_two(self):
        with pytest.raises(DetectorConfigurationError, match=">= 2"):
            MultiWindowBank((1, 3), 8)

    def test_lengths_sorted_deduplicated(self):
        bank = MultiWindowBank((5, 3, 5), 8)
        assert bank.member_window_lengths == (3, 5)
        assert bank.window_length == 3  # the bank's alignment window

    def test_name_includes_family(self):
        assert MultiWindowBank((2, 3), 8).name == "multi-window-stide"

    def test_tolerance_is_member_maximum(self):
        bank = MultiWindowBank((2, 3), 8, family="neural-network")
        assert bank.response_tolerance == pytest.approx(0.1)

    def test_unknown_family_rejected(self):
        with pytest.raises(DetectorConfigurationError, match="unknown detector"):
            MultiWindowBank((2, 3), 8, family="nope")


class TestScoring:
    TRAIN: ClassVar[list[int]] = [0, 1, 2, 3] * 40

    @pytest.fixture()
    def bank(self) -> MultiWindowBank:
        return MultiWindowBank((2, 4), 8).fit(self.TRAIN)

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            MultiWindowBank((2, 3), 8).score_stream([0, 1, 2, 3])

    def test_members_fitted_with_bank(self, bank):
        assert all(member.is_fitted for member in bank.members)

    def test_response_length_uses_smallest_window(self, bank):
        responses = bank.score_stream([0, 1, 2, 3, 0, 1])
        assert len(responses) == 5  # 6 - 2 + 1

    def test_combined_is_member_maximum(self, bank):
        test = [0, 1, 2, 3, 3, 2, 1, 0, 1, 2]
        combined = bank.score_stream(test)
        members = bank.member_responses(test)
        for start, value in enumerate(combined):
            expected = max(
                responses[start]
                for responses in members.values()
                if start < len(responses)
            )
            assert value == expected

    def test_normal_data_scores_zero(self, bank):
        assert bank.score_stream(self.TRAIN).max() == 0.0

    def test_member_responses_keyed_by_window(self, bank):
        members = bank.member_responses([0, 1, 2, 3, 0])
        assert set(members) == {2, 4}

    def test_stream_shorter_than_longest_member(self, bank):
        # Three elements: only the window-2 member contributes.
        responses = bank.score_stream([0, 1, 2])
        assert len(responses) == 2


class TestUnknownSizeCoverage:
    """The deployment problem: MFS of unknown size, Stide-only bank."""

    def test_bank_detects_every_anomaly_size(self, training, suite):
        bank = MultiWindowBank(range(2, 16), 8).fit(training.stream)
        for anomaly_size in suite.anomaly_sizes:
            injected = suite.stream(anomaly_size)
            responses = bank.score_stream(injected.stream)
            span = injected.incident_span(bank.window_length)
            # The bank aligns on starts of the smallest window, which
            # covers the incident span of every member.
            assert responses[span.start : span.stop].max() == 1.0

    def test_single_small_stide_misses_what_the_bank_catches(
        self, training, suite
    ):
        from repro.detectors import StideDetector

        injected = suite.stream(9)
        single = StideDetector(4, 8).fit(training.stream)
        responses = single.score_stream(injected.stream)
        span = injected.incident_span(4)
        assert responses[span.start : span.stop].max() == 0.0

    def test_bank_raises_no_background_alarms(self, training, suite):
        bank = MultiWindowBank(range(2, 16), 8).fit(training.stream)
        injected = suite.stream(5)
        responses = bank.score_stream(injected.stream)
        span = injected.incident_span(15)  # widest member's span
        outside = np.delete(
            responses, np.arange(span.start, min(span.stop, len(responses)))
        )
        assert outside.max() == 0.0
