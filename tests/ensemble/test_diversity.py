"""Tests for repro.ensemble.diversity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ensemble.coverage import Coverage
from repro.ensemble.diversity import (
    coverage_diversity,
    coverage_redundancy,
    response_disagreement,
)
from repro.exceptions import EvaluationError

GRID = frozenset((a, w) for a in (2, 3) for w in (2, 3))


def make(cells, label="c") -> Coverage:
    return Coverage(cells=frozenset(cells), grid=GRID, label=label)


class TestCoverageDiversity:
    def test_identical_coverages_zero(self):
        a = make({(2, 2)})
        assert coverage_diversity(a, make({(2, 2)})) == 0.0

    def test_disjoint_coverages_one(self):
        assert coverage_diversity(make({(2, 2)}), make({(3, 3)})) == 1.0

    def test_partial_overlap(self):
        a = make({(2, 2), (2, 3)})
        b = make({(2, 3), (3, 3)})
        assert coverage_diversity(a, b) == pytest.approx(1 - 1 / 3)

    def test_both_empty_defined_zero(self):
        assert coverage_diversity(make(set()), make(set())) == 0.0


class TestCoverageRedundancy:
    def test_subset_fully_redundant(self):
        small = make({(2, 2)})
        large = make({(2, 2), (3, 3)})
        assert coverage_redundancy(small, large) == 1.0
        assert coverage_redundancy(large, small) == 1.0  # symmetric

    def test_disjoint_not_redundant(self):
        assert coverage_redundancy(make({(2, 2)}), make({(3, 3)})) == 0.0

    def test_empty_smaller_is_trivially_redundant(self):
        assert coverage_redundancy(make(set()), make({(2, 2)})) == 1.0


class TestResponseDisagreement:
    def test_identical_binary_responses_agree(self):
        responses = np.asarray([0.0, 1.0, 1.0])
        assert response_disagreement(responses, responses) == 0.0

    def test_total_disagreement(self):
        a = np.asarray([1.0, 1.0])
        b = np.asarray([0.0, 0.0])
        assert response_disagreement(a, b) == 1.0

    def test_levels_change_judgments(self):
        a = np.asarray([0.95, 0.2])
        b = np.asarray([0.95, 0.2])
        strict = response_disagreement(a, b, 1.0, 0.9)
        assert strict == pytest.approx(0.5)  # 0.95 alarms only under level 0.9

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(EvaluationError, match="equal length"):
            response_disagreement(np.zeros(2), np.zeros(3))

    def test_empty_inputs_agree(self):
        assert response_disagreement(np.zeros(0), np.zeros(0)) == 0.0

    def test_stide_vs_markov_disagree_on_rare_sequences(self, training):
        """The diversity the paper exploits: Markov alarms on rare
        training sequences, Stide does not."""
        from repro.detectors import MarkovDetector, StideDetector

        stide = StideDetector(2, 8).fit(training.stream)
        markov = MarkovDetector(2, 8).fit(training.stream)
        test = training.stream[:5000]
        disagreement = response_disagreement(
            stide.score_stream(test), markov.score_stream(test)
        )
        assert disagreement > 0.0
