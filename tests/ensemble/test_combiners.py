"""Tests for repro.ensemble.combiners."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ensemble.combiners import (
    CombinedAlarms,
    and_alarms,
    gated_alarms,
    majority_alarms,
    or_alarms,
)
from repro.exceptions import EvaluationError

A = np.asarray([True, True, False, False])
B = np.asarray([True, False, True, False])


class TestRules:
    def test_or(self):
        assert or_alarms([A, B]).tolist() == [True, True, True, False]

    def test_and(self):
        assert and_alarms([A, B]).tolist() == [True, False, False, False]

    def test_majority_two_members_requires_both(self):
        assert majority_alarms([A, B]).tolist() == [True, False, False, False]

    def test_majority_three_members(self):
        c = np.asarray([True, True, True, False])
        assert majority_alarms([A, B, c]).tolist() == [True, True, True, False]

    def test_gated_equals_and(self):
        assert gated_alarms(A, B).tolist() == and_alarms([A, B]).tolist()

    def test_single_member_identity(self):
        assert or_alarms([A]).tolist() == A.tolist()
        assert and_alarms([A]).tolist() == A.tolist()

    def test_rejects_empty(self):
        with pytest.raises(EvaluationError, match="at least one"):
            or_alarms([])

    def test_rejects_length_mismatch(self):
        with pytest.raises(EvaluationError, match="equal window lengths"):
            or_alarms([A, np.asarray([True])])

    def test_rejects_2d(self):
        with pytest.raises(EvaluationError, match="1-D"):
            or_alarms([np.zeros((2, 2), dtype=bool)])


class TestCombinedAlarms:
    def test_combine_or(self):
        result = CombinedAlarms.combine([("m", A), ("s", B)], rule="or")
        assert result.alarms.tolist() == [True, True, True, False]
        assert result.member_names == ("m", "s")
        assert result.suppressed == 0

    def test_combine_gated_counts_suppressed(self):
        result = CombinedAlarms.combine([("markov", A), ("stide", B)], rule="gated")
        assert result.alarms.tolist() == [True, False, False, False]
        # Windows 1 and 2 had some member alarm but were suppressed.
        assert result.suppressed == 2

    def test_gated_requires_two_members(self):
        with pytest.raises(EvaluationError, match="exactly 2"):
            CombinedAlarms.combine([("a", A)], rule="gated")

    def test_unknown_rule(self):
        with pytest.raises(EvaluationError, match="unknown combination rule"):
            CombinedAlarms.combine([("a", A)], rule="xor")

    def test_rejects_empty(self):
        with pytest.raises(EvaluationError, match="at least one"):
            CombinedAlarms.combine([], rule="or")


alarm_lists = st.lists(st.booleans(), min_size=1, max_size=20)


@given(st.integers(1, 4), st.data())
def test_combiner_algebra_properties(member_count: int, data):
    """AND ⊆ majority ⊆ OR; gating never adds alarms."""
    length = data.draw(st.integers(1, 15))
    members = [
        np.asarray(
            data.draw(
                st.lists(st.booleans(), min_size=length, max_size=length)
            )
        )
        for _ in range(member_count)
    ]
    union = or_alarms(members)
    intersection = and_alarms(members)
    majority = majority_alarms(members)
    assert not (intersection & ~majority).any()
    assert not (majority & ~union).any()
    assert not (intersection & ~union).any()
    gated = gated_alarms(members[0], members[-1])
    assert not (gated & ~members[0]).any()


@given(st.data())
def test_or_and_idempotent_commutative(data):
    length = data.draw(st.integers(1, 12))
    a = np.asarray(
        data.draw(st.lists(st.booleans(), min_size=length, max_size=length))
    )
    b = np.asarray(
        data.draw(st.lists(st.booleans(), min_size=length, max_size=length))
    )
    assert or_alarms([a, a]).tolist() == a.tolist()
    assert and_alarms([a, a]).tolist() == a.tolist()
    assert or_alarms([a, b]).tolist() == or_alarms([b, a]).tolist()
    assert and_alarms([a, b]).tolist() == and_alarms([b, a]).tolist()
