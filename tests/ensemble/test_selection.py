"""Tests for repro.ensemble.selection."""

from __future__ import annotations

import pytest

from repro.ensemble.coverage import Coverage
from repro.ensemble.selection import (
    AnomalyProfile,
    SelectionAdvice,
    select_detectors,
)
from repro.exceptions import EvaluationError

SIZES = (2, 3, 4)
WINDOWS = (2, 3, 4)
GRID = frozenset((a, w) for a in SIZES for w in WINDOWS)


def cov(cells, label):
    return Coverage(cells=frozenset(cells), grid=GRID, label=label)


# Stide-like: capable iff window >= size; Markov-like: everywhere; L&B: empty.
STIDE = cov({(a, w) for a in SIZES for w in WINDOWS if w >= a}, "stide")
MARKOV = cov(GRID, "markov")
LANE_BRODLEY = cov(set(), "lane-brodley")


class TestProfileValidation:
    def test_rejects_tiny_size(self):
        with pytest.raises(EvaluationError, match="size"):
            AnomalyProfile(size=1, max_deployable_window=4)

    def test_rejects_tiny_window(self):
        with pytest.raises(EvaluationError, match="window"):
            AnomalyProfile(size=3, max_deployable_window=1)

    def test_unknown_size_allowed(self):
        assert AnomalyProfile(size=None, max_deployable_window=4).size is None


class TestKnownSize:
    def test_prefers_narrowest_capable_detector(self):
        profile = AnomalyProfile(size=3, max_deployable_window=4)
        advice = select_detectors(
            {"stide": STIDE, "markov": MARKOV}, profile
        )
        assert advice.primary == "stide"
        assert advice.gate is None
        assert "fewest" in advice.rationale

    def test_size_beyond_window_falls_back_to_markov(self):
        profile = AnomalyProfile(size=4, max_deployable_window=3)
        advice = select_detectors(
            {"stide": STIDE, "markov": MARKOV}, profile
        )
        assert advice.primary == "markov"

    def test_describe_without_gate(self):
        profile = AnomalyProfile(size=2, max_deployable_window=4)
        advice = select_detectors({"stide": STIDE}, profile)
        assert advice.describe() == "deploy stide"


class TestUnknownSize:
    def test_requires_full_size_coverage(self):
        profile = AnomalyProfile(size=None, max_deployable_window=3)
        advice = select_detectors(
            {"stide": STIDE, "markov": MARKOV}, profile
        )
        # Stide cannot cover size 4 at window <= 3; Markov can.
        assert advice.primary == "markov"

    def test_subset_detector_becomes_gate(self):
        profile = AnomalyProfile(size=None, max_deployable_window=4)
        advice = select_detectors(
            {"stide": STIDE, "markov": MARKOV}, profile
        )
        # Both qualify; stide is narrower so it is primary... stide
        # covers every size at window 4, so stide wins as primary and
        # no gate applies.
        assert advice.primary == "stide"

    def test_gate_selected_when_markov_is_needed(self):
        profile = AnomalyProfile(size=None, max_deployable_window=3)
        advice = select_detectors(
            {"stide": STIDE, "markov": MARKOV}, profile
        )
        assert advice.primary == "markov"
        assert advice.gate == "stide"
        assert "false alarms" in advice.rationale
        assert advice.describe() == "deploy markov gated by stide"


class TestRedundancy:
    def test_empty_coverage_flagged_redundant(self):
        profile = AnomalyProfile(size=3, max_deployable_window=4)
        advice = select_detectors(
            {"stide": STIDE, "lane-brodley": LANE_BRODLEY}, profile
        )
        assert advice.primary == "stide"
        assert advice.redundant == ("lane-brodley",)
        assert "no detection coverage" in advice.rationale


class TestFailures:
    def test_empty_candidates(self):
        with pytest.raises(EvaluationError, match="at least one"):
            select_detectors({}, AnomalyProfile(size=3, max_deployable_window=4))

    def test_uncoverable_profile(self):
        profile = AnomalyProfile(size=4, max_deployable_window=3)
        with pytest.raises(EvaluationError, match="not detectable"):
            select_detectors(
                {"stide": STIDE, "lane-brodley": LANE_BRODLEY}, profile
            )


class TestOnRealMaps:
    def test_paper_recipe_emerges_from_measured_maps(self, suite):
        """With the measured maps, an unknown-size anomaly under a
        small window budget yields exactly the paper's recipe."""
        from repro.evaluation.performance_map import build_performance_map

        coverages = {
            name: Coverage.from_performance_map(
                build_performance_map(name, suite)
            )
            for name in ("stide", "markov", "lane-brodley")
        }
        profile = AnomalyProfile(size=None, max_deployable_window=8)
        advice = select_detectors(coverages, profile)
        assert advice.primary == "markov"
        assert advice.gate == "stide"
        assert advice.redundant == ("lane-brodley",)
        assert isinstance(advice, SelectionAdvice)
