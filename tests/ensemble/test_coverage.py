"""Tests for repro.ensemble.coverage."""

from __future__ import annotations

import pytest

from repro.ensemble.coverage import Coverage, coverage_gain
from repro.exceptions import CoverageError

GRID = frozenset((a, w) for a in (2, 3) for w in (2, 3, 4))


def make(cells, label="test", grid=GRID) -> Coverage:
    return Coverage(cells=frozenset(cells), grid=grid, label=label)


class TestConstruction:
    def test_rejects_empty_grid(self):
        with pytest.raises(CoverageError, match="non-empty"):
            Coverage(cells=frozenset(), grid=frozenset(), label="x")

    def test_rejects_cells_outside_grid(self):
        with pytest.raises(CoverageError, match="within the grid"):
            make({(9, 9)})

    def test_empty_coverage_allowed(self):
        assert len(make(set())) == 0


class TestAlgebra:
    def test_union(self):
        combined = make({(2, 2)}) | make({(3, 3)})
        assert combined.cells == {(2, 2), (3, 3)}
        assert "|" in combined.label

    def test_intersection(self):
        overlap = make({(2, 2), (2, 3)}) & make({(2, 3), (3, 3)})
        assert overlap.cells == {(2, 3)}

    def test_difference(self):
        rest = make({(2, 2), (2, 3)}) - make({(2, 3)})
        assert rest.cells == {(2, 2)}

    def test_mixed_grids_rejected(self):
        other_grid = frozenset({(5, 5)})
        with pytest.raises(CoverageError, match="different grids"):
            make({(2, 2)}) | make({(5, 5)}, grid=other_grid)

    def test_subset_relations(self):
        small = make({(2, 2)})
        large = make({(2, 2), (3, 3)})
        assert small.is_subset_of(large)
        assert small.is_strict_subset_of(large)
        assert not large.is_subset_of(small)
        assert large.is_subset_of(large)
        assert not large.is_strict_subset_of(large)

    def test_fraction(self):
        assert make({(2, 2), (3, 3)}).fraction == pytest.approx(2 / 6)

    def test_blind_region_is_complement(self):
        coverage = make({(2, 2)})
        assert coverage.blind_region() == GRID - {(2, 2)}

    def test_contains(self):
        coverage = make({(2, 2)})
        assert (2, 2) in coverage
        assert (3, 3) not in coverage

    def test_repr(self):
        assert "1/6" in repr(make({(2, 2)}))


class TestCoverageGain:
    def test_gain_counts_new_cells_only(self):
        base = make({(2, 2)})
        addition = make({(2, 2), (3, 3)})
        assert coverage_gain(base, addition) == {(3, 3)}

    def test_no_gain_for_subset(self):
        base = make({(2, 2), (3, 3)})
        addition = make({(3, 3)})
        assert coverage_gain(base, addition) == frozenset()


class TestFromPerformanceMap:
    def test_paper_relations_hold(self, suite):
        """Stide ⊂ Markov; Stide ∪ L&B == Stide (Sections 7-8)."""
        from repro.evaluation.performance_map import build_performance_map

        stide = Coverage.from_performance_map(
            build_performance_map("stide", suite)
        )
        markov = Coverage.from_performance_map(
            build_performance_map("markov", suite)
        )
        lane_brodley = Coverage.from_performance_map(
            build_performance_map("lane-brodley", suite)
        )
        assert stide.is_strict_subset_of(markov)
        assert (stide | lane_brodley).cells == stide.cells
        assert coverage_gain(stide, lane_brodley) == frozenset()
        assert len(markov) == len(markov.grid)  # full coverage
        assert len(lane_brodley) == 0  # blind everywhere
