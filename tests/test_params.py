"""Tests for repro.params."""

from __future__ import annotations

import pytest

from repro.exceptions import DataGenerationError
from repro.params import (
    PAPER_ALPHABET_SIZE,
    PAPER_TRAINING_LENGTH,
    PaperParams,
    paper_params,
    scaled_params,
)


class TestPaperParams:
    def test_defaults_match_the_paper(self):
        params = PaperParams()
        assert params.alphabet_size == 8
        assert params.training_length == 1_000_000
        assert params.common_fraction == 0.98
        assert params.rare_threshold == 0.005
        assert params.anomaly_sizes == tuple(range(2, 10))
        assert params.window_sizes == tuple(range(2, 16))

    def test_max_properties(self):
        params = PaperParams()
        assert params.max_anomaly_size == 9
        assert params.max_window_size == 15

    def test_with_seed_returns_copy(self):
        params = PaperParams()
        reseeded = params.with_seed(7)
        assert reseeded.seed == 7
        assert params.seed != 7 or params is not reseeded

    def test_with_training_length(self):
        assert PaperParams().with_training_length(100).training_length == 100

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PaperParams().seed = 1  # type: ignore[misc]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alphabet_size": 1},
            {"training_length": 0},
            {"common_fraction": 0.0},
            {"common_fraction": 1.0},
            {"rare_threshold": 1.0},
            {"anomaly_sizes": (1, 2)},
            {"window_sizes": ()},
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(DataGenerationError):
            PaperParams(**kwargs)


class TestFactories:
    def test_paper_params_full_scale(self):
        params = paper_params()
        assert params.training_length == PAPER_TRAINING_LENGTH
        assert params.alphabet_size == PAPER_ALPHABET_SIZE

    def test_paper_params_seed_override(self):
        assert paper_params(seed=3).seed == 3

    def test_scaled_params_explicit_length(self):
        assert scaled_params(12_345).training_length == 12_345

    def test_scaled_params_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_LEN", "54321")
        assert scaled_params().training_length == 54_321

    def test_scaled_params_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_STREAM_LEN", raising=False)
        assert scaled_params().training_length == 120_000

    def test_scaled_params_seed(self):
        assert scaled_params(10_000, seed=5).seed == 5
