"""Tests for repro.capability.pipeline — the Figure-1 chain."""

from __future__ import annotations

import pytest

from repro.capability.pipeline import (
    AttackScenario,
    CapabilityQuestion,
    CapabilityVerdict,
    assess_attack,
)
from repro.evaluation.performance_map import build_performance_map
from repro.exceptions import EvaluationError


@pytest.fixture(scope="module")
def stide_map(suite):
    return build_performance_map("stide", suite)


@pytest.fixture(scope="module")
def analyzer(training):
    return training.analyzer


def scenario(**overrides) -> AttackScenario:
    defaults = dict(
        name="test-attack",
        manifestation=(0, 2, 2),  # size-3 MFS-shaped manifestation
        detector_analyzes_data=True,
        deployed_window_length=5,
    )
    defaults.update(overrides)
    return AttackScenario(**defaults)


class TestScenarioValidation:
    def test_rejects_small_window(self):
        with pytest.raises(EvaluationError, match="window length"):
            scenario(deployed_window_length=1)

    def test_rejects_empty_manifestation(self):
        with pytest.raises(EvaluationError, match="non-empty"):
            scenario(manifestation=())


class TestChainTerminals:
    def test_no_manifestation(self, analyzer, stide_map):
        report = assess_attack(scenario(manifestation=None), analyzer, stide_map)
        assert report.verdict is CapabilityVerdict.NO_MANIFESTATION
        assert not report.detected
        assert report.answers == {CapabilityQuestion.MANIFESTS: False}

    def test_not_analyzed(self, analyzer, stide_map):
        report = assess_attack(
            scenario(detector_analyzes_data=False), analyzer, stide_map
        )
        assert report.verdict is CapabilityVerdict.NOT_ANALYZED
        assert CapabilityQuestion.ANOMALOUS not in report.answers

    def test_not_anomalous(self, analyzer, stide_map, training):
        # A common cycle run is not anomalous.
        common = tuple(training.stream[:4].tolist())
        report = assess_attack(
            scenario(manifestation=common, deployed_window_length=5),
            analyzer,
            stide_map,
        )
        assert report.verdict is CapabilityVerdict.NOT_ANOMALOUS

    def test_mistuned_window(self, analyzer, stide_map, suite):
        # Stide needs DW >= AS; deploy with a smaller window.
        manifestation = suite.anomaly(6).sequence
        report = assess_attack(
            scenario(manifestation=manifestation, deployed_window_length=3),
            analyzer,
            stide_map,
        )
        assert report.verdict is CapabilityVerdict.MISTUNED
        assert report.answers[CapabilityQuestion.DETECTABLE]
        assert not report.answers[CapabilityQuestion.TUNED]

    def test_detected(self, analyzer, stide_map, suite):
        manifestation = suite.anomaly(4).sequence
        report = assess_attack(
            scenario(manifestation=manifestation, deployed_window_length=10),
            analyzer,
            stide_map,
        )
        assert report.verdict is CapabilityVerdict.DETECTED
        assert report.detected
        assert all(report.answers.values())

    def test_not_detectable_for_lb(self, analyzer, suite):
        # L&B is capable nowhere, so any anomalous manifestation lands
        # on the NOT_DETECTABLE terminal.
        lb_map = build_performance_map("lane-brodley", suite)
        manifestation = suite.anomaly(4).sequence
        report = assess_attack(
            scenario(manifestation=manifestation), analyzer, lb_map
        )
        assert report.verdict is CapabilityVerdict.NOT_DETECTABLE


class TestGridGuards:
    def test_out_of_grid_size_raises(self, analyzer, stide_map):
        oversized = (0, 2) + tuple(range(3, 3 + 10))  # size > 9, anomalous
        with pytest.raises(EvaluationError, match="outside the evaluated grid"):
            assess_attack(
                scenario(manifestation=(0, 2, 3, 4, 5, 6, 7, 0, 2, 2)),
                analyzer,
                stide_map,
            )
        assert len(oversized) > 9  # guard for the test itself

    def test_out_of_grid_window_raises(self, analyzer, stide_map, suite):
        manifestation = suite.anomaly(4).sequence
        with pytest.raises(EvaluationError, match="outside the evaluated grid"):
            assess_attack(
                scenario(manifestation=manifestation, deployed_window_length=99),
                analyzer,
                stide_map,
            )


class TestReport:
    def test_explain_walks_the_chain(self, analyzer, stide_map, suite):
        manifestation = suite.anomaly(4).sequence
        report = assess_attack(
            scenario(manifestation=manifestation, deployed_window_length=10),
            analyzer,
            stide_map,
        )
        text = report.explain()
        assert "A:" in text and "E:" in text
        assert "verdict: attack detected" in text

    def test_explain_stops_at_failure(self, analyzer, stide_map):
        report = assess_attack(scenario(manifestation=None), analyzer, stide_map)
        text = report.explain()
        assert "A:" in text
        assert "B:" not in text
