"""Smoke tests: the example scripts run end to end.

Each example is executed in a subprocess with a reduced corpus via
``REPRO_STREAM_LEN`` where the script honors it.  Only the cheaper
examples are exercised here; the heavyweight ones (full four-detector
experiment) are covered by the integration suite that computes the
same results in-process.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

CHEAP_EXAMPLES = {
    "experiment_plans.py": "second run: 0 executed / 4 cached",
    "masquerade_detection.py": "adjacency-weighted metric",
    "syscall_monitoring.py": "markov gated by stide",
}


def _run(script: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, REPRO_STREAM_LEN="60000")
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=400,
        env=env,
    )


@pytest.mark.parametrize("script,marker", sorted(CHEAP_EXAMPLES.items()))
def test_example_runs(script, marker):
    result = _run(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert marker in result.stdout


def test_quickstart_reports_the_diversity_effect():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr[-2000:]
    # Stide blind below the anomaly size, Markov capable everywhere.
    assert "blind" in result.stdout
    assert result.stdout.count("capable") >= 3


def test_all_examples_are_syntactically_valid():
    """Every example compiles (cheap guard for the heavyweight ones)."""
    import py_compile

    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 9
    for script in scripts:
        py_compile.compile(str(script), doraise=True)
