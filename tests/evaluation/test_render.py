"""Tests for repro.evaluation.render."""

from __future__ import annotations

from repro.evaluation.performance_map import build_performance_map
from repro.evaluation.render import (
    render_graded_map,
    render_map_summary,
    render_performance_map,
)


class TestRenderPerformanceMap:
    def test_stide_chart_shape(self, suite):
        chart = render_performance_map(build_performance_map("stide", suite))
        lines = chart.splitlines()
        assert lines[0].startswith("Performance map of stide")
        assert "detection region" in lines[1]
        # One row per window length plus heading/legend/blank/header.
        assert len(lines) == 4 + len(suite.window_lengths)

    def test_rows_descend_from_largest_window(self, suite):
        chart = render_performance_map(build_performance_map("stide", suite))
        data_rows = chart.splitlines()[4:]
        first_window = int(data_rows[0].split()[0])
        last_window = int(data_rows[-1].split()[0])
        assert first_window == max(suite.window_lengths)
        assert last_window == min(suite.window_lengths)

    def test_undefined_column_rendered(self, suite):
        chart = render_performance_map(build_performance_map("stide", suite))
        for row in chart.splitlines()[4:]:
            assert row.split()[1] == "?"

    def test_undefined_column_optional(self, suite):
        chart = render_performance_map(
            build_performance_map("stide", suite), include_undefined_column=False
        )
        assert "?" not in chart

    def test_stide_diagonal_glyphs(self, suite):
        chart = render_performance_map(build_performance_map("stide", suite))
        rows = {
            int(row.split()[0]): row.split()[1:]
            for row in chart.splitlines()[4:]
        }
        # Row DW=2: only AS=2 is detected.
        assert rows[2][1] == "*"  # AS=2 column (after the '?')
        assert rows[2][2] == "."
        # Row DW=15: everything detected.
        assert all(glyph == "*" for glyph in rows[15][1:])

    def test_custom_title(self, suite):
        chart = render_performance_map(
            build_performance_map("stide", suite), title="Figure 5"
        )
        assert chart.splitlines()[0] == "Figure 5"

    def test_lane_brodley_has_no_stars(self, suite):
        chart = render_performance_map(
            build_performance_map("lane-brodley", suite)
        )
        data = "\n".join(chart.splitlines()[4:])
        assert "*" not in data


class TestRenderGradedMap:
    def test_stide_grid_is_binary(self, suite):
        text = render_graded_map(build_performance_map("stide", suite))
        values = {
            cell
            for row in text.splitlines()[3:]
            for cell in row.split()[1:]
        }
        assert values == {"0", "100"}

    def test_lane_brodley_shows_graded_dips(self, suite):
        """The 'close to normal' phenomenon: nonzero sub-100 values."""
        text = render_graded_map(
            build_performance_map("lane-brodley", suite)
        )
        values = [
            int(cell)
            for row in text.splitlines()[3:]
            for cell in row.split()[1:]
        ]
        assert max(values) < 100
        assert any(0 < value for value in values)

    def test_custom_title(self, suite):
        text = render_graded_map(
            build_performance_map("stide", suite), title="Graded"
        )
        assert text.splitlines()[0] == "Graded"

    def test_rows_cover_grid(self, suite):
        text = render_graded_map(build_performance_map("stide", suite))
        data_rows = text.splitlines()[3:]
        assert len(data_rows) == len(suite.window_lengths)
        assert all(
            len(row.split()) == 1 + len(suite.anomaly_sizes)
            for row in data_rows
        )


class TestRenderMapSummary:
    def test_mentions_counts(self, suite):
        summary = render_map_summary(build_performance_map("stide", suite))
        assert "stide" in summary
        assert "84/112" in summary
