"""Tests for repro.evaluation.scoring."""

from __future__ import annotations

import pytest

from repro.detectors import MarkovDetector, StideDetector
from repro.evaluation.scoring import (
    DetectionOutcome,
    ResponseClass,
    classify_response,
    score_injected,
)
from repro.exceptions import EvaluationError


class TestClassifyResponse:
    def test_zero_is_blind(self):
        assert classify_response(0.0) is ResponseClass.BLIND

    def test_intermediate_is_weak(self):
        assert classify_response(0.5) is ResponseClass.WEAK

    def test_one_is_capable(self):
        assert classify_response(1.0) is ResponseClass.CAPABLE

    def test_tolerance_widens_capable(self):
        assert classify_response(0.93, tolerance=0.1) is ResponseClass.CAPABLE
        assert classify_response(0.93, tolerance=0.0) is ResponseClass.WEAK

    def test_rejects_out_of_range_response(self):
        with pytest.raises(EvaluationError, match=r"\[0, 1\]"):
            classify_response(1.2)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(EvaluationError, match="tolerance"):
            classify_response(0.5, tolerance=1.0)

    def test_detects_property(self):
        assert ResponseClass.CAPABLE.detects
        assert not ResponseClass.WEAK.detects
        assert not ResponseClass.BLIND.detects
        assert not ResponseClass.UNDEFINED.detects


class TestScoreInjected:
    def test_stide_capable_case(self, training, suite):
        injected = suite.stream(4)
        stide = StideDetector(6, 8).fit(training.stream)
        outcome = score_injected(stide, injected)
        assert outcome.response_class is ResponseClass.CAPABLE
        assert outcome.detected
        assert outcome.max_in_span == 1.0
        assert outcome.spurious_alarms == 0

    def test_stide_blind_case(self, training, suite):
        injected = suite.stream(9)
        stide = StideDetector(3, 8).fit(training.stream)
        outcome = score_injected(stide, injected)
        assert outcome.response_class is ResponseClass.BLIND
        assert not outcome.detected
        assert outcome.max_in_span == 0.0

    def test_span_bounds_recorded(self, training, suite):
        injected = suite.stream(5)
        stide = StideDetector(4, 8).fit(training.stream)
        outcome = score_injected(stide, injected)
        span = injected.incident_span(4)
        assert (outcome.span_start, outcome.span_stop) == (span.start, span.stop)

    def test_markov_capable_with_clean_outside(self, training, suite):
        injected = suite.stream(7)
        markov = MarkovDetector(3, 8).fit(training.stream)
        outcome = score_injected(markov, injected)
        assert outcome.response_class is ResponseClass.CAPABLE
        assert outcome.max_outside_span < 1.0
        assert outcome.spurious_alarms == 0

    def test_outcome_is_frozen(self, training, suite):
        outcome = score_injected(
            StideDetector(4, 8).fit(training.stream), suite.stream(3)
        )
        with pytest.raises(AttributeError):
            outcome.max_in_span = 0.0  # type: ignore[misc]

    def test_detection_outcome_detected_mirrors_class(self):
        outcome = DetectionOutcome(
            response_class=ResponseClass.WEAK,
            max_in_span=0.5,
            max_outside_span=0.0,
            span_start=0,
            span_stop=3,
            spurious_alarms=0,
        )
        assert not outcome.detected
