"""Tests for repro.evaluation.experiment."""

from __future__ import annotations

import pytest

from repro.evaluation.experiment import (
    DEFAULT_DETECTORS,
    ExperimentResult,
    run_paper_experiment,
)
from repro.exceptions import EvaluationError


@pytest.fixture(scope="module")
def small_result(suite):
    """A two-detector experiment over the shared suite (fast)."""
    return run_paper_experiment(suite=suite, detectors=("stide", "lane-brodley"))


class TestRunPaperExperiment:
    def test_maps_keyed_by_detector(self, small_result):
        assert set(small_result.maps) == {"stide", "lane-brodley"}

    def test_map_for(self, small_result):
        assert small_result.map_for("stide").detector_name == "stide"

    def test_map_for_unknown_raises(self, small_result):
        with pytest.raises(EvaluationError, match="available"):
            small_result.map_for("markov")

    def test_suite_attached(self, small_result, suite):
        assert small_result.suite is suite

    def test_empty_detector_list_rejected(self, suite):
        with pytest.raises(EvaluationError, match="at least one"):
            run_paper_experiment(suite=suite, detectors=())

    def test_default_detectors_are_the_figures(self):
        assert DEFAULT_DETECTORS == (
            "lane-brodley",
            "markov",
            "stide",
            "neural-network",
        )

    def test_render_all_contains_every_map(self, small_result):
        text = small_result.render_all()
        assert "Performance map of stide" in text
        assert "Performance map of lane-brodley" in text

    def test_summary_one_line_per_detector(self, small_result):
        lines = small_result.summary().splitlines()
        assert len(lines) == 2

    def test_result_is_frozen(self, small_result, suite):
        with pytest.raises(AttributeError):
            small_result.suite = suite  # type: ignore[misc]

    def test_builds_suite_when_missing(self, params):
        # Exercise the params -> suite path with a cheap detector set.
        result = run_paper_experiment(params=params, detectors=("stide",))
        assert isinstance(result, ExperimentResult)
        assert result.map_for("stide").detection_fraction() == pytest.approx(
            84 / 112
        )
