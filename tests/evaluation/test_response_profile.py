"""Tests for repro.evaluation.response_profile."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors import MarkovDetector, StideDetector
from repro.evaluation.response_profile import (
    ResponseProfile,
    compare_profiles,
    response_profile,
)
from repro.exceptions import EvaluationError


def make_profile(responses, span=(2, 5), name="x", window=3) -> ResponseProfile:
    return ResponseProfile(
        detector_name=name,
        window_length=window,
        responses=np.asarray(responses, dtype=float),
        span_start=span[0],
        span_stop=span[1],
    )


class TestResponseProfile:
    def test_span_slices(self):
        profile = make_profile([0, 0, 0.5, 1.0, 0.2, 0, 0])
        assert profile.in_span.tolist() == [0.5, 1.0, 0.2]
        assert profile.outside_span.tolist() == [0, 0, 0, 0]

    def test_peak(self):
        profile = make_profile([0, 0, 0.5, 1.0, 0.2, 0, 0])
        assert profile.peak() == (3, 1.0)
        assert profile.peak_in_span()

    def test_peak_outside_span(self):
        profile = make_profile([0.9, 0, 0.5, 0.6, 0.2, 0, 0])
        assert not profile.peak_in_span()

    def test_background_pedestal(self):
        profile = make_profile([0.1, 0.1, 1, 1, 1, 0.1, 0.3])
        assert profile.background_pedestal() == pytest.approx(0.1)

    def test_contrast(self):
        profile = make_profile([0.2, 0, 0.5, 0.9, 0.2, 0, 0.1])
        assert profile.contrast() == pytest.approx(0.7)

    def test_rejects_bad_span(self):
        with pytest.raises(EvaluationError, match="out of range"):
            make_profile([0, 1], span=(0, 5))

    def test_sparkline_levels(self):
        profile = make_profile([0.0, 0.1, 0.3, 0.6, 0.9, 1.0, 0.0], span=(2, 6))
        curve = profile.sparkline(context=2).splitlines()[0]
        assert curve == "_.-=^#_"

    def test_sparkline_marks_span(self):
        profile = make_profile([0, 0, 1, 1, 1, 0, 0], span=(2, 5))
        marker = profile.sparkline(context=2).splitlines()[1]
        assert marker.index("|") == 2  # span start offset within the view


class TestResponseProfileFromDetectors:
    def test_stide_profile_confined_to_span(self, training, suite):
        injected = suite.stream(4)
        stide = StideDetector(6, 8).fit(training.stream)
        profile = response_profile(stide, injected)
        assert profile.peak_in_span()
        assert profile.outside_span.max() == 0.0
        assert profile.contrast() == 1.0

    def test_markov_profile_has_background_pedestal(self, training, suite):
        injected = suite.stream(4)
        markov = MarkovDetector(4, 8).fit(training.stream)
        profile = response_profile(markov, injected)
        assert profile.peak_in_span()
        assert 0.0 < profile.outside_span.max() < 1.0


class TestCompareProfiles:
    def test_aligned_rendering(self, training, suite):
        injected = suite.stream(5)
        profiles = [
            response_profile(StideDetector(6, 8).fit(training.stream), injected),
            response_profile(MarkovDetector(6, 8).fit(training.stream), injected),
        ]
        text = compare_profiles(profiles)
        lines = text.splitlines()
        assert lines[0].lstrip().startswith("stide")
        assert lines[-1].lstrip().startswith("span")
        # Curves are aligned: all rows equally long.
        assert len({len(line) for line in lines[:-1]}) == 1

    def test_rejects_empty(self):
        with pytest.raises(EvaluationError, match="at least one"):
            compare_profiles([])

    def test_rejects_mismatched_spans(self):
        a = make_profile([0, 0, 1, 1, 1, 0], span=(2, 5))
        b = make_profile([0, 0, 1, 1, 1, 0], span=(1, 5))
        with pytest.raises(EvaluationError, match="different incident spans"):
            compare_profiles([a, b])
