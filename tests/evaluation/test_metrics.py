"""Tests for repro.evaluation.metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.metrics import (
    DetectionMetrics,
    evaluate_alarms,
    roc_auc,
    roc_points,
)
from repro.exceptions import EvaluationError


class TestEvaluateAlarms:
    def test_hit_when_alarm_in_region(self):
        alarms = [np.asarray([False, True, False, False])]
        metrics = evaluate_alarms(alarms, [[(1, 3)]])
        assert metrics.hits == 1
        assert metrics.misses == 0
        assert metrics.false_alarm_windows == 0

    def test_miss_when_no_alarm_in_region(self):
        alarms = [np.asarray([True, False, False, False])]
        metrics = evaluate_alarms(alarms, [[(2, 4)]])
        assert metrics.hits == 0
        assert metrics.misses == 1
        assert metrics.false_alarm_windows == 1

    def test_false_alarms_counted_per_window(self):
        alarms = [np.asarray([True, True, False, True])]
        metrics = evaluate_alarms(alarms, [[]])
        assert metrics.false_alarm_windows == 3
        assert metrics.normal_windows == 4
        assert metrics.traces_with_truth == 0

    def test_multiple_traces_aggregate(self):
        alarms = [
            np.asarray([False, True]),
            np.asarray([False, False]),
            np.asarray([True, False]),
        ]
        truth = [[(1, 2)], [(0, 1)], []]
        metrics = evaluate_alarms(alarms, truth)
        assert metrics.traces == 3
        assert metrics.traces_with_truth == 2
        assert metrics.hits == 1
        assert metrics.misses == 1
        assert metrics.false_alarm_windows == 1

    def test_rates(self):
        alarms = [np.asarray([True, False, False, False])]
        metrics = evaluate_alarms(alarms, [[(0, 1)]])
        assert metrics.hit_rate == 1.0
        assert metrics.miss_rate == 0.0
        assert metrics.false_alarm_rate == 0.0

    def test_hit_rate_defined_without_truth(self):
        metrics = evaluate_alarms([np.asarray([False])], [[]])
        assert metrics.hit_rate == 1.0

    def test_false_alarm_rate_no_normal_windows(self):
        metrics = evaluate_alarms([np.asarray([True])], [[(0, 1)]])
        assert metrics.false_alarm_rate == 0.0

    def test_summary_text(self):
        metrics = evaluate_alarms([np.asarray([True, False])], [[(0, 1)]])
        text = metrics.summary()
        assert "hits 1/1" in text

    def test_rejects_mismatched_lists(self):
        with pytest.raises(EvaluationError, match="truth-region"):
            evaluate_alarms([np.asarray([True])], [])

    def test_rejects_bad_region(self):
        with pytest.raises(EvaluationError, match="out of range"):
            evaluate_alarms([np.asarray([True])], [[(0, 5)]])

    def test_metrics_is_frozen(self):
        metrics = DetectionMetrics(1, 0, 0, 0, 0, 0, 1)
        with pytest.raises(AttributeError):
            metrics.hits = 3  # type: ignore[misc]


class TestRocPoints:
    def test_monotone_hit_and_fa_rates(self):
        responses = [np.asarray([0.2, 0.6, 0.95, 0.1])]
        truth = [[(2, 3)]]
        points = roc_points(responses, truth, thresholds=[0.1, 0.5, 0.9, 1.0])
        # Raising the threshold can only reduce alarms of both kinds.
        fa_rates = [p[1] for p in points]
        hit_rates = [p[2] for p in points]
        assert fa_rates == sorted(fa_rates, reverse=True)
        assert hit_rates == sorted(hit_rates, reverse=True)

    def test_threshold_above_all_responses_silences(self):
        responses = [np.asarray([0.2, 0.6])]
        points = roc_points(responses, [[]], thresholds=[0.99])
        assert points[0][1] == 0.0

    def test_default_threshold_grid(self):
        points = roc_points([np.asarray([0.5])], [[]])
        assert len(points) == 100

    def test_rejects_bad_threshold(self):
        with pytest.raises(EvaluationError, match="thresholds"):
            roc_points([np.asarray([0.5])], [[]], thresholds=[0.0])

    def test_auc_of_perfect_separator(self):
        # Anomalous windows score 1.0, normal windows 0.1.
        responses = [np.asarray([0.1, 0.1, 1.0, 0.1])]
        truth = [[(2, 3)]]
        points = roc_points(responses, truth)
        assert roc_auc(points) == pytest.approx(1.0, abs=0.02)

    def test_auc_of_constant_scorer_is_half(self):
        # Identical scores everywhere: every threshold is all-or-nothing.
        responses = [np.asarray([0.5, 0.5, 0.5, 0.5])]
        truth = [[(1, 2)]]
        points = roc_points(responses, truth)
        assert roc_auc(points) == pytest.approx(0.5, abs=0.02)

    def test_auc_rejects_empty(self):
        with pytest.raises(EvaluationError, match="at least one"):
            roc_auc([])

    def test_auc_bounded(self):
        points = [(0.5, 0.3, 0.8), (0.9, 0.1, 0.4)]
        assert 0.0 <= roc_auc(points) <= 1.0

    def test_markov_dominates_stide_on_rare_events(self, training):
        """ROC sanity on the paper corpus: at threshold 1.0, Markov
        alarms on rare training windows while Stide stays silent."""
        from repro.detectors import MarkovDetector, StideDetector

        test = training.stream[:4000]
        stide_responses = StideDetector(2, 8).fit(training.stream).score_stream(test)
        markov_responses = MarkovDetector(2, 8).fit(training.stream).score_stream(test)
        stide_points = roc_points([stide_responses], [[]], thresholds=[1.0])
        markov_points = roc_points([markov_responses], [[]], thresholds=[1.0])
        assert markov_points[0][1] > stide_points[0][1] == 0.0
