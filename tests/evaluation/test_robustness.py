"""Tests for repro.evaluation.robustness."""

from __future__ import annotations

import pytest

from repro.evaluation.performance_map import build_performance_map
from repro.evaluation.robustness import (
    PAPER_SHAPES,
    ReplicationOutcome,
    RobustnessReport,
    blind_shape,
    full_coverage_shape,
    replicate_shapes,
    stide_shape,
)
from repro.exceptions import EvaluationError
from repro.params import scaled_params


class TestShapePredicates:
    def test_stide_shape_on_measured_map(self, suite):
        assert stide_shape(build_performance_map("stide", suite))

    def test_full_coverage_on_markov(self, suite):
        assert full_coverage_shape(build_performance_map("markov", suite))

    def test_blind_on_lane_brodley(self, suite):
        assert blind_shape(build_performance_map("lane-brodley", suite))

    def test_shapes_are_mutually_exclusive_on_these_maps(self, suite):
        stide_map = build_performance_map("stide", suite)
        assert not full_coverage_shape(stide_map)
        assert not blind_shape(stide_map)

    def test_paper_shapes_registry(self):
        assert set(PAPER_SHAPES) == {
            "stide",
            "markov",
            "neural-network",
            "lane-brodley",
        }


class TestReplication:
    def test_rejects_empty_seeds(self, params):
        with pytest.raises(EvaluationError, match="at least one"):
            replicate_shapes(params, seeds=())

    def test_two_seeds_hold_cheap_shapes(self):
        """Replicate the Stide and L&B shapes under two fresh seeds
        (cheap detectors keep this fast)."""
        base = scaled_params(40_000)
        report = replicate_shapes(
            base,
            seeds=(101, 202),
            detectors={"stide": stide_shape, "lane-brodley": blind_shape},
        )
        assert report.replications == 2
        assert report.all_held, report.summary()
        assert report.failures() == []
        assert "held across 2" in report.summary()

    def test_failures_reported(self):
        outcome = ReplicationOutcome(
            seed=1, training_length=10, shape_held={"stide": False}
        )
        report = RobustnessReport(outcomes=(outcome,))
        assert not report.all_held
        assert report.failures() == [(1, "stide")]
        assert "failures" in report.summary()
