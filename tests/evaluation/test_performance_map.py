"""Tests for repro.evaluation.performance_map."""

from __future__ import annotations

import pytest

from repro.detectors import StideDetector
from repro.evaluation.performance_map import (
    CellResult,
    PerformanceMap,
    build_performance_map,
)
from repro.evaluation.scoring import DetectionOutcome, ResponseClass
from repro.exceptions import EvaluationError


def _outcome(response_class: ResponseClass) -> DetectionOutcome:
    value = {"blind": 0.0, "weak": 0.5, "capable": 1.0}[response_class.value]
    return DetectionOutcome(
        response_class=response_class,
        max_in_span=value,
        max_outside_span=0.0,
        span_start=0,
        span_stop=5,
        spurious_alarms=0,
    )


def _tiny_map() -> PerformanceMap:
    cells = {}
    for anomaly_size in (2, 3):
        for window in (2, 3):
            response_class = (
                ResponseClass.CAPABLE
                if window >= anomaly_size
                else ResponseClass.BLIND
            )
            cells[(anomaly_size, window)] = CellResult(
                anomaly_size, window, _outcome(response_class)
            )
    return PerformanceMap("tiny", cells)


class TestPerformanceMap:
    def test_grid_axes(self):
        tiny = _tiny_map()
        assert tiny.anomaly_sizes == (2, 3)
        assert tiny.window_lengths == (2, 3)

    def test_rejects_empty(self):
        with pytest.raises(EvaluationError, match="at least one"):
            PerformanceMap("x", {})

    def test_rejects_partial_grid(self):
        cells = {
            (2, 2): CellResult(2, 2, _outcome(ResponseClass.BLIND)),
            (3, 3): CellResult(3, 3, _outcome(ResponseClass.BLIND)),
        }
        with pytest.raises(EvaluationError, match="full grid"):
            PerformanceMap("x", cells)

    def test_cell_lookup(self):
        tiny = _tiny_map()
        assert tiny.cell(2, 2).response_class is ResponseClass.CAPABLE
        assert tiny.response_class(3, 2) is ResponseClass.BLIND

    def test_unknown_cell_raises(self):
        with pytest.raises(EvaluationError, match="outside the grid"):
            _tiny_map().cell(9, 9)

    def test_class_partitions(self):
        tiny = _tiny_map()
        assert tiny.capable_cells() == {(2, 2), (2, 3), (3, 3)}
        assert tiny.blind_cells() == {(3, 2)}
        assert tiny.weak_cells() == frozenset()

    def test_detection_fraction(self):
        assert _tiny_map().detection_fraction() == pytest.approx(3 / 4)

    def test_iteration_in_grid_order(self):
        cells = list(_tiny_map())
        assert [(c.anomaly_size, c.window_length) for c in cells] == [
            (2, 2),
            (2, 3),
            (3, 2),
            (3, 3),
        ]

    def test_len(self):
        assert len(_tiny_map()) == 4

    def test_spurious_alarm_total(self):
        assert _tiny_map().spurious_alarm_total() == 0

    def test_repr(self):
        assert "capable=3" in repr(_tiny_map())


class TestBuildPerformanceMap:
    def test_by_name_covers_the_grid(self, suite):
        built = build_performance_map("stide", suite)
        assert built.detector_name == "stide"
        assert len(built) == suite.case_count()

    def test_stide_diagonal_shape(self, suite):
        built = build_performance_map("stide", suite)
        for anomaly_size in suite.anomaly_sizes:
            for window in suite.window_lengths:
                expected = (
                    ResponseClass.CAPABLE
                    if window >= anomaly_size
                    else ResponseClass.BLIND
                )
                assert built.response_class(anomaly_size, window) is expected

    def test_by_factory(self, suite):
        built = build_performance_map(
            lambda dw: StideDetector(dw, suite.training.alphabet.size), suite
        )
        assert built.detector_name == "stide"
        assert len(built) == 112

    def test_kwargs_forwarded(self, suite):
        floored = build_performance_map("markov", suite)
        unfloored = build_performance_map("markov", suite, rare_floor=0.0)
        # The ablation: without the floor, the Markov map loses cells.
        assert len(unfloored.capable_cells()) < len(floored.capable_cells())
